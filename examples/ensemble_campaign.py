#!/usr/bin/env python3
"""A full climate-prediction campaign on a heterogeneous grid.

Reenacts Section 5 end to end through the DIET-like middleware: a client
submits the ensemble, every cluster's SeD computes its performance
vector with the knapsack model, Algorithm 1 spreads the scenarios, and
each cluster simulates its share.  The message log shows the 6-step
protocol of Figure 9; the final comparison shows what the grid buys over
the best single cluster.

Run::

    python examples/ensemble_campaign.py
"""

from __future__ import annotations

from repro import EnsembleSpec, GridSpec, benchmark_cluster
from repro.core.performance_vector import cluster_makespan
from repro.middleware.deployment import deploy


def main() -> None:
    # A Grid'5000-flavoured platform: three sites of different sizes and
    # speeds (speeds span the paper's published 1177-1622 s extremes).
    grid = GridSpec.of(
        [
            benchmark_cluster("sagittaire", 44),  # Lyon, fastest
            benchmark_cluster("chti", 60),  # Lille, mid
            benchmark_cluster("azur", 36),  # Sophia, slowest
        ]
    )
    spec = EnsembleSpec(scenarios=10, months=60)
    print(grid.describe())
    print()

    client, agent, _seds = deploy(grid)
    campaign = client.run_campaign(spec.scenarios, spec.months, "knapsack")

    print(campaign.describe())
    print()

    # The protocol exchange, timestamped by the simulated network.
    print(agent.network.describe())
    print()

    # What did the grid buy?  Compare against running everything on the
    # best single cluster.
    single = min(
        cluster_makespan(cluster, spec, "knapsack") for cluster in grid
    )
    print(
        f"best single cluster would need {single / 3600:.2f} h; the grid "
        f"finished in {campaign.makespan / 3600:.2f} h "
        f"({(single - campaign.makespan) / single * 100:.1f}% faster)"
    )

    # And the no-migration rationale: moving a half-done scenario would
    # ship its restart plus archive data across sites.
    from repro.workflow.data import DataTransferModel

    penalty = DataTransferModel().migration_penalty(months=30)
    print(
        f"(migrating a 30-month-old scenario would move "
        f"{penalty:.1f} s of data — and forfeit cluster-local caching, "
        f"hence Algorithm 1 never relocates scenarios)"
    )


if __name__ == "__main__":
    main()
