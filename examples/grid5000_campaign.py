#!/usr/bin/env python3
"""A testbed-scale campaign across the full Grid'5000 catalog.

The paper evaluates on 2–5 clusters; the library's synthetic site
catalog (`repro.platform.gridfive`) lets us ask what the same protocol
does at testbed scale: 19 clusters over 9 sites, a 40-processor
reservation slice on each, and a larger ensemble (30 scenarios — e.g.
three parametrizations of the cloud-dynamics study per member).

Things to notice in the output:

* Algorithm 1 loads the fast sites (Lyon, Sophia's newer clusters)
  heavily and leaves the slowest clusters idle — "the faster, the more
  DAGs it has to execute" at scale;
* the control-plane cost stays in sub-second territory even with 19 SeDs;
* the sensitivity table shows which benchmark entries of the most-loaded
  cluster actually drive the campaign.

Run::

    python examples/grid5000_campaign.py
"""

from __future__ import annotations

from repro.analysis.sensitivity import table_sensitivity
from repro.analysis.tables import format_table
from repro.middleware.deployment import run_campaign
from repro.platform.gridfive import catalog_grid
from repro.workflow.ocean_atmosphere import EnsembleSpec


def main() -> None:
    grid = catalog_grid(max_resources_per_cluster=40)
    scenarios, months = 30, 24

    print(
        f"platform: {len(grid)} clusters over 9 sites, "
        f"{grid.total_resources} reserved processors"
    )
    print(f"ensemble: {scenarios} scenarios x {months} months\n")

    campaign = run_campaign(grid, scenarios, months, "knapsack")
    print(campaign.describe())

    idle = [
        name for name in grid.names
        if all(r.cluster_name != name for r in campaign.reports)
    ]
    print(f"\nidle clusters (too slow to help): {idle or 'none'}")

    # Who carries the campaign?  The cluster that pins the makespan.
    critical = max(campaign.reports, key=lambda r: r.makespan)
    print(
        f"critical cluster: {critical.cluster_name} "
        f"({len(critical.scenario_ids)} scenarios, "
        f"{critical.makespan / 3600:.2f} h)"
    )

    # Which of its benchmark numbers matter?
    cluster = grid.cluster_by_name(critical.cluster_name)
    spec = EnsembleSpec(len(critical.scenario_ids), months)
    rows = [
        [s.entry, f"{s.plan_fixed_pct:+.2f}", f"{s.replan_pct:+.2f}",
         f"{s.decision_margin_pct:+.2f}"]
        for s in table_sensitivity(cluster, spec, "knapsack", epsilon=0.10)
    ]
    print(
        f"\nsensitivity of {critical.cluster_name}'s local makespan to a "
        f"+10% slowdown of each benchmark entry:"
    )
    print(
        format_table(
            ["entry", "plan-fixed %", "replan %", "dodged %"], rows
        )
    )


if __name__ == "__main__":
    main()
