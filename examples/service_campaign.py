#!/usr/bin/env python3
"""Campaign service tour: serve, submit concurrently, read back results.

Starts a campaign server on an ephemeral port (backed by a throwaway
SQLite store), submits three ensemble campaigns of different sizes from
three client threads at once, polls each to completion over the wire,
then reads the stored makespans straight out of the database — the
same file a restarted server would resume from.

Run::

    python examples/service_campaign.py
"""

from __future__ import annotations

import concurrent.futures
import json
import tempfile
from pathlib import Path

from repro.service import QueueConfig, RunStore, ServiceClient, serve_in_thread

SCENARIOS = (6, 10, 14)  # three ensemble sizes, one campaign each


def submit_campaign(port: int, scenarios: int) -> str:
    """Submit one campaign job from its own client connection."""
    with ServiceClient(port=port) as client:
        return client.submit(
            "campaign",
            {
                "clusters": 3,
                "resources": 40,
                "scenarios": scenarios,
                "months": 12,
            },
        )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "runs.db"
        handle = serve_in_thread(
            db_path, queue_config=QueueConfig(max_workers=2)
        )
        print(f"campaign service on 127.0.0.1:{handle.port} (db={db_path})\n")

        try:
            # Three clients submit concurrently; the wire protocol and
            # the store serialize them safely.
            with concurrent.futures.ThreadPoolExecutor(3) as pool:
                run_ids = list(
                    pool.map(
                        lambda s: submit_campaign(handle.port, s), SCENARIOS
                    )
                )
            for scenarios, run_id in zip(SCENARIOS, run_ids):
                print(f"submitted {scenarios:>2}-scenario campaign: {run_id}")

            with ServiceClient(port=handle.port) as client:
                for run_id in run_ids:
                    status = client.wait(run_id, timeout=300.0)
                    print(f"run {run_id}: {status['state']}")
                health = client.health()
                print(f"\nserver saw {health['jobs']['done']} jobs to done")
        finally:
            handle.stop()

        # The server is gone; the results are not.
        print(f"\nstored makespans (read from {db_path.name} post-shutdown):")
        with RunStore(db_path) as store:
            for scenarios, run_id in zip(SCENARIOS, run_ids):
                envelope = json.loads(store.get(run_id).result)
                makespan = envelope["data"]["data"]["makespan"]
                print(
                    f"  {scenarios:>2} scenarios -> "
                    f"makespan {makespan / 3600:.2f} h"
                )


if __name__ == "__main__":
    main()
