#!/usr/bin/env python3
"""Visualizing schedule shapes — the paper's Figures 3-6 as ASCII Gantt.

Four configurations chosen to show the structures the paper draws:

1. Figure 3: no post pool (R2=0) — post tasks pile up after the mains.
2. Figure 4: an undersized post pool — posts 'overpass' into later waves.
3. Figures 5-6: an incomplete final wave — the unused groups' processors
   (Rleft) absorb the backlog.
4. The knapsack grouping on the same machine, for contrast.

The last configuration is also dumped as a Chrome Trace Event JSON file
(open it at https://ui.perfetto.dev) next to the ASCII chart.

Run::

    python examples/gantt_trace.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import EnsembleSpec, Grouping, benchmark_cluster, simulate_on_cluster
from repro.core.knapsack_grouping import knapsack_grouping
from repro.obs.tracing import Tracer
from repro.simulation.trace import render_gantt, trace_summary


def show(title: str, cluster, grouping: Grouping, spec: EnsembleSpec):
    """Simulate one configuration and print its chart."""
    print("=" * 100)
    print(title)
    print("=" * 100)
    result = simulate_on_cluster(cluster, grouping, spec, record_trace=True)
    print(trace_summary(result))
    print()
    print(render_gantt(result, width=96, max_rows=24))
    print()
    return result


def dump_chrome_trace(result) -> Path:
    """Write one schedule as Chrome Trace Event JSON (for Perfetto).

    Same schedule as the ASCII chart, one span per task: lane = first
    processor of the task's group, 1 simulated second = 1 trace us.
    """
    tracer = Tracer()
    for record in result.records:
        tracer.add_complete_span(
            f"{record.kind}(s{record.scenario},m{record.month})",
            ts=record.start,
            dur=record.duration,
            tid=record.procs_start,
            kind=record.kind,
            group=record.group,
        )
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", prefix="gantt_trace_", delete=False
    ) as fh:
        fh.write(tracer.to_chrome_json())
        return Path(fh.name)


def main() -> None:
    cluster = benchmark_cluster("sagittaire", 22)

    # 1. R2 = 0: two groups of 11 fill the machine; every post task must
    #    wait for the end (paper Figure 3).
    show(
        "Figure 3 shape: no processors for post-processing (R2 = 0)",
        cluster,
        Grouping((11, 11), post_pool=0, total_resources=22),
        EnsembleSpec(scenarios=4, months=6),
    )

    # 2. Undersized post pool: four groups of 5 feed one post processor
    #    faster than it drains (paper Figure 4's 'overpassing').
    show(
        "Figure 4 shape: post tasks overpassing an undersized pool",
        cluster,
        Grouping((5, 5, 5, 5), post_pool=2, total_resources=22),
        EnsembleSpec(scenarios=8, months=6),
    )

    # 3. Incomplete last wave: 5 scenarios x 5 months = 25 tasks on 4
    #    groups -> the 7th wave uses 1 group; the three idle groups'
    #    processors (Rleft) absorb the post backlog (paper Figures 5-6).
    show(
        "Figures 5-6 shape: final incomplete wave, Rleft absorbs posts",
        cluster,
        Grouping((5, 5, 5, 5), post_pool=2, total_resources=22),
        EnsembleSpec(scenarios=5, months=5),
    )

    # 4. What the knapsack does with the same 22 processors.
    spec = EnsembleSpec(scenarios=5, months=5)
    grouping = knapsack_grouping(cluster, spec)
    result = show(
        f"Knapsack grouping on the same machine: {grouping.describe()}",
        cluster,
        grouping,
        spec,
    )
    path = dump_chrome_trace(result)
    print(f"chrome trace written to {path} (open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
