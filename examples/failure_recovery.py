#!/usr/bin/env python3
"""Surviving a site failure mid-campaign (extension beyond the paper).

A 10-scenario campaign runs across three Grid'5000-like sites; one site
fails partway through.  The recovery machinery replays the failed site's
schedule to find which months are safe (their restart files exist),
then reassigns each interrupted scenario to a surviving site —
Algorithm 1's greedy rule generalized to unequal remaining chain
lengths, each candidate evaluated exactly with the DAG-level simulator.

The sweep below shows how the failure's *timing* changes its cost: an
early failure loses little work but reschedules nearly whole scenarios;
a late one loses only the in-flight months.

Run::

    python examples/failure_recovery.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.middleware.recovery import ClusterFailure, run_campaign_with_failure
from repro.platform.benchmarks import benchmark_grid


def main() -> None:
    grid = benchmark_grid(3, 30)
    scenarios, months = 10, 24
    print(grid.describe())
    print(f"\ncampaign: {scenarios} scenarios x {months} months")
    print("failing cluster: chti (the mid-speed site)\n")

    # One detailed narrative at the 5-hour mark.
    plan = run_campaign_with_failure(
        grid, scenarios, months, ClusterFailure("chti", 5.0 * 3600)
    )
    print(plan.describe())
    print()

    # Sweep the failure time across the campaign.
    rows = []
    for hours in (0.5, 2.0, 4.0, 6.0, 8.0, 9.5):
        plan = run_campaign_with_failure(
            grid, scenarios, months, ClusterFailure("chti", hours * 3600)
        )
        safe = sum(plan.completed_months.values())
        total = months * len(plan.completed_months)
        rows.append(
            [
                f"{hours:.1f} h",
                f"{safe}/{total}",
                f"{plan.lost_work_seconds / 3600:.2f}",
                f"{plan.makespan / 3600:.2f}",
                f"+{plan.delay / 3600:.2f}",
            ]
        )
    print("failure-time sweep:")
    print(
        format_table(
            [
                "failure at",
                "months safe",
                "lost proc-hours",
                "makespan (h)",
                "delay (h)",
            ],
            rows,
        )
    )
    print(
        "\n(the later the failure, the more months are checkpointed by "
        "their restart files, and the cheaper the recovery)"
    )


if __name__ == "__main__":
    main()
