#!/usr/bin/env python3
"""Beyond the paper: randomized platforms and benchmark-noise robustness.

The paper evaluates on five fixed cluster speeds.  This example uses the
library's generators to ask two follow-up questions:

1. **Random platforms** — over platforms drawn uniformly from the
   paper's speed envelope, how often does each improvement actually beat
   the basic heuristic, and by how much?
2. **Noisy benchmarks** — the heuristics consume measured T[G] tables;
   if the measurements carry ±10% noise, do knapsack's decisions
   (computed from the noisy table) still pay off on the true machine?

Run::

    python examples/heterogeneity_study.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import EnsembleSpec
from repro.analysis.gains import gains_over_baseline
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core.heuristics import plan_grouping
from repro.experiments.runner import makespans_by_heuristic
from repro.platform.cluster import ClusterSpec
from repro.platform.heterogeneity import perturbed_timing, random_cluster
from repro.simulation.engine import simulate


def random_platform_study(rng: np.random.Generator, spec: EnsembleSpec) -> None:
    """Gains of each improvement over 40 random clusters."""
    gains_by_heuristic: dict[str, list[float]] = {}
    for i in range(40):
        cluster = random_cluster(rng, name=f"random{i}")
        gains = gains_over_baseline(makespans_by_heuristic(cluster, spec))
        for name, gain in gains.items():
            gains_by_heuristic.setdefault(name, []).append(gain)

    rows = []
    for name, samples in gains_by_heuristic.items():
        stats = summarize(samples)
        wins = sum(1 for g in samples if g > 1e-9)
        losses = sum(1 for g in samples if g < -1e-9)
        rows.append(
            [name, f"{stats.mean:+.2f}", f"{stats.std:.2f}",
             f"{stats.maximum:+.2f}", f"{stats.minimum:+.2f}",
             f"{wins}/{len(samples)}", f"{losses}/{len(samples)}"]
        )
    print("gains (%) over 40 random clusters (speed and size uniform in")
    print("the paper's envelope):")
    print(
        format_table(
            ["heuristic", "mean", "std", "best", "worst", "wins", "losses"],
            rows,
        )
    )


def noise_robustness_study(rng: np.random.Generator, spec: EnsembleSpec) -> None:
    """Plan on a noisy table, execute on the true machine."""
    print("\nbenchmark-noise robustness (plan on noisy T[G], run on true):")
    rows = []
    for noise in (0.0, 0.05, 0.10, 0.20):
        regrets: list[float] = []
        for i in range(25):
            truth = random_cluster(rng, name=f"true{i}")
            noisy = ClusterSpec(
                truth.name,
                truth.resources,
                perturbed_timing(truth.timing, rng, relative_noise=noise),
            )
            planned = plan_grouping(noisy, spec, "knapsack")
            oracle = plan_grouping(truth, spec, "knapsack")
            ms_planned = simulate(planned, spec, truth.timing).makespan
            ms_oracle = simulate(oracle, spec, truth.timing).makespan
            regrets.append((ms_planned - ms_oracle) / ms_oracle * 100.0)
        stats = summarize(regrets)
        rows.append(
            [f"{noise:.0%}", f"{stats.mean:+.2f}", f"{stats.maximum:+.2f}"]
        )
    print(
        format_table(
            ["table noise", "mean regret %", "worst regret %"], rows
        )
    )
    print(
        "(regret = extra makespan of the noisy-table plan vs planning "
        "with the true table)"
    )


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2008
    rng = np.random.default_rng(seed)
    spec = EnsembleSpec(scenarios=10, months=36)
    print(f"seed={seed}, ensemble {spec.scenarios} x {spec.months} months\n")
    random_platform_study(rng, spec)
    noise_robustness_study(rng, spec)


if __name__ == "__main__":
    main()
