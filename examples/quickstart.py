#!/usr/bin/env python3
"""Quickstart: schedule one ensemble on one cluster, four ways.

The 60-second tour of the library: build a cluster from the benchmark
database, plan a processor grouping with each of the paper's heuristics,
simulate the resulting schedule, and compare makespans — the single-
cluster half of the paper in ~40 lines.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    EnsembleSpec,
    HeuristicName,
    benchmark_cluster,
    plan_grouping,
    simulate_on_cluster,
)
from repro.analysis.gains import gains_over_baseline


def main() -> None:
    # The paper's worked example: 53 processors, 10 scenarios.  We run a
    # 5-year (60-month) slice of the 150-year experiment; gains are
    # insensitive to the horizon.
    cluster = benchmark_cluster("sagittaire", resources=53)
    spec = EnsembleSpec(scenarios=10, months=60)

    print(f"cluster: {cluster.describe()}")
    print(f"ensemble: {spec.scenarios} scenarios x {spec.months} months\n")

    makespans: dict[str, float] = {}
    for heuristic in HeuristicName:
        grouping = plan_grouping(cluster, spec, heuristic)
        result = simulate_on_cluster(cluster, grouping, spec)
        makespans[heuristic.value] = result.makespan
        print(
            f"{heuristic.value:>12}: groups [{grouping.describe()}] -> "
            f"makespan {result.makespan / 3600:.2f} h"
        )

    print("\ngains over the basic heuristic:")
    for name, gain in gains_over_baseline(makespans).items():
        print(f"{name:>12}: {gain:+.2f}%")


if __name__ == "__main__":
    main()
