#!/usr/bin/env python3
"""The future-work extension on a non-climate workload.

The paper's conclusion proposes generalizing the heuristics to any
"workflow made of independent chains of identical DAGs composed of
moldable tasks".  This example schedules exactly such a workload from a
different domain: a nightly seismic-imaging pipeline.

* 6 independent survey lines (chains);
* each line processes 40 shots (repeats) sequentially — every shot's
  migration starts from the previous shot's updated velocity model;
* one shot's **migration** is moldable: it runs on 2–16 processors with
  measured times (strong scaling tails off past 12);
* each migration spawns a sequential **QC rendering** task (90 s).

The same machinery partitions a 22-processor cluster; nothing
climate-specific is involved.  The example also demonstrates a
*cautionary* behaviour the paper observed at large R: this workload's
efficiency **increases** toward small widths (no sequential-component
tax like ARPEGE's +3 processors), so the knapsack's throughput proxy
over-fragments — Improvements 1-2 win here, the knapsack dips negative.
Know your scaling curve before you pick a heuristic.  The DAG is also
exported to JSON, the portable format external tools can feed the
scheduler with.

Run::

    python examples/generic_workflow.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.generic import GenericChainProblem, generic_simulate
from repro.core.heuristics import HeuristicName
from repro.workflow.ocean_atmosphere import EnsembleSpec, fused_ensemble_dag
from repro.workflow.serialize import dumps_dag

#: Measured migration times (seconds) by processor count — a strong-
#: scaling curve that flattens near 12 processors.
MIGRATION_TIMES = {
    2: 2900.0,
    3: 2010.0,
    4: 1560.0,
    5: 1290.0,
    6: 1110.0,
    7: 985.0,
    8: 895.0,
    9: 830.0,
    10: 780.0,
    11: 745.0,
    12: 720.0,
    13: 705.0,
    14: 695.0,
    15: 690.0,
    16: 688.0,
}


def main() -> None:
    problem = GenericChainProblem(
        chains=6,
        repeats=40,
        moldable_table=MIGRATION_TIMES,
        post_seconds=90.0,
        resources=22,
    )
    print(
        f"seismic pipeline: {problem.chains} survey lines x "
        f"{problem.repeats} shots on {problem.resources} processors"
    )
    print(
        f"migration widths {min(MIGRATION_TIMES)}-{max(MIGRATION_TIMES)} "
        f"procs, QC task {problem.post_seconds:.0f}s\n"
    )

    rows = []
    results = {}
    for heuristic in HeuristicName:
        result = generic_simulate(problem, heuristic)
        results[heuristic.value] = result.makespan
        rows.append(
            [
                heuristic.value,
                result.grouping.describe(),
                f"{result.makespan / 3600:.2f}",
            ]
        )
    print(format_table(["heuristic", "grouping", "makespan (h)"], rows))

    base = results["basic"]
    best = min(results, key=results.get)  # type: ignore[arg-type]
    print(
        f"\nbest: {best} "
        f"({(base - results[best]) / base * 100:+.1f}% vs basic)"
    )

    # Gains vs basic over a small resource sweep: watch the knapsack's
    # proxy mislead where per-processor efficiency rises toward small
    # widths (negative entries), exactly the failure mode the paper
    # reports at large R on the climate workload.
    sweep_rows = []
    for r in (14, 16, 20, 22, 26, 34):
        swept = GenericChainProblem(
            chains=6, repeats=40, moldable_table=MIGRATION_TIMES,
            post_seconds=90.0, resources=r,
        )
        base_ms = generic_simulate(swept, HeuristicName.BASIC).makespan
        row = [r]
        for heuristic in (
            HeuristicName.REDISTRIBUTE,
            HeuristicName.ALLPOST_END,
            HeuristicName.KNAPSACK,
        ):
            ms = generic_simulate(swept, heuristic).makespan
            row.append(f"{(base_ms - ms) / base_ms * 100:+.1f}")
        sweep_rows.append(row)
    print("\ngain (%) vs basic across resource counts:")
    print(
        format_table(
            ["R", "redistribute", "allpost_end", "knapsack"], sweep_rows
        )
    )

    # Portability: the equivalent fused DAG exports to plain JSON.
    dag = fused_ensemble_dag(EnsembleSpec(problem.chains, 2))
    blob = dumps_dag(dag)
    print(
        f"\n(2-shot slice of the workflow serializes to {len(blob)} bytes "
        f"of repro-dag/1 JSON — see repro.workflow.serialize)"
    )


if __name__ == "__main__":
    main()
