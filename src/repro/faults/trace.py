"""Seeded failure-trace generation — deterministic chaos for campaigns.

The paper's multi-week ensemble campaign runs on Grid'5000, where real
deployments see sites crash, drop off the network for hours, and run
degraded.  This module models those regimes as an explicit, *seeded*
artifact: a :class:`FaultTrace` is a sorted tuple of
:class:`FaultEvent` values drawn from per-cluster MTBF/MTTR
distributions, and the same ``(spec, seed)`` pair always produces the
same trace bit-for-bit.  Traces are data, not behavior — they can be
serialized next to a campaign result, replayed against a different
heuristic, or handed to the engines
(:func:`repro.faults.hooks.FaultHook.from_trace`) and the middleware
replanner (:func:`repro.middleware.recovery.run_campaign_with_faults`).

Three failure kinds cover the regimes the recovery machinery must
survive:

* ``crash`` — the cluster is lost permanently (unless a later
  ``rejoin`` event revives it);
* ``outage`` — the cluster is lost at ``at_time`` and rejoins, empty,
  ``duration`` seconds later (transient site failure);
* ``slowdown`` — every processor of the cluster runs ``factor`` times
  slower during the window (degraded cooling, contended network).

Each cluster draws from its own RNG stream (seeded from the trace seed
*and* the cluster name), so adding a cluster to a spec never perturbs
the events generated for the others.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro import obs
from repro.exceptions import ConfigurationError

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultTrace",
    "FaultProfile",
    "generate_trace",
]

_log = obs.get_logger(__name__)


class FaultKind(enum.Enum):
    """What a :class:`FaultEvent` does to its cluster."""

    #: Permanent loss (until an explicit ``REJOIN``).
    CRASH = "crash"

    #: Transient loss for ``duration`` seconds; the cluster rejoins empty.
    OUTAGE = "outage"

    #: Every processor runs ``factor`` times slower for ``duration`` seconds.
    SLOWDOWN = "slowdown"

    #: A previously crashed cluster comes back, empty.  Never generated
    #: by :func:`generate_trace` (outages carry their own rejoin); exists
    #: for hand-written traces.
    REJOIN = "rejoin"


@dataclass(frozen=True)
class FaultEvent:
    """One failure (or recovery) at a wall-clock instant.

    ``duration`` is meaningful for outages and slowdowns; ``factor``
    only for slowdowns (how many times slower the cluster runs).
    """

    kind: FaultKind
    cluster: str
    at_time: float
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.cluster:
            raise ConfigurationError("fault event needs a cluster name")
        if self.at_time < 0:
            raise ConfigurationError(
                f"fault time must be >= 0, got {self.at_time!r}"
            )
        if self.kind in (FaultKind.OUTAGE, FaultKind.SLOWDOWN):
            if self.duration <= 0:
                raise ConfigurationError(
                    f"{self.kind.value} needs duration > 0, "
                    f"got {self.duration!r}"
                )
        if self.kind is FaultKind.SLOWDOWN and self.factor <= 1.0:
            raise ConfigurationError(
                f"slowdown factor must be > 1, got {self.factor!r}"
            )

    @property
    def end_time(self) -> float:
        """When the event's effect ends (``inf`` for a crash)."""
        if self.kind is FaultKind.CRASH:
            return math.inf
        if self.kind is FaultKind.REJOIN:
            return self.at_time
        return self.at_time + self.duration

    def sort_key(self) -> tuple[float, str, str]:
        """Deterministic event ordering: time, then cluster, then kind."""
        return (self.at_time, self.cluster, self.kind.value)

    def to_dict(self) -> dict[str, Any]:
        """JSON-representable projection (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind.value,
            "cluster": self.cluster,
            "at_time": self.at_time,
            "duration": self.duration,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        try:
            return cls(
                kind=FaultKind(raw["kind"]),
                cluster=str(raw["cluster"]),
                at_time=float(raw["at_time"]),
                duration=float(raw.get("duration", 0.0)),
                factor=float(raw.get("factor", 1.0)),
            )
        except (KeyError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed fault event {raw!r}: {exc}"
            ) from exc


@dataclass(frozen=True)
class FaultTrace:
    """An immutable, time-sorted sequence of fault events."""

    events: tuple[FaultEvent, ...] = ()

    @classmethod
    def of(cls, events: Iterable[FaultEvent]) -> "FaultTrace":
        """A trace from any iterable, sorted deterministically."""
        return cls(tuple(sorted(events, key=FaultEvent.sort_key)))

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=FaultEvent.sort_key))
        if ordered != self.events:
            raise ConfigurationError(
                "fault trace events must be time-sorted; "
                "build with FaultTrace.of(...)"
            )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        """Whether the trace injects nothing."""
        return not self.events

    def for_cluster(self, cluster: str) -> "FaultTrace":
        """The sub-trace affecting one cluster."""
        return FaultTrace(
            tuple(e for e in self.events if e.cluster == cluster)
        )

    def clusters(self) -> tuple[str, ...]:
        """Every cluster named by at least one event, sorted."""
        return tuple(sorted({e.cluster for e in self.events}))

    def counts_by_kind(self) -> dict[str, int]:
        """``{kind: events}`` over the whole trace (zeros omitted)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-representable projection of every event, in order."""
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_dicts(cls, raw: Iterable[Mapping[str, Any]]) -> "FaultTrace":
        """Rebuild a trace from :meth:`to_dicts` output."""
        return cls.of(FaultEvent.from_dict(entry) for entry in raw)

    def describe(self) -> str:
        """Human-readable event listing."""
        if not self.events:
            return "fault trace: empty"
        lines = [f"fault trace: {len(self.events)} event(s)"]
        for event in self.events:
            extra = ""
            if event.kind is FaultKind.OUTAGE:
                extra = f" for {event.duration / 3600:.2f} h"
            elif event.kind is FaultKind.SLOWDOWN:
                extra = (
                    f" x{event.factor:.2f} for {event.duration / 3600:.2f} h"
                )
            lines.append(
                f"  {event.at_time / 3600:7.2f} h  {event.kind.value:8s} "
                f"{event.cluster}{extra}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class FaultProfile:
    """Per-cluster failure statistics for :func:`generate_trace`.

    ``mtbf_seconds`` is the mean of the exponential inter-failure gap,
    ``mttr_seconds`` the mean of the exponential outage/slowdown
    duration.  ``kind_weights`` splits arrivals between crash, outage,
    and slowdown (weights are normalized; a zero weight disables the
    kind).  ``slowdown_range`` bounds the uniform slowdown factor.
    """

    mtbf_seconds: float
    mttr_seconds: float = 3600.0
    kind_weights: tuple[float, float, float] = (0.1, 0.6, 0.3)
    slowdown_range: tuple[float, float] = (1.5, 4.0)

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ConfigurationError(
                f"mtbf_seconds must be > 0, got {self.mtbf_seconds!r}"
            )
        if self.mttr_seconds <= 0:
            raise ConfigurationError(
                f"mttr_seconds must be > 0, got {self.mttr_seconds!r}"
            )
        if len(self.kind_weights) != 3 or any(
            w < 0 for w in self.kind_weights
        ) or not any(w > 0 for w in self.kind_weights):
            raise ConfigurationError(
                f"kind_weights must be three non-negative weights with a "
                f"positive sum, got {self.kind_weights!r}"
            )
        low, high = self.slowdown_range
        if not (1.0 < low <= high):
            raise ConfigurationError(
                f"slowdown_range must satisfy 1 < low <= high, "
                f"got {self.slowdown_range!r}"
            )

    @classmethod
    def outages_only(
        cls, mtbf_seconds: float, mttr_seconds: float = 3600.0
    ) -> "FaultProfile":
        """A profile that only takes clusters down transiently.

        Every cluster eventually comes back, so a campaign under this
        profile always completes — the right regime for degradation
        sweeps (:mod:`repro.experiments.resilience`).
        """
        return cls(
            mtbf_seconds=mtbf_seconds,
            mttr_seconds=mttr_seconds,
            kind_weights=(0.0, 1.0, 0.0),
        )


def _cluster_rng(seed: int, cluster: str) -> random.Random:
    """An independent, deterministic RNG stream per (seed, cluster)."""
    return random.Random(f"fault-trace:{seed}:{cluster}")


def _pick_kind(rng: random.Random, weights: tuple[float, float, float]) -> FaultKind:
    """Draw crash/outage/slowdown proportionally to ``weights``."""
    total = sum(weights)
    roll = rng.random() * total
    if roll < weights[0]:
        return FaultKind.CRASH
    if roll < weights[0] + weights[1]:
        return FaultKind.OUTAGE
    return FaultKind.SLOWDOWN


def generate_trace(
    profiles: Mapping[str, FaultProfile],
    horizon_seconds: float,
    seed: int,
) -> FaultTrace:
    """Draw a deterministic failure trace over ``[0, horizon_seconds)``.

    ``profiles`` maps cluster names to their failure statistics; a
    cluster with no entry never fails.  Each cluster's arrivals follow
    a renewal process — exponential time to the next failure, then the
    failure's own duration (crashes end the cluster's stream) — so
    events of one cluster never overlap.  Identical arguments yield a
    bit-for-bit identical trace.
    """
    if horizon_seconds <= 0:
        raise ConfigurationError(
            f"horizon_seconds must be > 0, got {horizon_seconds!r}"
        )
    events: list[FaultEvent] = []
    for cluster in sorted(profiles):
        profile = profiles[cluster]
        rng = _cluster_rng(seed, cluster)
        now = 0.0
        while True:
            now += rng.expovariate(1.0 / profile.mtbf_seconds)
            if now >= horizon_seconds:
                break
            kind = _pick_kind(rng, profile.kind_weights)
            if kind is FaultKind.CRASH:
                events.append(FaultEvent(kind, cluster, now))
                break  # the stream dies with the cluster
            duration = rng.expovariate(1.0 / profile.mttr_seconds)
            # Degenerate draws would fail event validation; floor them.
            duration = max(duration, 1.0)
            if kind is FaultKind.SLOWDOWN:
                low, high = profile.slowdown_range
                factor = rng.uniform(low, high)
                events.append(
                    FaultEvent(kind, cluster, now, duration, factor)
                )
            else:
                events.append(FaultEvent(kind, cluster, now, duration))
            now += duration
    trace = FaultTrace.of(events)
    if obs.enabled():
        for kind, count in trace.counts_by_kind().items():
            obs.inc("faults.events_generated", count, kind=kind)
    obs.log_event(
        _log, "faults.trace_generated",
        seed=seed,
        horizon_s=horizon_seconds,
        events=len(trace),
        by_kind=trace.counts_by_kind(),
    )
    return trace
