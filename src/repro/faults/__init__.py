"""repro.faults — deterministic fault injection across every layer.

The paper's campaign runs for weeks on Grid'5000; real deployments of
that scale see sites crash, drop offline for hours, and run degraded.
This subsystem makes those regimes a first-class, *seeded* input so the
rest of the codebase can be tested and measured under failure:

* :mod:`repro.faults.trace` — the failure-trace artifact:
  :class:`FaultEvent`/:class:`FaultTrace` (crash, transient outage,
  slowdown, rejoin) and :func:`generate_trace`, a per-cluster
  MTBF/MTTR renewal process whose output is bit-for-bit reproducible
  from ``(profiles, horizon, seed)``;
* :mod:`repro.faults.hooks` — the engine-level injector:
  :class:`FaultHook` compiles one cluster's sub-trace into an exact
  monotone time warp plus a crash instant, honoring the paper's
  monthly restart-file checkpoints (finished months are safe, the
  month in flight is lost);
* :mod:`repro.faults.chaos` — the service-level injector:
  :class:`ChaosConfig`/:class:`ChaosMonkey` arm the job queue with
  deterministic worker crashes, forced timeouts, and transient
  executor errors.

Campaign-level replanning over a trace lives in
:func:`repro.middleware.recovery.run_campaign_with_faults`; the
degradation study in :mod:`repro.experiments.resilience`.  See
``docs/RESILIENCE.md``.
"""

from __future__ import annotations

from repro.faults.chaos import CHAOS_ACTIONS, ChaosConfig, ChaosMonkey
from repro.faults.hooks import FaultHook, FaultOutcome, simulate_with_faults
from repro.faults.trace import (
    FaultEvent,
    FaultKind,
    FaultProfile,
    FaultTrace,
    generate_trace,
)

__all__ = [
    # trace
    "FaultKind",
    "FaultEvent",
    "FaultTrace",
    "FaultProfile",
    "generate_trace",
    # hooks
    "FaultHook",
    "FaultOutcome",
    "simulate_with_faults",
    # chaos
    "CHAOS_ACTIONS",
    "ChaosConfig",
    "ChaosMonkey",
]
