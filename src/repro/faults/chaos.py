"""Service-layer chaos injection — deterministic fault storms.

The campaign service's retry/backoff and crash-recovery paths
(:mod:`repro.service.queue`, ``RunStore.recover_interrupted``) were
historically exercised by single hand-crafted faults.  A
:class:`ChaosConfig` instead arms the dispatcher with a *seeded*
monkey that, on each job execution, may inject one of three failure
modes the real worker pool exhibits:

* ``crash`` — the worker process dies (the pool is rebuilt, the
  execution counts as a failed attempt);
* ``timeout`` — the job exceeds its wall-clock budget (same handling
  as a real :class:`asyncio.TimeoutError`);
* ``error`` — a transient executor exception (plain failed attempt,
  no pool rebuild).

Decisions are a pure function of ``(seed, run_id, attempt)`` — not of
scheduler interleaving — so a chaotic campaign is *replayable*: the
same submissions under the same seed hit the same storms, which is what
lets the chaos suite assert exact outcomes.  Injection happens behind
the flag (``JobQueue(..., chaos=ChaosConfig(...))`` or ``repro-oa
serve --chaos-rate``); a ``None`` config costs nothing.

The worker fleet gets its own monkey: :class:`FleetChaosConfig` /
:class:`FleetChaosMonkey` inject *process-level* failures
(:data:`FLEET_CHAOS_ACTIONS` — SIGKILL after claim, SIGKILL during
heartbeat, store partition) into :class:`~repro.service.fleet.
FleetWorker`, exercising lease expiry, reaper reassignment, and
owner-checked completion instead of in-pool retry paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import obs
from repro.exceptions import ServiceError

__all__ = [
    "CHAOS_ACTIONS",
    "ChaosConfig",
    "ChaosMonkey",
    "FLEET_CHAOS_ACTIONS",
    "FleetChaosConfig",
    "FleetChaosMonkey",
]

_log = obs.get_logger(__name__)

#: Injectable failure modes, in decision-threshold order.
CHAOS_ACTIONS: tuple[str, ...] = ("crash", "timeout", "error")

#: Fleet-level failure modes (decision-threshold order): ``kill`` is a
#: SIGKILL right after the claim (the lease is never released),
#: ``kill-heartbeat`` is a SIGKILL after one successful lease renewal
#: (the lease looks *fresh* when the worker dies), and ``partition``
#: cuts the worker off from the store mid-job — heartbeats stop, the
#: job still "completes", and the owner-checked write must lose.
FLEET_CHAOS_ACTIONS: tuple[str, ...] = ("kill", "kill-heartbeat", "partition")


@dataclass(frozen=True)
class ChaosConfig:
    """Per-execution injection probabilities plus the seed.

    Each rate is the probability that one job *execution* suffers that
    failure mode; the three rates must sum to at most 1.  ``seed``
    anchors the deterministic decision stream.
    """

    seed: int = 0
    crash_rate: float = 0.0
    timeout_rate: float = 0.0
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        rates = (self.crash_rate, self.timeout_rate, self.error_rate)
        if any(r < 0 or r > 1 for r in rates):
            raise ServiceError(
                f"chaos rates must be in [0, 1], got {rates!r}",
                code="bad-request",
            )
        if sum(rates) > 1.0 + 1e-12:
            raise ServiceError(
                f"chaos rates must sum to <= 1, got {sum(rates)!r}",
                code="bad-request",
            )

    @property
    def total_rate(self) -> float:
        """Probability that an execution suffers *some* injection."""
        return self.crash_rate + self.timeout_rate + self.error_rate

    @classmethod
    def storm(cls, seed: int = 0, rate: float = 0.5) -> "ChaosConfig":
        """A balanced storm splitting ``rate`` across all three modes."""
        share = rate / 3.0
        return cls(
            seed=seed,
            crash_rate=share,
            timeout_rate=share,
            error_rate=rate - 2 * share,
        )


class ChaosMonkey:
    """The decision engine a :class:`~repro.service.queue.JobQueue` arms."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.injected = 0

    def decide(self, run_id: str, attempt: int) -> str | None:
        """Which failure (if any) execution ``attempt`` of ``run_id`` suffers.

        Deterministic in ``(seed, run_id, attempt)`` — independent of
        worker interleaving — and ``None`` means the execution proceeds
        untouched.
        """
        if self.config.total_rate <= 0.0:
            return None
        roll = random.Random(
            f"chaos:{self.config.seed}:{run_id}:{attempt}"
        ).random()
        threshold = 0.0
        for action, rate in zip(
            CHAOS_ACTIONS,
            (
                self.config.crash_rate,
                self.config.timeout_rate,
                self.config.error_rate,
            ),
            strict=True,
        ):
            threshold += rate
            if roll < threshold:
                return action
        return None

    def record(self, action: str, run_id: str, kind: str) -> None:
        """Count one injection (metrics + structured log)."""
        self.injected += 1
        obs.inc("chaos.injected", action=action, kind=kind)
        obs.log_event(
            _log, "chaos.injected",
            action=action, run_id=run_id, kind=kind, total=self.injected,
        )


@dataclass(frozen=True)
class FleetChaosConfig:
    """Per-execution fleet-failure probabilities plus the seed.

    The worker-fleet counterpart of :class:`ChaosConfig`: instead of
    in-pool failures, these modes kill or partition the *worker
    process itself* (:data:`FLEET_CHAOS_ACTIONS`), exercising lease
    expiry, the reaper, and owner-checked completion.  Rates are per
    claimed execution and must sum to at most 1; ``seed`` anchors the
    deterministic decision stream.
    """

    seed: int = 0
    kill_rate: float = 0.0
    kill_heartbeat_rate: float = 0.0
    partition_rate: float = 0.0

    def __post_init__(self) -> None:
        rates = (
            self.kill_rate,
            self.kill_heartbeat_rate,
            self.partition_rate,
        )
        if any(r < 0 or r > 1 for r in rates):
            raise ServiceError(
                f"fleet chaos rates must be in [0, 1], got {rates!r}",
                code="bad-request",
            )
        if sum(rates) > 1.0 + 1e-12:
            raise ServiceError(
                f"fleet chaos rates must sum to <= 1, got {sum(rates)!r}",
                code="bad-request",
            )

    @property
    def total_rate(self) -> float:
        """Probability that a claimed execution suffers *some* injection."""
        return self.kill_rate + self.kill_heartbeat_rate + self.partition_rate

    @classmethod
    def storm(cls, seed: int = 0, rate: float = 0.5) -> "FleetChaosConfig":
        """A balanced storm splitting ``rate`` across all three modes."""
        share = rate / 3.0
        return cls(
            seed=seed,
            kill_rate=share,
            kill_heartbeat_rate=share,
            partition_rate=rate - 2 * share,
        )


class FleetChaosMonkey:
    """The decision engine a :class:`~repro.service.fleet.FleetWorker` arms.

    Same determinism contract as :class:`ChaosMonkey` — decisions are a
    pure function of ``(seed, run_id, attempt)``, independent of which
    worker happens to claim the run, so a kill matrix replays
    identically across fleet topologies.  The decision stream is
    namespaced (``fleet-chaos:``) so arming both monkeys on one seed
    never correlates their rolls.
    """

    def __init__(self, config: FleetChaosConfig) -> None:
        self.config = config
        self.injected = 0

    def decide(self, run_id: str, attempt: int) -> str | None:
        """Which fleet failure (if any) this claimed execution suffers."""
        if self.config.total_rate <= 0.0:
            return None
        roll = random.Random(
            f"fleet-chaos:{self.config.seed}:{run_id}:{attempt}"
        ).random()
        threshold = 0.0
        for action, rate in zip(
            FLEET_CHAOS_ACTIONS,
            (
                self.config.kill_rate,
                self.config.kill_heartbeat_rate,
                self.config.partition_rate,
            ),
            strict=True,
        ):
            threshold += rate
            if roll < threshold:
                return action
        return None

    def record(self, action: str, run_id: str, kind: str) -> None:
        """Count one injection (metrics + structured log)."""
        self.injected += 1
        obs.inc("chaos.injected", action=action, kind=kind)
        obs.log_event(
            _log, "chaos.injected",
            action=action, run_id=run_id, kind=kind, total=self.injected,
        )
