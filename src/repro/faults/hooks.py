"""Engine-level fault injection — the hook the simulators accept.

A :class:`FaultHook` compiles one cluster's sub-trace into two things
the engines can consume:

* a **time warp** — a piecewise-linear monotone map between *fault-free
  simulation time* and *wall-clock time*.  Outages contribute flat
  segments (the whole cluster is stopped) and slowdowns stretched ones
  (every processor runs ``factor`` times slower).  Because cluster-level
  faults hit every processor identically, warping the fault-free
  schedule is *exact*: the engine's greedy decisions depend only on the
  order of completion events, and a monotone warp preserves that order;
* a **crash instant** — the wall-clock time after which nothing more
  runs.

Checkpoint semantics follow the paper's monthly restart files: a month
whose coupled run finished (warped end ≤ crash) wrote its restart data
to shared storage and is *safe*; the month in flight at the crash is
lost, as is every post task still pending.  :class:`FaultOutcome`
reports exactly that split, so the middleware replanner can resume each
scenario from its last completed month.

An empty hook is guaranteed free: :func:`repro.simulation.engine.simulate`
treats it as ``faults=None`` and keeps its bookkeeping-free fast path,
so results are bit-for-bit those of the fault-free engine.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace

from repro import obs
from repro.exceptions import SimulationError
from repro.faults.trace import FaultEvent, FaultKind, FaultTrace

__all__ = ["FaultHook", "FaultOutcome", "simulate_with_faults"]

_log = obs.get_logger(__name__)


@dataclass(frozen=True)
class _Window:
    """One wall-clock interval with a uniform compute rate.

    ``rate`` is progress per wall-clock second: ``0`` during an outage,
    ``1/factor`` during a slowdown.
    """

    start: float
    end: float
    rate: float


@dataclass(frozen=True)
class FaultOutcome:
    """What a fault trace did to one simulated schedule."""

    cluster_name: str
    #: wall-clock crash instant, or ``None`` when the schedule completed.
    crash_at: float | None
    #: months whose coupled run finished before the crash, per scenario.
    completed_months: dict[int, int]
    #: post tasks of completed months still pending at the crash.
    pending_posts: dict[int, int]
    #: coupled-run months destroyed (in flight or never started).
    months_lost: int
    #: processor-seconds of in-flight work destroyed (wall-clock).
    lost_work_seconds: float
    #: wall-clock makespan of the surviving schedule prefix.
    makespan: float

    @property
    def crashed(self) -> bool:
        """Whether the schedule was cut short."""
        return self.crash_at is not None


class FaultHook:
    """A compiled, single-cluster fault injector (see module docstring)."""

    def __init__(
        self,
        windows: tuple[_Window, ...] = (),
        crash_at: float | None = None,
    ) -> None:
        self.windows = windows
        self.crash_at = crash_at
        # Prefix sums: progress accumulated at each window start, and the
        # wall-clock position reached for each accumulated progress.
        self._wall_starts = [w.start for w in windows]
        self._progress_at_start: list[float] = []
        acc = 0.0
        prev_end = 0.0
        for w in windows:
            acc += w.start - prev_end  # rate-1 gap before the window
            self._progress_at_start.append(acc)
            acc += (w.end - w.start) * w.rate
            prev_end = w.end
        self._progress_after = acc
        self._last_end = prev_end

    # -- construction ------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: FaultTrace, cluster: str) -> "FaultHook":
        """Compile one cluster's events into a hook.

        The first crash wins; outage/slowdown windows after it are
        unreachable and dropped.  Overlapping windows take the *slowest*
        rate on the overlap (a stopped cluster cannot be merely slow).
        """
        events = [e for e in trace if e.cluster == cluster]
        return cls.from_events(events, cluster=cluster)

    @classmethod
    def from_events(
        cls, events: list[FaultEvent], *, cluster: str | None = None
    ) -> "FaultHook":
        """Compile a list of events (all for one cluster) into a hook."""
        crash_at: float | None = None
        raw: list[tuple[float, float, float]] = []
        for event in sorted(events, key=FaultEvent.sort_key):
            if cluster is not None and event.cluster != cluster:
                raise SimulationError(
                    f"fault hook for {cluster!r} got an event for "
                    f"{event.cluster!r}"
                )
            if event.kind is FaultKind.CRASH:
                if crash_at is None or event.at_time < crash_at:
                    crash_at = event.at_time
            elif event.kind is FaultKind.OUTAGE:
                raw.append((event.at_time, event.end_time, 0.0))
            elif event.kind is FaultKind.SLOWDOWN:
                raw.append((event.at_time, event.end_time, 1.0 / event.factor))
            # REJOIN is a campaign-level concept: a single-cluster
            # schedule cannot absorb a revived cluster, so it is ignored.
        if crash_at is not None:
            raw = [
                (s, min(e, crash_at), r)
                for s, e, r in raw
                if s < crash_at
            ]
        return cls(_normalize(raw), crash_at)

    # -- the warp ----------------------------------------------------------

    @property
    def is_noop(self) -> bool:
        """Whether this hook changes nothing (empty sub-trace)."""
        return not self.windows and self.crash_at is None

    def wallclock(self, p: float) -> float:
        """Earliest wall-clock time at which fault-free progress ``p`` is reached."""
        if not self.windows or p <= self._progress_at_start[0]:
            return p
        i = bisect.bisect_right(self._progress_at_start, p) - 1
        w = self.windows[i]
        done_at_start = self._progress_at_start[i]
        in_window = (w.end - w.start) * w.rate
        if p <= done_at_start + in_window:
            if w.rate == 0.0:
                # Progress p is reached exactly at the window start (the
                # flat segment adds nothing) — p == done_at_start here.
                return w.start
            return w.start + (p - done_at_start) / w.rate
        # Past this window: the remainder accrues at rate 1 after it.
        return w.end + (p - done_at_start - in_window)

    def progress(self, t: float) -> float:
        """Fault-free progress accumulated by wall-clock time ``t``."""
        if not self.windows or t <= self.windows[0].start:
            return t
        i = bisect.bisect_right(self._wall_starts, t) - 1
        w = self.windows[i]
        done_at_start = self._progress_at_start[i]
        if t <= w.end:
            return done_at_start + (t - w.start) * w.rate
        return done_at_start + (w.end - w.start) * w.rate + (t - w.end)

    def crash_progress(self) -> float | None:
        """Fault-free time at which the crash lands (``None`` if no crash)."""
        if self.crash_at is None:
            return None
        return self.progress(self.crash_at)

    # -- application -------------------------------------------------------

    def apply(self, result, *, keep_records: bool = True):
        """Warp a traced :class:`~repro.simulation.events.SimulationResult`.

        Returns ``(warped_result, outcome)``.  The input must carry
        records (``record_trace=True``); the engines guarantee that when
        a hook is passed.  Surviving records get warped start/end times;
        tasks in flight at the crash (and everything after) are dropped.
        """
        if self.is_noop:
            outcome = _completed_outcome(result)
            if not keep_records:
                result = replace(result, records=())
            return result, outcome
        if not result.records:
            raise SimulationError(
                "fault hooks need a traced simulation (record_trace=True)"
            )
        survivors = []
        lost_work = 0.0
        completed: dict[int, int] = {
            s: 0 for s in range(result.spec.scenarios)
        }
        finished_posts: dict[int, int] = {
            s: 0 for s in range(result.spec.scenarios)
        }
        for record in result.records:
            start = self.wallclock(record.start)
            end = self.wallclock(record.end)
            if self.crash_at is not None and end > self.crash_at:
                if start < self.crash_at:
                    lost_work += (self.crash_at - start) * record.n_procs
                continue
            survivors.append(replace(record, start=start, end=end))
            if record.kind == "main":
                completed[record.scenario] += 1
            else:
                finished_posts[record.scenario] += 1
        makespan = max((r.end for r in survivors), default=0.0)
        main_makespan = max(
            (r.end for r in survivors if r.kind == "main"), default=0.0
        )
        pending_posts = {
            s: completed[s] - min(finished_posts[s], completed[s])
            for s in completed
        }
        months_lost = (
            result.spec.scenarios * result.spec.months
            - sum(completed.values())
            if self.crash_at is not None
            else 0
        )
        warped = replace(
            result,
            makespan=makespan,
            main_makespan=main_makespan,
            records=tuple(survivors) if keep_records else (),
        )
        outcome = FaultOutcome(
            cluster_name=result.cluster_name,
            crash_at=self.crash_at,
            completed_months=completed,
            pending_posts=pending_posts,
            months_lost=months_lost,
            lost_work_seconds=lost_work,
            makespan=makespan,
        )
        if obs.enabled():
            obs.inc("faults.engine_injections", cluster=result.cluster_name)
            if months_lost:
                obs.inc(
                    "faults.months_lost",
                    months_lost,
                    cluster=result.cluster_name,
                )
        return warped, outcome

    def apply_dag(self, result, dag=None, *, keep_records: bool = True):
        """Warp a traced :class:`~repro.simulation.dag_engine.DagSimulationResult`.

        Returns ``(warped_result, outcome)``.  DAG records carry task
        ids rather than ``(scenario, month)``; when ``dag`` is given its
        tasks provide the scenario mapping for the outcome's
        per-scenario accounting (otherwise ``completed_months`` and
        ``pending_posts`` stay empty).  A completed sequential task
        counts as a finished post; a sequential task whose predecessors
        all survived but which did not finish counts as pending.
        """
        if self.is_noop:
            empty = {}
            if dag is not None:
                scenarios = sorted({t.scenario for t in dag.tasks()})
                mains = {s: 0 for s in scenarios}
                for tid in dag.task_ids():
                    task = dag.task(tid)
                    if task.kind.value == "main":
                        mains[task.scenario] += 1
                completed, pending = mains, {s: 0 for s in scenarios}
            else:
                completed, pending = empty, empty
            outcome = FaultOutcome(
                cluster_name="dag",
                crash_at=None,
                completed_months=completed,
                pending_posts=pending,
                months_lost=0,
                lost_work_seconds=0.0,
                makespan=result.makespan,
            )
            if not keep_records:
                result = replace(result, records=())
            return result, outcome
        if not result.records:
            raise SimulationError(
                "fault hooks need a traced simulation (record_trace=True)"
            )
        survivors = []
        finished_ids: set[str] = set()
        lost_work = 0.0
        total_mains = 0
        surviving_mains = 0
        for record in result.records:
            if record.kind == "main":
                total_mains += 1
            start = self.wallclock(record.start)
            end = self.wallclock(record.end)
            if self.crash_at is not None and end > self.crash_at:
                if start < self.crash_at:
                    procs = record.procs_stop - record.procs_start
                    lost_work += (self.crash_at - start) * procs
                continue
            survivors.append(replace(record, start=start, end=end))
            finished_ids.add(record.task_id)
            if record.kind == "main":
                surviving_mains += 1
        makespan = max((r.end for r in survivors), default=0.0)
        main_makespan = max(
            (r.end for r in survivors if r.kind == "main"), default=0.0
        )
        completed: dict[int, int] = {}
        pending: dict[int, int] = {}
        if dag is not None:
            scenarios = sorted({t.scenario for t in dag.tasks()})
            completed = {s: 0 for s in scenarios}
            pending = {s: 0 for s in scenarios}
            for tid in dag.task_ids():
                task = dag.task(tid)
                if task.kind.value == "main":
                    if tid in finished_ids:
                        completed[task.scenario] += 1
                elif tid not in finished_ids and all(
                    p in finished_ids for p in dag.predecessors(tid)
                ):
                    pending[task.scenario] += 1
        months_lost = total_mains - surviving_mains
        warped = replace(
            result,
            makespan=makespan,
            main_makespan=main_makespan,
            records=tuple(survivors) if keep_records else (),
        )
        outcome = FaultOutcome(
            cluster_name="dag",
            crash_at=self.crash_at,
            completed_months=completed,
            pending_posts=pending,
            months_lost=months_lost,
            lost_work_seconds=lost_work,
            makespan=makespan,
        )
        if obs.enabled():
            obs.inc("faults.engine_injections", cluster="dag")
            if months_lost:
                obs.inc("faults.months_lost", months_lost, cluster="dag")
        return warped, outcome


def _normalize(raw: list[tuple[float, float, float]]) -> tuple[_Window, ...]:
    """Resolve overlaps into disjoint windows, slowest rate winning."""
    raw = [(s, e, r) for s, e, r in raw if e > s]
    if not raw:
        return ()
    bounds = sorted({b for s, e, _ in raw for b in (s, e)})
    windows: list[_Window] = []
    for left, right in zip(bounds, bounds[1:], strict=False):
        rates = [r for s, e, r in raw if s <= left and right <= e]
        if not rates:
            continue
        rate = min(rates)
        if windows and windows[-1].end == left and windows[-1].rate == rate:
            windows[-1] = _Window(windows[-1].start, right, rate)
        else:
            windows.append(_Window(left, right, rate))
    return tuple(windows)


def _completed_outcome(result) -> FaultOutcome:
    """The trivial outcome of an untouched schedule."""
    return FaultOutcome(
        cluster_name=result.cluster_name,
        crash_at=None,
        completed_months={
            s: result.spec.months for s in range(result.spec.scenarios)
        },
        pending_posts={s: 0 for s in range(result.spec.scenarios)},
        months_lost=0,
        lost_work_seconds=0.0,
        makespan=result.makespan,
    )


def simulate_with_faults(
    grouping,
    spec,
    timing,
    faults: FaultHook | FaultTrace,
    *,
    cluster_name: str = "cluster",
    record_trace: bool = False,
):
    """Simulate one cluster under faults; return ``(result, outcome)``.

    ``faults`` may be a pre-compiled :class:`FaultHook` or a full
    :class:`~repro.faults.trace.FaultTrace` (compiled against
    ``cluster_name``).  The convenience over the engine's ``faults``
    keyword is the returned :class:`FaultOutcome` — the checkpoint-level
    account the middleware replanner consumes.
    """
    from repro.simulation.engine import simulate

    if isinstance(faults, FaultTrace):
        faults = FaultHook.from_trace(faults, cluster_name)
    if faults.is_noop:
        result = simulate(
            grouping, spec, timing,
            cluster_name=cluster_name, record_trace=record_trace,
        )
        return result, _completed_outcome(result)
    base = simulate(
        grouping, spec, timing,
        cluster_name=cluster_name, record_trace=True, fast=False,
    )
    return faults.apply(base, keep_records=record_trace)
