"""Knapsack solvers — the optimization kernel behind Improvement 3.

Section 4.2 casts the processor-partitioning problem as "an instance of
the Knapsack problem with an extra constraint": a **bounded knapsack
with a cardinality cap**.  Items are group sizes ``i ∈ [4, 11]`` with
weight ``i`` (processors) and value ``1/T[i]`` (the fraction of a main
task computed per second); capacity is ``R`` and at most ``NS`` items
may be packed (no more groups than scenarios can ever be busy).

Three solvers are provided:

* :mod:`repro.knapsack.dp` — exact dynamic program, the production path;
* :mod:`repro.knapsack.branch_and_bound` — exact best-first search, used
  to cross-check the DP in tests;
* :mod:`repro.knapsack.greedy` — density-ordered approximation, the
  ablation baseline quantifying what exactness buys.
"""

from repro.knapsack.items import (
    KnapsackItem,
    CardinalityKnapsack,
    KnapsackSolution,
)
from repro.knapsack.dp import solve_dp
from repro.knapsack.branch_and_bound import solve_branch_and_bound
from repro.knapsack.greedy import solve_greedy

__all__ = [
    "KnapsackItem",
    "CardinalityKnapsack",
    "KnapsackSolution",
    "solve_dp",
    "solve_branch_and_bound",
    "solve_greedy",
]
