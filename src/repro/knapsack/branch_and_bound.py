"""Exact branch-and-bound solver (cross-check for the DP).

Depth-first search over item types in decreasing density order.  At each
node the remaining capacity and cardinality admit a fractional upper
bound — ``value + min(density_max · cap_left, v_max · card_left)`` — and
branches that cannot beat the incumbent are pruned.  The same
lexicographic tie rule as the DP (max value, then min weight) decides
between incumbents, so on any instance both exact solvers must agree on
``(value, weight)`` — a property the test suite exercises on random
instances.

This solver exists for assurance, not speed; the DP is the production
path.  It still handles the paper-scale instances instantly.
"""

from __future__ import annotations

from repro.knapsack.items import (
    CardinalityKnapsack,
    KnapsackItem,
    KnapsackSolution,
)

__all__ = ["solve_branch_and_bound"]

_TOL = 1e-12


def solve_branch_and_bound(problem: CardinalityKnapsack) -> KnapsackSolution:
    """Solve exactly by depth-first branch and bound."""
    if problem.is_trivially_empty():
        return KnapsackSolution.from_counts({}, problem)

    items: list[KnapsackItem] = sorted(
        problem.items, key=lambda it: (-it.density, it.weight)
    )
    # Suffix maxima for the two bound ingredients.
    suffix_density = [0.0] * (len(items) + 1)
    suffix_value = [0.0] * (len(items) + 1)
    for i in range(len(items) - 1, -1, -1):
        suffix_density[i] = max(suffix_density[i + 1], items[i].density)
        suffix_value[i] = max(suffix_value[i + 1], items[i].value)

    best_value = 0.0
    best_weight = 0
    best_counts: dict[int, int] = {}
    counts: dict[int, int] = {}

    def bound(idx: int, cap_left: int, card_left: int) -> float:
        by_capacity = suffix_density[idx] * cap_left
        by_cardinality = suffix_value[idx] * card_left
        return min(by_capacity, by_cardinality)

    def visit(idx: int, cap_left: int, card_left: int, value: float, weight: int) -> None:
        nonlocal best_value, best_weight, best_counts
        better = value > best_value + _TOL or (
            abs(value - best_value) <= _TOL and weight < best_weight
        )
        if better:
            best_value = value
            best_weight = weight
            best_counts = dict(counts)
        if idx == len(items) or card_left == 0 or cap_left == 0:
            return
        # Prune only strictly-worse branches: an equal-value branch may
        # still hold a lighter (tie-preferred) packing.
        if value + bound(idx, cap_left, card_left) < best_value - _TOL:
            return
        item = items[idx]
        max_take = min(card_left, cap_left // item.weight)
        # Try larger multiplicities first: good incumbents early tighten
        # pruning for the rest of the search.
        for take in range(max_take, -1, -1):
            if take:
                counts[item.name] = counts.get(item.name, 0) + take
            visit(
                idx + 1,
                cap_left - take * item.weight,
                card_left - take,
                value + take * item.value,
                weight + take * item.weight,
            )
            if take:
                counts[item.name] -= take
                if counts[item.name] == 0:
                    del counts[item.name]

    visit(0, problem.capacity, problem.max_items, 0.0, 0)
    return KnapsackSolution.from_counts(best_counts, problem)
