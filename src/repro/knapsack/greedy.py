"""Density-greedy approximation (ablation baseline).

Packs items in decreasing value-density order, as many copies of each as
capacity and cardinality allow, then makes one backfill pass with the
remaining types.  No optimality guarantee — the ablation benchmark
quantifies its gap against the exact DP, which is the empirical argument
for the paper's choice of an exact knapsack formulation.
"""

from __future__ import annotations

from repro.knapsack.items import CardinalityKnapsack, KnapsackSolution

__all__ = ["solve_greedy"]


def solve_greedy(problem: CardinalityKnapsack) -> KnapsackSolution:
    """Greedy pack by density; feasible but possibly sub-optimal."""
    if problem.is_trivially_empty():
        return KnapsackSolution.from_counts({}, problem)

    order = sorted(problem.items, key=lambda it: (-it.density, it.weight))
    cap_left = problem.capacity
    card_left = problem.max_items
    counts: dict[int, int] = {}

    for item in order:
        take = min(card_left, cap_left // item.weight)
        if take > 0:
            counts[item.name] = counts.get(item.name, 0) + take
            cap_left -= take * item.weight
            card_left -= take
        if card_left == 0 or cap_left == 0:
            break

    # Backfill: smaller leftover slots may still fit a lighter item.
    if card_left > 0 and cap_left > 0:
        for item in sorted(order, key=lambda it: it.weight):
            take = min(card_left, cap_left // item.weight)
            if take > 0:
                counts[item.name] = counts.get(item.name, 0) + take
                cap_left -= take * item.weight
                card_left -= take
            if card_left == 0 or cap_left == 0:
                break

    return KnapsackSolution.from_counts(counts, problem)
