"""Problem and solution datatypes for the cardinality-capped knapsack.

The problem solved throughout this package is::

    maximize    Σ_i  n_i · value_i
    subject to  Σ_i  n_i · weight_i  ≤  capacity
                Σ_i  n_i             ≤  max_items
                n_i ∈ ℕ

i.e. a *bounded* knapsack where the bound is a single shared cardinality
cap rather than per-item multiplicities.  Ties in total value are broken
toward smaller total weight (fewer processors used means more left for
post-processing), and solvers are required to honour that rule so their
outputs are comparable bit-for-bit in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import KnapsackError

__all__ = ["KnapsackItem", "CardinalityKnapsack", "KnapsackSolution"]


@dataclass(frozen=True)
class KnapsackItem:
    """One packable item type.

    ``name`` is any hashable label; for processor groupings it is the
    integer group size.
    """

    name: int
    weight: int
    value: float

    def __post_init__(self) -> None:
        if not isinstance(self.weight, int) or self.weight < 1:
            raise KnapsackError(
                f"item {self.name!r}: weight must be a positive int, got "
                f"{self.weight!r}"
            )
        if self.value <= 0:
            raise KnapsackError(
                f"item {self.name!r}: value must be > 0, got {self.value!r}"
            )

    @property
    def density(self) -> float:
        """Value per unit weight (the greedy solver's sort key)."""
        return self.value / self.weight


@dataclass(frozen=True)
class CardinalityKnapsack:
    """A bounded-knapsack instance with a shared cardinality cap."""

    items: tuple[KnapsackItem, ...]
    capacity: int
    max_items: int

    def __post_init__(self) -> None:
        if not self.items:
            raise KnapsackError("a knapsack instance needs at least one item type")
        names = [item.name for item in self.items]
        if len(set(names)) != len(names):
            raise KnapsackError(f"duplicate item names: {names}")
        if not isinstance(self.capacity, int) or self.capacity < 0:
            raise KnapsackError(
                f"capacity must be a non-negative int, got {self.capacity!r}"
            )
        if not isinstance(self.max_items, int) or self.max_items < 0:
            raise KnapsackError(
                f"max_items must be a non-negative int, got {self.max_items!r}"
            )

    @classmethod
    def from_weights_values(
        cls,
        weight_value: Mapping[int, tuple[int, float]] | Mapping[int, float],
        capacity: int,
        max_items: int,
    ) -> "CardinalityKnapsack":
        """Build from ``{name: value}`` (weight = name) or ``{name: (w, v)}``.

        The first form is the paper's: item names *are* the group sizes,
        which are also the weights.
        """
        items: list[KnapsackItem] = []
        for name, payload in sorted(weight_value.items()):
            if isinstance(payload, tuple):
                weight, value = payload
            else:
                weight, value = name, payload
            items.append(KnapsackItem(name, weight, value))
        return cls(tuple(items), capacity, max_items)

    def is_trivially_empty(self) -> bool:
        """True when no item can ever be packed."""
        if self.max_items == 0 or self.capacity == 0:
            return True
        return min(item.weight for item in self.items) > self.capacity


@dataclass(frozen=True)
class KnapsackSolution:
    """A feasible packing: ``counts[name]`` copies of each item type."""

    counts: tuple[tuple[int, int], ...]  # sorted (name, count>0) pairs
    value: float
    weight: int
    cardinality: int

    @classmethod
    def from_counts(
        cls, counts: Mapping[int, int], problem: CardinalityKnapsack
    ) -> "KnapsackSolution":
        """Build (and feasibility-check) a solution from raw counts."""
        by_name = {item.name: item for item in problem.items}
        clean: list[tuple[int, int]] = []
        value = 0.0
        weight = 0
        cardinality = 0
        for name, count in sorted(counts.items()):
            if count == 0:
                continue
            if count < 0:
                raise KnapsackError(f"negative count for item {name!r}")
            if name not in by_name:
                raise KnapsackError(f"unknown item {name!r} in solution")
            item = by_name[name]
            clean.append((name, count))
            value += item.value * count
            weight += item.weight * count
            cardinality += count
        if weight > problem.capacity:
            raise KnapsackError(
                f"solution weight {weight} exceeds capacity {problem.capacity}"
            )
        if cardinality > problem.max_items:
            raise KnapsackError(
                f"solution cardinality {cardinality} exceeds cap "
                f"{problem.max_items}"
            )
        return cls(tuple(clean), value, weight, cardinality)

    def count_of(self, name: int) -> int:
        """Copies of item ``name`` in this packing (0 if absent)."""
        for item_name, count in self.counts:
            if item_name == name:
                return count
        return 0

    def as_multiset(self) -> list[int]:
        """Expand to an explicit list of item names, largest first."""
        expanded: list[int] = []
        for name, count in self.counts:
            expanded.extend([name] * count)
        expanded.sort(reverse=True)
        return expanded

    def dominates(self, other: "KnapsackSolution", *, tol: float = 1e-12) -> bool:
        """Whether this solution is at least as good under the tie rule."""
        if self.value > other.value + tol:
            return True
        if abs(self.value - other.value) <= tol:
            return self.weight <= other.weight
        return False
