"""Exact dynamic program for the cardinality-capped bounded knapsack.

State ``f(k, c)`` = best ``(value, -weight)`` achievable with at most
``k`` items and capacity ``c``; transition either skips the *k*-th slot
or fills it with any item type fitting in ``c``.  The lexicographic
objective implements the global tie rule (maximum value, then minimum
weight) exactly — it is not a heuristic layered on top.

Complexity is ``O(max_items × capacity × |items|)`` time and
``O(max_items × capacity)`` space.  For the paper's instances
(``capacity ≤ ~1000``, ``max_items ≈ 10``, 8 item types) that is tens of
thousands of cell updates — microseconds, which matters because the
performance-vector computation of Section 5 solves ``NS`` instances per
cluster per experiment point.
"""

from __future__ import annotations

from repro.knapsack.items import CardinalityKnapsack, KnapsackSolution

__all__ = ["solve_dp"]


def solve_dp(problem: CardinalityKnapsack) -> KnapsackSolution:
    """Solve exactly; always returns a (possibly empty) feasible packing."""
    if problem.is_trivially_empty():
        return KnapsackSolution.from_counts({}, problem)

    capacity = problem.capacity
    max_items = problem.max_items
    items = problem.items

    # f[c] for the current k; each cell is (value, -weight).  choice[k][c]
    # records the item index used to reach (k, c), or -1 for "skip".
    empty = (0.0, 0)
    prev: list[tuple[float, int]] = [empty] * (capacity + 1)
    choices: list[list[int]] = []

    for _k in range(1, max_items + 1):
        cur = prev[:]
        choice_row = [-1] * (capacity + 1)
        for c in range(capacity + 1):
            best = cur[c]
            best_item = choice_row[c]
            for idx, item in enumerate(items):
                if item.weight > c:
                    continue
                base_value, base_negw = prev[c - item.weight]
                cand = (base_value + item.value, base_negw - item.weight)
                if cand > best:
                    best = cand
                    best_item = idx
            cur[c] = best
            choice_row[c] = best_item
        choices.append(choice_row)
        if cur == prev:
            # Adding a slot changed nothing: the cardinality cap is no
            # longer binding and every later layer would be identical.
            break
        prev = cur

    counts: dict[int, int] = {}
    c = capacity
    for choice_row in reversed(choices):
        idx = choice_row[c]
        if idx >= 0:
            item = problem.items[idx]
            counts[item.name] = counts.get(item.name, 0) + 1
            c -= item.weight
    return KnapsackSolution.from_counts(counts, problem)
