"""Paper constants for the Ocean-Atmosphere application.

Every number in this module comes straight from the paper (Caniou et al.,
INRIA RR-6695, 2008).  Figure 1 gives the per-task durations measured by
the authors' benchmarks on their reference machine; Section 2 gives the
structural parameters (processor ranges, data volumes); Section 6 gives
the spread of cluster speeds observed on Grid'5000.

Centralizing them here keeps the rest of the library free of magic
numbers and makes the calibration of the synthetic benchmark database
(:mod:`repro.platform.benchmarks`) auditable against the paper.
"""

from __future__ import annotations

from typing import Final

# ---------------------------------------------------------------------------
# Figure 1 — per-task durations (seconds) on the authors' reference machine.
# ---------------------------------------------------------------------------

#: ``concatenate_atmospheric_input_files`` — pre-processing, seconds.
CAIF_SECONDS: Final[float] = 1.0

#: ``modify_parameters`` — pre-processing, seconds.
MP_SECONDS: Final[float] = 1.0

#: ``process_coupled_run`` — the moldable main task, seconds, as printed in
#: Figure 1.  The figure does not state the processor count of that
#: benchmark; we anchor it to the full 11-processor configuration, which is
#: consistent with the Grid'5000 span of Section 6 (1177 s fastest,
#: 1622 s slowest at 11 processors — 1260 s sits inside that interval).
PCR_SECONDS: Final[float] = 1260.0

#: ``convert_output_format`` — post-processing, seconds.
COF_SECONDS: Final[float] = 60.0

#: ``extract_minimum_information`` — post-processing, seconds.  (Figure 1
#: labels it ``emf``; Section 2's prose calls it ``emi``.)
EMI_SECONDS: Final[float] = 60.0

#: ``compress_diags`` — post-processing, seconds.
CD_SECONDS: Final[float] = 60.0

#: Duration of the fused pre-processing phase (absorbed into the main task).
PRE_SECONDS: Final[float] = CAIF_SECONDS + MP_SECONDS

#: Duration of the fused post-processing task ``TP`` (Section 4.1).
POST_SECONDS: Final[float] = COF_SECONDS + EMI_SECONDS + CD_SECONDS

# ---------------------------------------------------------------------------
# Section 2 — structural parameters of the application.
# ---------------------------------------------------------------------------

#: OPA (ocean), TRIP (river runoff) and the OASIS coupler are sequential in
#: the paper's configuration: one dedicated processor each.
SEQUENTIAL_COMPONENTS: Final[int] = 3

#: The ARPEGE atmosphere model is MPI-parallel but "with more than 8
#: processors, the speedup stops".
MAX_ATMOSPHERE_PROCS: Final[int] = 8

#: Smallest useful allocation for ``process_coupled_run``: 1 atmosphere
#: processor + the 3 sequential components.
MIN_GROUP_SIZE: Final[int] = SEQUENTIAL_COMPONENTS + 1

#: Largest useful allocation: 8 atmosphere processors + 3 sequential ones.
MAX_GROUP_SIZE: Final[int] = SEQUENTIAL_COMPONENTS + MAX_ATMOSPHERE_PROCS

#: The admissible group sizes for the moldable main task, ``G ∈ [4, 11]``.
GROUP_SIZES: Final[tuple[int, ...]] = tuple(range(MIN_GROUP_SIZE, MAX_GROUP_SIZE + 1))

#: Months in one scenario: 150 years of simulated climate.
MONTHS_PER_SCENARIO: Final[int] = 150 * 12

#: Ensemble size used throughout the paper's evaluation ("the number of
#: simulations is going to be around 10").
DEFAULT_SCENARIOS: Final[int] = 10

#: Data exchanged between two consecutive monthly simulations of the same
#: scenario (restart files), bytes.
INTER_MONTH_DATA_BYTES: Final[int] = 120 * 1024 * 1024

# ---------------------------------------------------------------------------
# Section 6 — observed spread of cluster speeds on Grid'5000.
# ---------------------------------------------------------------------------

#: Fastest benchmarked cluster: one main task on 11 processors, seconds.
FASTEST_MAIN_11_SECONDS: Final[float] = 1177.0

#: Slowest benchmarked cluster: one main task on 11 processors, seconds.
SLOWEST_MAIN_11_SECONDS: Final[float] = 1622.0

#: Number of distinct clusters whose benchmarks drive Figures 8 and 10.
BENCHMARKED_CLUSTERS: Final[int] = 5
