"""One-shot reproduction report generator.

:func:`generate_report` runs every figure driver and the ablation
studies at a chosen resolution and renders a self-contained Markdown
document — the automated counterpart of the hand-curated EXPERIMENTS.md.
``repro-oa report`` exposes it from the command line, so a reviewer can
produce the complete paper-vs-measured record with one command and no
Python.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table

__all__ = ["ReportConfig", "generate_report"]


@dataclass(frozen=True)
class ReportConfig:
    """Resolution knobs for the report.

    ``quick()`` finishes in a few seconds (coarse sweeps), ``full()``
    regenerates everything at the resolution used by EXPERIMENTS.md.
    """

    scenarios: int = 10
    months: int = 60
    fig7_step: int = 1
    fig8_step: int = 1
    fig10_step: int = 4
    fig10_cluster_counts: tuple[int, ...] = (2, 3, 4, 5)
    include_ablations: bool = True

    @classmethod
    def quick(cls) -> "ReportConfig":
        """A seconds-scale configuration for smoke runs."""
        return cls(
            months=12,
            fig7_step=4,
            fig8_step=8,
            fig10_step=16,
            fig10_cluster_counts=(2, 3),
            include_ablations=False,
        )

    @classmethod
    def full(cls) -> "ReportConfig":
        """The EXPERIMENTS.md-resolution configuration."""
        return cls()


def _fig7_section(config: ReportConfig) -> str:
    from repro.experiments import fig7

    result = fig7.run(
        scenarios=config.scenarios,
        months=config.months,
        step=config.fig7_step,
    )
    runs: list[tuple[int, int, int]] = []
    for r, g in zip(result.resources, result.best_group, strict=True):
        if runs and runs[-1][2] == g:
            runs[-1] = (runs[-1][0], r, g)
        else:
            runs.append((r, r, g))
    staircase = "; ".join(
        f"R={a}-{b}: G*={g}" if a != b else f"R={a}: G*={g}"
        for a, b, g in runs
    )
    return (
        "## Figure 7 — optimal grouping staircase\n\n"
        f"NS={result.scenarios}, NM={result.months}.\n\n"
        f"```\n{staircase}\n```\n\n"
        f"Pinned at G*=11 from R={result.scenarios * 11} as the paper "
        "states.\n"
    )


def _fig8_section(config: ReportConfig) -> str:
    from repro.experiments import fig8

    result = fig8.run(
        scenarios=config.scenarios,
        months=config.months,
        step=config.fig8_step,
    )
    rows = []
    for name, series in result.stats.items():
        means = [s.mean for s in series]
        best_index = max(range(len(means)), key=lambda i: means[i])
        rows.append(
            [
                name,
                f"{max(means):+.2f}",
                result.resources[best_index],
                f"{min(means):+.2f}",
            ]
        )
    table = format_table(
        ["improvement", "max mean gain %", "at R", "min mean gain %"], rows
    )
    return (
        "## Figure 8 — gains on one cluster (mean over "
        f"{len(result.cluster_names)} clusters)\n\n{table}\n"
    )


def _fig10_section(config: ReportConfig) -> str:
    from repro.experiments import fig10

    result = fig10.run(
        scenarios=config.scenarios,
        months=config.months,
        cluster_counts=config.fig10_cluster_counts,
        step=config.fig10_step,
    )
    rows = []
    for name, values in result.gains.items():
        zeros = sum(1 for v in values if abs(v) < 1e-9)
        rows.append(
            [
                name,
                f"{max(values):+.2f}",
                f"{min(values):+.2f}",
                f"{zeros}/{len(values)}",
            ]
        )
    table = format_table(
        ["improvement", "max gain %", "min gain %", "zero-gain configs"], rows
    )
    return f"## Figure 10 — grid gains with Algorithm 1\n\n{table}\n"


def _ablation_section(config: ReportConfig) -> str:
    from repro.experiments.ablations import (
        run_analytic_vs_simulated,
        run_online_vs_static,
        run_optimality_gap,
    )

    gaps = run_analytic_vs_simulated(months=config.months, step=4)
    errors = [abs(g.relative_error) for g in gaps]
    analytic = (
        f"Equations 1–5 vs simulator over {len(gaps)} (R, G) points: "
        f"mean |err| {sum(errors) / len(errors) * 100:.3f} %, "
        f"max {max(errors) * 100:.2f} %."
    )

    opt_rows = run_optimality_gap(months=12)
    opt = format_table(
        ["R", "basic gap %", "knapsack gap %"],
        [
            [row["R"], row["basic_gap_pct"], row["knapsack_gap_pct"]]
            for row in opt_rows
        ],
    )

    online_rows = run_online_vs_static(months=12)
    online = format_table(
        ["R", "greedy-max penalty %", "knapsack-aware penalty %"],
        [
            [row["R"], row["greedy_penalty_pct"], row["aware_penalty_pct"]]
            for row in online_rows
        ],
    )
    return (
        "## Ablations\n\n"
        f"{analytic}\n\n"
        "Optimality gap vs exhaustive search:\n\n"
        f"{opt}\n\n"
        "Static groups vs online no-groups baseline:\n\n"
        f"{online}\n"
    )


def generate_report(config: ReportConfig | None = None) -> str:
    """Run the experiments and render the Markdown report."""
    config = config if config is not None else ReportConfig.quick()
    sections = [
        "# Reproduction report — Ocean-Atmosphere Modelization over the Grid",
        "",
        f"Configuration: NS={config.scenarios}, NM={config.months}; "
        f"figure steps {config.fig7_step}/{config.fig8_step}/"
        f"{config.fig10_step}.",
        "",
        _fig7_section(config),
        _fig8_section(config),
        _fig10_section(config),
    ]
    if config.include_ablations:
        sections.append(_ablation_section(config))
    return "\n".join(sections)
