"""Sensitivity of the schedule to the benchmark table.

The heuristics consume eight measured numbers per cluster (``T[4..11]``)
plus ``TP``.  Which of them actually matter?  This module perturbs each
entry by a relative ``epsilon`` and reports the makespan response, in
two regimes:

``plan-fixed``
    The grouping stays as planned from the unperturbed table; only
    execution times change.  This isolates *execution* sensitivity: an
    entry not used by any group has exactly zero effect.

``replan``
    The heuristic re-plans against the perturbed table before
    simulating on it.  This adds *decision* sensitivity: a perturbation
    can flip the chosen grouping.  Replanning usually dodges part of a
    slowdown; because the planner optimizes a *proxy* (knapsack value,
    analytic formulas) rather than the simulated makespan itself, it is
    not guaranteed to — the ``decision_margin_pct`` column makes such
    cases visible instead of hiding them.

Output is an elasticity-style table: percentage makespan change per
+``epsilon`` relative slowdown of one entry.  Together with the
benchmark-noise study (``examples/heterogeneity_study.py``) this tells a
practitioner which measurements deserve careful benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.heuristics import HeuristicName, plan_grouping
from repro.exceptions import ConfigurationError
from repro.platform.cluster import ClusterSpec
from repro.platform.timing import TableTimingModel
from repro.simulation.engine import simulate
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["EntrySensitivity", "table_sensitivity"]


@dataclass(frozen=True)
class EntrySensitivity:
    """Makespan response to slowing one table entry by ``epsilon``."""

    entry: str  # "T[4]".."T[11]" or "TP"
    baseline_makespan: float
    plan_fixed_pct: float
    replan_pct: float

    @property
    def decision_margin_pct(self) -> float:
        """How much replanning recovered (plan-fixed minus replan)."""
        return self.plan_fixed_pct - self.replan_pct


def _perturbed_timing(
    base: TableTimingModel, entry: str, factor: float
) -> TableTimingModel:
    table = dict(base.main_time_table())
    post = base.post_time()
    if entry == "TP":
        post *= factor
    else:
        g = int(entry[2:-1])
        if g not in table:
            raise ConfigurationError(f"no table entry {entry!r}")
        table[g] *= factor
    return TableTimingModel(table, post_seconds=post)


def table_sensitivity(
    cluster: ClusterSpec,
    spec: EnsembleSpec,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
    *,
    epsilon: float = 0.10,
) -> list[EntrySensitivity]:
    """Perturb every table entry by ``+epsilon`` and measure the response."""
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon!r}")
    base_timing = TableTimingModel(
        cluster.main_time_table(), post_seconds=cluster.post_time()
    )
    base_cluster = ClusterSpec(cluster.name, cluster.resources, base_timing)
    baseline_grouping = plan_grouping(base_cluster, spec, heuristic)
    baseline = simulate(baseline_grouping, spec, base_timing).makespan

    entries = [*(f"T[{g}]" for g in base_timing.group_sizes), "TP"]
    out: list[EntrySensitivity] = []
    for entry in entries:
        perturbed = _perturbed_timing(base_timing, entry, 1.0 + epsilon)
        perturbed_cluster = ClusterSpec(
            cluster.name, cluster.resources, perturbed
        )
        fixed = simulate(baseline_grouping, spec, perturbed).makespan
        replanned_grouping = plan_grouping(perturbed_cluster, spec, heuristic)
        replanned = simulate(replanned_grouping, spec, perturbed).makespan
        out.append(
            EntrySensitivity(
                entry=entry,
                baseline_makespan=baseline,
                plan_fixed_pct=(fixed - baseline) / baseline * 100.0,
                replan_pct=(replanned - baseline) / baseline * 100.0,
            )
        )
    return out
