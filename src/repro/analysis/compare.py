"""Drift comparison between archived figure results.

Reproduction runs serialized with :mod:`repro.experiments.results_io`
can be compared across library versions or platforms: load two
archives, diff the shared series, and get a per-series drift summary.
Zero drift means the runs are bit-compatible; a report of *where* they
diverge turns "the numbers changed" into an actionable diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.experiments.fig7 import Fig7Result
    from repro.experiments.fig8 import Fig8Result
    from repro.experiments.fig10 import Fig10Result

__all__ = ["SeriesDrift", "compare_results", "format_drift"]


@dataclass(frozen=True)
class SeriesDrift:
    """Drift of one shared series between two runs."""

    series: str
    points: int
    max_abs_diff: float
    mean_abs_diff: float
    first_divergence_index: int | None

    @property
    def identical(self) -> bool:
        """Whether the series match exactly."""
        return self.first_divergence_index is None


def _diff_series(
    name: str, a: Sequence[float], b: Sequence[float], tol: float
) -> SeriesDrift:
    if len(a) != len(b):
        raise ConfigurationError(
            f"series {name!r} has {len(a)} vs {len(b)} points; compare runs "
            f"with identical sweep parameters"
        )
    diffs = [abs(float(x) - float(y)) for x, y in zip(a, b, strict=True)]
    first = next((i for i, d in enumerate(diffs) if d > tol), None)
    return SeriesDrift(
        series=name,
        points=len(a),
        max_abs_diff=max(diffs, default=0.0),
        mean_abs_diff=(sum(diffs) / len(diffs)) if diffs else 0.0,
        first_divergence_index=first,
    )


def compare_results(
    a: "Fig7Result | Fig8Result | Fig10Result",
    b: "Fig7Result | Fig8Result | Fig10Result",
    *,
    tol: float = 0.0,
) -> list[SeriesDrift]:
    """Diff every shared series of two same-figure results."""
    # Imported here, not at module scope: repro.analysis is a dependency
    # of the figure drivers, so a top-level import would be circular.
    # Fig8/Fig10 results are then distinguished structurally (stats vs
    # gains) to keep the runtime imports minimal.
    from repro.experiments.fig7 import Fig7Result

    if type(a) is not type(b):
        raise ConfigurationError(
            f"cannot compare {type(a).__name__} with {type(b).__name__}"
        )
    drifts: list[SeriesDrift] = []
    if isinstance(a, Fig7Result):
        drifts.append(
            _diff_series(
                "best_group",
                [float(g) for g in a.best_group],
                [float(g) for g in b.best_group],
                tol,
            )
        )
    elif hasattr(a, "stats"):
        for name in a.stats:
            if name not in b.stats:
                raise ConfigurationError(f"series {name!r} missing in second run")
            drifts.append(
                _diff_series(
                    f"{name}.mean",
                    [s.mean for s in a.stats[name]],
                    [s.mean for s in b.stats[name]],
                    tol,
                )
            )
    else:
        for name in a.gains:
            if name not in b.gains:
                raise ConfigurationError(f"series {name!r} missing in second run")
            drifts.append(
                _diff_series(name, a.gains[name], b.gains[name], tol)
            )
    return drifts


def format_drift(drifts: list[SeriesDrift]) -> str:
    """Human-readable drift summary."""
    if all(d.identical for d in drifts):
        total = sum(d.points for d in drifts)
        return f"identical: {len(drifts)} series, {total} points, zero drift"
    lines = ["drift detected:"]
    for d in drifts:
        if d.identical:
            lines.append(f"  {d.series}: identical ({d.points} points)")
        else:
            lines.append(
                f"  {d.series}: max |diff| {d.max_abs_diff:.4g}, mean "
                f"{d.mean_abs_diff:.4g}, first divergence at index "
                f"{d.first_divergence_index}"
            )
    return "\n".join(lines)
