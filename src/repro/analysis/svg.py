"""Dependency-free SVG charts: line, Gantt, and histogram.

The ASCII plots of :mod:`repro.analysis.plotting` convey shape in a
terminal; this module renders the same series as standalone SVG for
reports and papers, without pulling a plotting stack into the
dependency set.  Output is deterministic (same data → byte-identical
SVG), which the tests rely on.  :func:`svg_gantt` and
:func:`svg_histogram` exist for the run reports
(:mod:`repro.analysis.runreport`): lane timelines for campaign
schedules and fault windows, bar distributions for queue latencies.

Example::

    from repro.analysis.svg import svg_line_chart
    svg = svg_line_chart(xs, {"gain3": ys}, title="Figure 8",
                         x_label="R", y_label="gain (%)")
    open("fig8.svg", "w").write(svg)
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["svg_gantt", "svg_histogram", "svg_line_chart"]

#: Color cycle (Okabe-Ito palette: colorblind-safe, print-safe).
PALETTE = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)

_MARGIN_LEFT = 64.0
_MARGIN_RIGHT = 16.0
_MARGIN_TOP = 34.0
_MARGIN_BOTTOM = 46.0


def _nice_ticks(lo: float, hi: float, target: int = 6) -> list[float]:
    """Round tick positions covering [lo, hi] (1/2/5 ladder)."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(1, target)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for factor in (1.0, 2.0, 5.0, 10.0):
        step = factor * magnitude
        if raw_step <= step:
            break
    first = math.floor(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 0.5:
        if value >= lo - step * 0.5:
            ticks.append(round(value, 10))
        value += step
    return ticks


def _fmt(value: float) -> str:
    """Compact coordinate formatting (avoids 13-digit float noise)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def svg_line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 640,
    height: int = 400,
) -> str:
    """Render named series over common x values as a standalone SVG."""
    if not series:
        raise ConfigurationError("nothing to plot")
    if len(xs) < 2:
        raise ConfigurationError("need at least two x values to plot")
    if width < 160 or height < 120:
        raise ConfigurationError("chart must be at least 160x120 pixels")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )

    x_min, x_max = min(xs), max(xs)
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_min -= 0.5
        y_max += 0.5
    if x_max == x_min:
        raise ConfigurationError("x values are all identical")

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(x: float) -> float:
        return _MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w

    def sy(y: float) -> float:
        return _MARGIN_TOP + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_escape(title)}</text>'
        )

    # Gridlines + ticks.
    for tick in _nice_ticks(y_min, y_max):
        y = sy(tick)
        parts.append(
            f'<line x1="{_fmt(_MARGIN_LEFT)}" y1="{_fmt(y)}" '
            f'x2="{_fmt(width - _MARGIN_RIGHT)}" y2="{_fmt(y)}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(_MARGIN_LEFT - 6)}" y="{_fmt(y + 4)}" '
            f'text-anchor="end">{tick:g}</text>'
        )
    for tick in _nice_ticks(x_min, x_max):
        if tick < x_min or tick > x_max:
            continue
        x = sx(tick)
        parts.append(
            f'<line x1="{_fmt(x)}" y1="{_fmt(_MARGIN_TOP)}" '
            f'x2="{_fmt(x)}" y2="{_fmt(height - _MARGIN_BOTTOM)}" '
            f'stroke="#eeeeee" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(height - _MARGIN_BOTTOM + 16)}" '
            f'text-anchor="middle">{tick:g}</text>'
        )

    # Zero line when the range straddles it.
    if y_min < 0.0 < y_max:
        y0 = sy(0.0)
        parts.append(
            f'<line x1="{_fmt(_MARGIN_LEFT)}" y1="{_fmt(y0)}" '
            f'x2="{_fmt(width - _MARGIN_RIGHT)}" y2="{_fmt(y0)}" '
            f'stroke="#888888" stroke-width="1" stroke-dasharray="4 3"/>'
        )

    # Axes.
    parts.append(
        f'<line x1="{_fmt(_MARGIN_LEFT)}" y1="{_fmt(_MARGIN_TOP)}" '
        f'x2="{_fmt(_MARGIN_LEFT)}" y2="{_fmt(height - _MARGIN_BOTTOM)}" '
        f'stroke="black" stroke-width="1"/>'
    )
    parts.append(
        f'<line x1="{_fmt(_MARGIN_LEFT)}" '
        f'y1="{_fmt(height - _MARGIN_BOTTOM)}" '
        f'x2="{_fmt(width - _MARGIN_RIGHT)}" '
        f'y2="{_fmt(height - _MARGIN_BOTTOM)}" '
        f'stroke="black" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{width / 2:.0f}" y="{height - 10}" '
        f'text-anchor="middle">{_escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="14" y="{height / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {height / 2:.0f})">'
        f"{_escape(y_label)}</text>"
    )

    # Series polylines + legend.
    legend_x = _MARGIN_LEFT + 8
    legend_y = _MARGIN_TOP + 6
    for index, (name, ys) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        points = " ".join(
            f"{_fmt(sx(x))},{_fmt(sy(y))}" for x, y in zip(xs, ys, strict=True)
        )
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.8" '
            f'points="{points}"/>'
        )
        ly = legend_y + 16 * index
        parts.append(
            f'<line x1="{_fmt(legend_x)}" y1="{_fmt(ly)}" '
            f'x2="{_fmt(legend_x + 18)}" y2="{_fmt(ly)}" '
            f'stroke="{color}" stroke-width="2.5"/>'
        )
        parts.append(
            f'<text x="{_fmt(legend_x + 24)}" y="{_fmt(ly + 4)}">'
            f"{_escape(name)}</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts)


def _escape(text: str) -> str:
    """Minimal XML escaping for labels."""
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def svg_gantt(
    lanes: Sequence[tuple[str, Sequence[Mapping[str, object]]]],
    *,
    title: str = "",
    x_label: str = "time",
    width: int = 720,
    lane_height: int = 26,
    colors: Mapping[str, str] | None = None,
) -> str:
    """Render labeled time bars on horizontal lanes as a standalone SVG.

    ``lanes`` is an ordered sequence of ``(lane_name, bars)``; each bar
    is a mapping with ``start`` and ``end`` (floats on a shared time
    axis) plus optional ``label`` (drawn inside wide-enough bars, always
    emitted as a ``<title>`` tooltip) and ``kind`` (looked up in
    ``colors``, else cycled through :data:`PALETTE` per distinct kind in
    first-appearance order).  Lanes may be empty — an idle cluster still
    deserves its named row.
    """
    if not lanes:
        raise ConfigurationError("nothing to plot")
    if width < 160 or lane_height < 12:
        raise ConfigurationError("gantt must be at least 160 wide, lanes 12 tall")
    bars_flat: list[tuple[float, float]] = []
    for name, bars in lanes:
        for bar in bars:
            start, end = float(bar["start"]), float(bar["end"])  # type: ignore[arg-type]
            if end < start:
                raise ConfigurationError(
                    f"lane {name!r}: bar ends ({end}) before it starts "
                    f"({start})"
                )
            bars_flat.append((start, end))
    if not bars_flat:
        raise ConfigurationError("every lane is empty; nothing to plot")
    t_min = min(start for start, _ in bars_flat)
    t_max = max(end for _, end in bars_flat)
    if t_max == t_min:
        t_max = t_min + 1.0

    label_w = 120.0
    height = int(_MARGIN_TOP + len(lanes) * lane_height + _MARGIN_BOTTOM)
    plot_w = width - label_w - _MARGIN_RIGHT

    def sx(t: float) -> float:
        return label_w + (t - t_min) / (t_max - t_min) * plot_w

    palette: dict[str, str] = dict(colors or {})

    def color_for(kind: str) -> str:
        if kind not in palette:
            palette[kind] = PALETTE[len(palette) % len(PALETTE)]
        return palette[kind]

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_escape(title)}</text>'
        )
    for tick in _nice_ticks(t_min, t_max):
        if tick < t_min or tick > t_max:
            continue
        x = sx(tick)
        parts.append(
            f'<line x1="{_fmt(x)}" y1="{_fmt(_MARGIN_TOP)}" '
            f'x2="{_fmt(x)}" y2="{_fmt(height - _MARGIN_BOTTOM)}" '
            f'stroke="#eeeeee" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(height - _MARGIN_BOTTOM + 16)}" '
            f'text-anchor="middle">{tick:g}</text>'
        )
    for index, (name, bars) in enumerate(lanes):
        top = _MARGIN_TOP + index * lane_height
        mid = top + lane_height / 2.0
        if index % 2:
            parts.append(
                f'<rect x="{_fmt(label_w)}" y="{_fmt(top)}" '
                f'width="{_fmt(plot_w)}" height="{lane_height}" '
                f'fill="#f7f7f7"/>'
            )
        parts.append(
            f'<text x="{_fmt(label_w - 8)}" y="{_fmt(mid + 4)}" '
            f'text-anchor="end">{_escape(name)}</text>'
        )
        for bar in bars:
            start, end = float(bar["start"]), float(bar["end"])  # type: ignore[arg-type]
            kind = str(bar.get("kind", "task"))
            label = str(bar.get("label", ""))
            x0, x1 = sx(start), sx(max(end, start))
            bar_w = max(x1 - x0, 1.0)
            parts.append(
                f'<rect x="{_fmt(x0)}" y="{_fmt(top + 4)}" '
                f'width="{_fmt(bar_w)}" height="{lane_height - 8}" '
                f'fill="{color_for(kind)}" fill-opacity="0.85" rx="2">'
                f"<title>{_escape(label or kind)}: "
                f"{start:g}&#8211;{end:g}</title></rect>"
            )
            if label and bar_w > 7.0 * len(label):
                parts.append(
                    f'<text x="{_fmt(x0 + bar_w / 2)}" y="{_fmt(mid + 4)}" '
                    f'text-anchor="middle" fill="white" font-size="10">'
                    f"{_escape(label)}</text>"
                )
    parts.append(
        f'<line x1="{_fmt(label_w)}" '
        f'y1="{_fmt(height - _MARGIN_BOTTOM)}" '
        f'x2="{_fmt(width - _MARGIN_RIGHT)}" '
        f'y2="{_fmt(height - _MARGIN_BOTTOM)}" '
        f'stroke="black" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{width / 2:.0f}" y="{height - 10}" '
        f'text-anchor="middle">{_escape(x_label)}</text>'
    )
    legend_x = label_w
    legend_y = height - 10.0
    for kind, color in palette.items():
        parts.append(
            f'<rect x="{_fmt(legend_x)}" y="{_fmt(legend_y - 9)}" '
            f'width="10" height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{_fmt(legend_x + 14)}" y="{_fmt(legend_y)}" '
            f'font-size="10">{_escape(kind)}</text>'
        )
        legend_x += 24 + 6.2 * len(kind)
    parts.append("</svg>")
    return "\n".join(parts)


def svg_histogram(
    samples: Sequence[float],
    *,
    bins: int = 20,
    title: str = "",
    x_label: str = "value",
    y_label: str = "count",
    width: int = 640,
    height: int = 300,
    color: str = PALETTE[0],
) -> str:
    """Render a sample distribution as an SVG bar histogram.

    Bins are equal-width over ``[min, max]``; a degenerate distribution
    (all samples equal) collapses to one full-height bar rather than
    erroring, because real latency data does that.
    """
    if not samples:
        raise ConfigurationError("nothing to plot")
    if bins < 1:
        raise ConfigurationError(f"need at least one bin, got {bins!r}")
    if width < 160 or height < 120:
        raise ConfigurationError("chart must be at least 160x120 pixels")
    values = [float(s) for s in samples]
    lo, hi = min(values), max(values)
    if hi == lo:
        counts = [len(values)]
        edges = [lo, lo + 1.0]
        bins = 1
    else:
        step = (hi - lo) / bins
        counts = [0] * bins
        for value in values:
            index = min(int((value - lo) / step), bins - 1)
            counts[index] += 1
        edges = [lo + i * step for i in range(bins + 1)]
    max_count = max(counts)

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(x: float) -> float:
        return _MARGIN_LEFT + (x - edges[0]) / (edges[-1] - edges[0]) * plot_w

    def sy(count: float) -> float:
        return _MARGIN_TOP + (1.0 - count / max_count) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_escape(title)}</text>'
        )
    for tick in _nice_ticks(0.0, float(max_count)):
        if tick < 0 or tick > max_count:
            continue
        y = sy(tick)
        parts.append(
            f'<line x1="{_fmt(_MARGIN_LEFT)}" y1="{_fmt(y)}" '
            f'x2="{_fmt(width - _MARGIN_RIGHT)}" y2="{_fmt(y)}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(_MARGIN_LEFT - 6)}" y="{_fmt(y + 4)}" '
            f'text-anchor="end">{tick:g}</text>'
        )
    for tick in _nice_ticks(edges[0], edges[-1]):
        if tick < edges[0] or tick > edges[-1]:
            continue
        x = sx(tick)
        parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(height - _MARGIN_BOTTOM + 16)}" '
            f'text-anchor="middle">{tick:g}</text>'
        )
    for index, count in enumerate(counts):
        if count == 0:
            continue
        x0, x1 = sx(edges[index]), sx(edges[index + 1])
        parts.append(
            f'<rect x="{_fmt(x0)}" y="{_fmt(sy(count))}" '
            f'width="{_fmt(max(x1 - x0 - 1.0, 1.0))}" '
            f'height="{_fmt(sy(0) - sy(count))}" '
            f'fill="{color}" fill-opacity="0.85">'
            f"<title>[{edges[index]:g}, {edges[index + 1]:g}): "
            f"{count}</title></rect>"
        )
    parts.append(
        f'<line x1="{_fmt(_MARGIN_LEFT)}" y1="{_fmt(_MARGIN_TOP)}" '
        f'x2="{_fmt(_MARGIN_LEFT)}" y2="{_fmt(height - _MARGIN_BOTTOM)}" '
        f'stroke="black" stroke-width="1"/>'
    )
    parts.append(
        f'<line x1="{_fmt(_MARGIN_LEFT)}" '
        f'y1="{_fmt(height - _MARGIN_BOTTOM)}" '
        f'x2="{_fmt(width - _MARGIN_RIGHT)}" '
        f'y2="{_fmt(height - _MARGIN_BOTTOM)}" '
        f'stroke="black" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{width / 2:.0f}" y="{height - 10}" '
        f'text-anchor="middle">{_escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="14" y="{height / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {height / 2:.0f})">'
        f"{_escape(y_label)}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)
