"""Series statistics: the mean ± standard-deviation bands of Figure 8.

NumPy-vectorized because the figure sweeps produce one sample per
(resource count × cluster × heuristic) — thousands of points whose
aggregation should not dominate the experiment runtime (per the HPC
guide: vectorize the hot loop, keep the rest legible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["SeriesStats", "summarize", "summarize_many"]


@dataclass(frozen=True)
class SeriesStats:
    """Mean/std/min/max of one sample set."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    def band(self) -> tuple[float, float]:
        """The ``mean ± std`` interval plotted as Figure 8's error bars."""
        return (self.mean - self.std, self.mean + self.std)


def summarize(samples: Sequence[float]) -> SeriesStats:
    """Aggregate one sample set.

    Uses the *population* standard deviation (``ddof=0``): the five
    benchmark clusters are the entire population the paper averages
    over, not a sample from a larger one.
    """
    if len(samples) == 0:
        raise ConfigurationError("cannot summarize an empty sample set")
    arr = np.asarray(samples, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError("samples must all be finite")
    return SeriesStats(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


def summarize_many(
    samples_by_x: Sequence[tuple[float, Sequence[float]]],
) -> tuple[np.ndarray, list[SeriesStats]]:
    """Summaries for a whole sweep: ``[(x, samples), ...]``.

    Returns the x values as an array plus one :class:`SeriesStats` per
    point, preserving order.
    """
    if not samples_by_x:
        raise ConfigurationError("cannot summarize an empty sweep")
    xs = np.asarray([x for x, _ in samples_by_x], dtype=np.float64)
    stats = [summarize(samples) for _, samples in samples_by_x]
    return xs, stats
