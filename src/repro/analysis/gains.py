"""Gain computation — the paper's central evaluation metric.

A *gain* is the relative makespan reduction of an improved heuristic
over the basic one: ``(MS_basic − MS_improved) / MS_basic × 100``.
Positive is better; the paper's Figures 8 and 10 plot exactly this, and
explicitly allow slightly negative values (an "improvement" may lose on
configurations where the basic grouping happens to be optimal).
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import ConfigurationError

__all__ = ["gain_percent", "gains_over_baseline"]


def gain_percent(baseline: float, improved: float) -> float:
    """Percentage makespan reduction of ``improved`` over ``baseline``."""
    if baseline <= 0:
        raise ConfigurationError(
            f"baseline makespan must be > 0, got {baseline!r}"
        )
    if improved < 0:
        raise ConfigurationError(
            f"improved makespan must be >= 0, got {improved!r}"
        )
    return (baseline - improved) / baseline * 100.0


def gains_over_baseline(
    makespans: Mapping[str, float], baseline_key: str = "basic"
) -> dict[str, float]:
    """Gains of every heuristic in ``makespans`` over the baseline entry.

    The baseline itself is omitted from the result (its gain is 0 by
    definition and including it only clutters the figures).
    """
    if baseline_key not in makespans:
        raise ConfigurationError(
            f"no baseline entry {baseline_key!r} in {sorted(makespans)}"
        )
    baseline = makespans[baseline_key]
    return {
        name: gain_percent(baseline, value)
        for name, value in makespans.items()
        if name != baseline_key
    }
