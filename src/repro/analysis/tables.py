"""Plain-text table rendering for experiment outputs.

Every experiment module prints its results through these helpers so
that EXPERIMENTS.md, the CLI, and the benchmark harness all show the
same rows in the same format.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["format_table", "series_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but the table has "
                f"{len(headers)} columns: {row!r}"
            )
        cells: list[str] = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(r[col]) for r in rendered) for col in range(len(headers))
    ]
    lines: list[str] = []
    for i, cells in enumerate(rendered):
        line = " | ".join(cell.rjust(w) for cell, w in zip(cells, widths, strict=True))
        lines.append(line)
        if i == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def series_table(
    x_label: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """A table with one x column and one column per named series."""
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, float_format=float_format)
