"""Terminal plots and CSV export.

:func:`ascii_plot` renders multi-series line charts as text — the
library has no plotting dependency, and the paper's figures are simple
enough (staircases and gain curves) that a character grid conveys the
shape faithfully.  :func:`series_to_csv` emits the same data for anyone
who wants to regenerate publication-grade figures with their own tools.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["ascii_plot", "series_to_csv"]

#: Series glyphs, assigned in iteration order.
_GLYPHS = "*+xo#@%&"


def ascii_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render named series over common x values as an ASCII chart."""
    if not series:
        raise ConfigurationError("nothing to plot")
    if len(xs) < 2:
        raise ConfigurationError("need at least two x values to plot")
    if width < 20 or height < 5:
        raise ConfigurationError("plot must be at least 20x5 characters")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )

    x_min, x_max = min(xs), max(xs)
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if x_max == x_min:
        raise ConfigurationError("x values are all identical")
    if y_max == y_min:
        y_max = y_min + 1.0  # flat series: give the axis some room

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, int((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(height - 1, int((1.0 - frac) * (height - 1)))

    # Zero line, when it falls inside the range (gains plots).
    if y_min < 0.0 < y_max:
        zero_row = to_row(0.0)
        for col in range(width):
            grid[zero_row][col] = "-"

    legend: list[str] = []
    for idx, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph} {name}")
        for x, y in zip(xs, ys, strict=True):
            grid[to_row(y)][to_col(x)] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} [{y_min:.2f} .. {y_max:.2f}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}    legend: " + "  ".join(legend))
    return "\n".join(lines)


def series_to_csv(
    x_label: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
) -> str:
    """The plotted data as CSV text (header row + one row per x)."""
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    lines = [",".join([x_label, *series.keys()])]
    for i, x in enumerate(xs):
        cells = [repr(float(x)), *(repr(float(series[name][i])) for name in series)]
        lines.append(",".join(cells))
    return "\n".join(lines)
