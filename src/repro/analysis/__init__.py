"""Result processing: gains, statistics, tables, and ASCII plots.

The paper reports its evaluation as *gains* — percentage makespan
reduction of each improvement over the basic heuristic — averaged over
clusters with a standard deviation band (Figure 8) or per grid
configuration (Figure 10).  This subpackage computes those aggregates
and renders them as terminal-friendly tables and plots.
"""

from repro.analysis.gains import gain_percent, gains_over_baseline
from repro.analysis.stats import SeriesStats, summarize, summarize_many
from repro.analysis.tables import format_table, series_table
from repro.analysis.plotting import ascii_plot, series_to_csv
from repro.analysis.report import ReportConfig, generate_report
from repro.analysis.svg import svg_line_chart
from repro.analysis.sensitivity import EntrySensitivity, table_sensitivity
from repro.analysis.compare import SeriesDrift, compare_results, format_drift

__all__ = [
    "gain_percent",
    "gains_over_baseline",
    "SeriesStats",
    "summarize",
    "summarize_many",
    "format_table",
    "series_table",
    "ascii_plot",
    "series_to_csv",
    "ReportConfig",
    "generate_report",
    "svg_line_chart",
    "EntrySensitivity",
    "table_sensitivity",
    "SeriesDrift",
    "compare_results",
    "format_drift",
]
