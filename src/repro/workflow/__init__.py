"""Application model: tasks, DAGs, and the Ocean-Atmosphere workflow.

The paper models one climate *scenario* as a chain of identical monthly
DAGs (Figure 1), then simplifies each month to two tasks — a moldable
main-processing task and a sequential post-processing task (Figure 2).
This subpackage implements both representations and the fusion
transformation between them, on top of a small generic DAG toolkit.
"""

from repro.workflow.task import Task, TaskKind, task_id
from repro.workflow.dag import DAG
from repro.workflow.ocean_atmosphere import (
    monthly_dag,
    scenario_dag,
    ensemble_dag,
    fused_scenario_dag,
    fused_ensemble_dag,
    EnsembleSpec,
)
from repro.workflow.fusion import fuse_ocean_atmosphere
from repro.workflow.data import DataTransferModel
from repro.workflow.serialize import (
    dag_to_dict,
    dag_from_dict,
    dumps_dag,
    loads_dag,
)

__all__ = [
    "Task",
    "TaskKind",
    "task_id",
    "DAG",
    "monthly_dag",
    "scenario_dag",
    "ensemble_dag",
    "fused_scenario_dag",
    "fused_ensemble_dag",
    "EnsembleSpec",
    "fuse_ocean_atmosphere",
    "DataTransferModel",
    "dag_to_dict",
    "dag_from_dict",
    "dumps_dag",
    "loads_dag",
]
