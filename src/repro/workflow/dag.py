"""A small generic DAG toolkit.

Implements exactly the graph operations the reproduction needs —
insertion, dependency queries, topological ordering, critical-path
analysis, and structural validation — with deterministic iteration order
(insertion order) so that every downstream computation is replayable.

The implementation is dependency-free on purpose: ``networkx`` is
available in the environment, but the simulator and the property-based
tests hammer these operations in tight loops and the bespoke adjacency
maps are both faster and easier to reason about for the invariants we
check (see ``tests/workflow/test_dag.py``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.exceptions import WorkflowError
from repro.workflow.task import Task

__all__ = ["DAG"]


class DAG:
    """A directed acyclic graph of :class:`~repro.workflow.task.Task` nodes.

    Nodes are keyed by ``task.id``.  Edges point from a task to the tasks
    that depend on it (``u -> v`` means *v needs u's output*).
    Acyclicity is enforced lazily: edge insertion is O(1) and
    :meth:`topological_order` (or :meth:`validate`) raises
    :class:`~repro.exceptions.WorkflowError` if a cycle slipped in.
    """

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}
        self._succs: dict[str, list[str]] = {}
        self._preds: dict[str, list[str]] = {}

    # -- construction ---------------------------------------------------------

    def add_task(self, task: Task) -> None:
        """Insert a node; re-inserting an identical task is a no-op."""
        existing = self._tasks.get(task.id)
        if existing is not None:
            if existing != task:
                raise WorkflowError(
                    f"conflicting redefinition of task {task.id!r}"
                )
            return
        self._tasks[task.id] = task
        self._succs[task.id] = []
        self._preds[task.id] = []

    def add_edge(self, producer: str, consumer: str) -> None:
        """Add the dependency ``consumer needs producer``.

        Both endpoints must already be nodes.  Duplicate edges are
        ignored; self-loops are rejected immediately.
        """
        if producer not in self._tasks:
            raise WorkflowError(f"unknown producer task {producer!r}")
        if consumer not in self._tasks:
            raise WorkflowError(f"unknown consumer task {consumer!r}")
        if producer == consumer:
            raise WorkflowError(f"self-dependency on task {producer!r}")
        if consumer in self._succs[producer]:
            return
        self._succs[producer].append(consumer)
        self._preds[consumer].append(producer)

    def merge(self, other: "DAG") -> None:
        """Union ``other`` into this DAG (tasks and edges)."""
        for task in other.tasks():
            self.add_task(task)
        for producer, consumers in other._succs.items():
            for consumer in consumers:
                self.add_edge(producer, consumer)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def task(self, task_id: str) -> Task:
        """The task stored under ``task_id``."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise WorkflowError(f"unknown task {task_id!r}") from None

    def tasks(self) -> Iterator[Task]:
        """All tasks, in insertion order."""
        return iter(self._tasks.values())

    def task_ids(self) -> Iterator[str]:
        """All task identifiers, in insertion order."""
        return iter(self._tasks)

    def successors(self, task_id: str) -> tuple[str, ...]:
        """Tasks that consume ``task_id``'s output."""
        self.task(task_id)
        return tuple(self._succs[task_id])

    def predecessors(self, task_id: str) -> tuple[str, ...]:
        """Tasks whose output ``task_id`` consumes."""
        self.task(task_id)
        return tuple(self._preds[task_id])

    def edge_count(self) -> int:
        """Total number of dependency edges."""
        return sum(len(s) for s in self._succs.values())

    def roots(self) -> list[str]:
        """Tasks with no predecessors, in insertion order."""
        return [t for t in self._tasks if not self._preds[t]]

    def leaves(self) -> list[str]:
        """Tasks with no successors, in insertion order."""
        return [t for t in self._tasks if not self._succs[t]]

    def has_edge(self, producer: str, consumer: str) -> bool:
        """Whether the dependency ``producer -> consumer`` exists."""
        return producer in self._tasks and consumer in self._succs[producer]

    # -- algorithms --------------------------------------------------------------

    def topological_order(self) -> list[str]:
        """Kahn topological order (deterministic: FIFO over insertion order).

        Raises :class:`WorkflowError` when the graph contains a cycle.
        """
        indegree = {t: len(self._preds[t]) for t in self._tasks}
        frontier = [t for t in self._tasks if indegree[t] == 0]
        order: list[str] = []
        head = 0
        while head < len(frontier):
            node = frontier[head]
            head += 1
            order.append(node)
            for succ in self._succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self._tasks):
            stuck = sorted(t for t, d in indegree.items() if d > 0)
            raise WorkflowError(f"cycle detected involving tasks: {stuck[:8]}")
        return order

    def critical_path(
        self, duration: Callable[[Task], float] | None = None
    ) -> tuple[float, list[str]]:
        """Longest path through the DAG under ``duration``.

        ``duration`` defaults to each task's ``nominal_seconds``.  Returns
        ``(length_seconds, path_task_ids)``.  An empty DAG has an empty
        critical path of length 0.
        """
        if duration is None:
            duration = lambda t: t.nominal_seconds  # noqa: E731
        dist: dict[str, float] = {}
        via: dict[str, str | None] = {}
        for node in self.topological_order():
            d = duration(self._tasks[node])
            if d < 0:
                raise WorkflowError(f"negative duration for task {node!r}")
            best_pred: str | None = None
            best = 0.0
            for pred in self._preds[node]:
                if dist[pred] > best:
                    best = dist[pred]
                    best_pred = pred
            dist[node] = best + d
            via[node] = best_pred
        if not dist:
            return 0.0, []
        end = max(dist, key=lambda t: dist[t])
        path: list[str] = []
        cursor: str | None = end
        while cursor is not None:
            path.append(cursor)
            cursor = via[cursor]
        path.reverse()
        return dist[end], path

    def total_work(self, duration: Callable[[Task], float] | None = None) -> float:
        """Sum of task durations (lower bound on sequential execution)."""
        if duration is None:
            duration = lambda t: t.nominal_seconds  # noqa: E731
        return sum(duration(t) for t in self._tasks.values())

    def ancestors(self, task_id: str) -> set[str]:
        """All transitive predecessors of ``task_id``."""
        self.task(task_id)
        seen: set[str] = set()
        stack = list(self._preds[task_id])
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._preds[node])
        return seen

    def validate(self) -> None:
        """Check structural invariants; raise :class:`WorkflowError` on failure.

        Verifies acyclicity and the symmetry of the adjacency maps.  Every
        builder in :mod:`repro.workflow.ocean_atmosphere` calls this
        before returning.
        """
        self.topological_order()
        for producer, consumers in self._succs.items():
            for consumer in consumers:
                if producer not in self._preds[consumer]:
                    raise WorkflowError(
                        f"adjacency desync on edge {producer!r} -> {consumer!r}"
                    )
        for consumer, producers in self._preds.items():
            for producer in producers:
                if consumer not in self._succs[producer]:
                    raise WorkflowError(
                        f"adjacency desync on edge {producer!r} -> {consumer!r}"
                    )

    def subgraph(self, keep: Iterable[str]) -> "DAG":
        """The induced sub-DAG on the node set ``keep``."""
        keep_set = set(keep)
        unknown = keep_set - self._tasks.keys()
        if unknown:
            raise WorkflowError(f"unknown tasks in subgraph request: {sorted(unknown)[:8]}")
        sub = DAG()
        for tid in self._tasks:
            if tid in keep_set:
                sub.add_task(self._tasks[tid])
        for producer in self._tasks:
            if producer not in keep_set:
                continue
            for consumer in self._succs[producer]:
                if consumer in keep_set:
                    sub.add_edge(producer, consumer)
        return sub

    def group_by(self, key: Callable[[Task], object]) -> Mapping[object, list[Task]]:
        """Partition tasks by an arbitrary key (e.g. kind, scenario)."""
        groups: dict[object, list[Task]] = {}
        for task in self._tasks.values():
            groups.setdefault(key(task), []).append(task)
        return groups

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DAG {len(self)} tasks, {self.edge_count()} edges>"
