"""Builders for the Ocean-Atmosphere application DAGs.

Two granularities are provided, mirroring the paper:

* the **fine-grained** monthly DAG of Figure 1 — six tasks per month
  (``caif``, ``mp``, ``pcr``, ``cof``, ``emi``, ``cd``) with the
  benchmark durations printed in the figure;
* the **fused** two-task DAG of Figure 2 — one moldable ``main`` task
  (pre-processing + coupled run) and one sequential ``post`` task per
  month.

Dependency structure (fine-grained), for month *m* of one scenario::

    caif[m] ─┐
             ├─> pcr[m] ──> cof[m] ──> emi[m] ──> cd[m]
    mp[m] ───┘    │
                  ├──> caif[m+1]
                  └──> mp[m+1]

The coupled run of month *m+1* restarts from month *m*'s output (120 MB
of restart data), hence the inter-month edges.  Post-processing is pure
analysis: nothing downstream depends on it, which is what lets the
schedulers defer it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.exceptions import WorkflowError
from repro.workflow.dag import DAG
from repro.workflow.task import Task, TaskKind, task_id

__all__ = [
    "EnsembleSpec",
    "monthly_dag",
    "scenario_dag",
    "ensemble_dag",
    "fused_scenario_dag",
    "fused_ensemble_dag",
]

#: Fine-grained task catalogue: name -> (kind, nominal seconds, moldable).
FINE_TASKS: dict[str, tuple[TaskKind, float, bool]] = {
    "caif": (TaskKind.PRE, constants.CAIF_SECONDS, False),
    "mp": (TaskKind.PRE, constants.MP_SECONDS, False),
    "pcr": (TaskKind.MAIN, constants.PCR_SECONDS, True),
    "cof": (TaskKind.POST, constants.COF_SECONDS, False),
    "emi": (TaskKind.POST, constants.EMI_SECONDS, False),
    "cd": (TaskKind.POST, constants.CD_SECONDS, False),
}

#: In-month dependency edges of Figure 1 (by task name).
FINE_EDGES: tuple[tuple[str, str], ...] = (
    ("caif", "pcr"),
    ("mp", "pcr"),
    ("pcr", "cof"),
    ("cof", "emi"),
    ("emi", "cd"),
)

#: Inter-month edges: month *m*'s coupled run feeds month *m+1*'s inputs.
FINE_CHAIN_EDGES: tuple[tuple[str, str], ...] = (
    ("pcr", "caif"),
    ("pcr", "mp"),
)


@dataclass(frozen=True)
class EnsembleSpec:
    """Size of one ensemble experiment.

    ``scenarios`` is the paper's ``NS`` (independent simulations) and
    ``months`` its ``NM`` (chained monthly DAGs per simulation).
    """

    scenarios: int
    months: int

    def __post_init__(self) -> None:
        if self.scenarios < 1:
            raise WorkflowError(f"scenarios must be >= 1, got {self.scenarios!r}")
        if self.months < 1:
            raise WorkflowError(f"months must be >= 1, got {self.months!r}")

    @property
    def total_months(self) -> int:
        """``nbtasks`` of the paper: NS × NM monthly simulations."""
        return self.scenarios * self.months

    @classmethod
    def paper_default(cls) -> "EnsembleSpec":
        """The paper's full experiment: 10 scenarios × 1800 months."""
        return cls(constants.DEFAULT_SCENARIOS, constants.MONTHS_PER_SCENARIO)


def _add_month(dag: DAG, scenario: int, month: int) -> None:
    """Insert one fine-grained month (tasks + in-month edges)."""
    for name, (kind, seconds, moldable) in FINE_TASKS.items():
        dag.add_task(Task(name, kind, scenario, month, seconds, moldable))
    for producer, consumer in FINE_EDGES:
        dag.add_edge(
            task_id(producer, scenario, month), task_id(consumer, scenario, month)
        )


def monthly_dag(scenario: int = 0, month: int = 0) -> DAG:
    """The single-month, fine-grained DAG of Figure 1 (one half of it)."""
    dag = DAG()
    _add_month(dag, scenario, month)
    dag.validate()
    return dag


def scenario_dag(months: int, scenario: int = 0) -> DAG:
    """One scenario: ``months`` chained fine-grained monthly DAGs."""
    if months < 1:
        raise WorkflowError(f"months must be >= 1, got {months!r}")
    dag = DAG()
    for month in range(months):
        _add_month(dag, scenario, month)
        if month > 0:
            for producer, consumer in FINE_CHAIN_EDGES:
                dag.add_edge(
                    task_id(producer, scenario, month - 1),
                    task_id(consumer, scenario, month),
                )
    dag.validate()
    return dag


def ensemble_dag(spec: EnsembleSpec) -> DAG:
    """The full fine-grained experiment: NS independent scenario chains."""
    dag = DAG()
    for scenario in range(spec.scenarios):
        dag.merge(scenario_dag(spec.months, scenario))
    dag.validate()
    return dag


# ---------------------------------------------------------------------------
# Fused (Figure 2) representation.
# ---------------------------------------------------------------------------


def _fused_main(scenario: int, month: int) -> Task:
    return Task(
        "main",
        TaskKind.MAIN,
        scenario,
        month,
        constants.PRE_SECONDS + constants.PCR_SECONDS,
        moldable=True,
    )


def _fused_post(scenario: int, month: int) -> Task:
    return Task("post", TaskKind.POST, scenario, month, constants.POST_SECONDS)


def fused_scenario_dag(months: int, scenario: int = 0) -> DAG:
    """One scenario in the fused two-task-per-month model of Figure 2.

    Edges: ``main[m] -> main[m+1]`` (restart chain) and
    ``main[m] -> post[m]`` (analysis of month *m*'s output).
    """
    if months < 1:
        raise WorkflowError(f"months must be >= 1, got {months!r}")
    dag = DAG()
    for month in range(months):
        dag.add_task(_fused_main(scenario, month))
        dag.add_task(_fused_post(scenario, month))
        dag.add_edge(
            task_id("main", scenario, month), task_id("post", scenario, month)
        )
        if month > 0:
            dag.add_edge(
                task_id("main", scenario, month - 1),
                task_id("main", scenario, month),
            )
    dag.validate()
    return dag


def fused_ensemble_dag(spec: EnsembleSpec) -> DAG:
    """The full fused experiment: NS independent fused chains."""
    dag = DAG()
    for scenario in range(spec.scenarios):
        dag.merge(fused_scenario_dag(spec.months, scenario))
    dag.validate()
    return dag
