"""Task descriptions for the Ocean-Atmosphere workflow.

A :class:`Task` is a node of the application DAG.  Tasks are
platform-independent: they carry a *nominal* duration (the Figure 1
benchmark value on the reference machine) and, for the moldable
main-processing task, the flag that tells the scheduler to look the
actual duration up in the platform's timing model instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import WorkflowError

__all__ = ["TaskKind", "Task", "task_id"]


class TaskKind(enum.Enum):
    """Phase of a monthly simulation a task belongs to.

    The values double as display prefixes in traces and Gantt charts.
    """

    #: Pre-processing (``caif``, ``mp``) — seconds-long setup tasks.
    PRE = "pre"

    #: The moldable main-processing task (``pcr``), 4–11 processors.
    MAIN = "main"

    #: Post-processing (``cof``, ``emi``, ``cd``) — sequential analysis.
    POST = "post"

    #: A fused task produced by the Figure 1 → Figure 2 transformation.
    #: Fused mains keep kind MAIN and fused posts keep kind POST; FUSED is
    #: reserved for tasks whose members span phases (not used by the
    #: paper's fusion, available to the generic extension).
    FUSED = "fused"


def task_id(name: str, scenario: int, month: int) -> str:
    """Canonical node identifier, e.g. ``"pcr[s3,m17]"``.

    Scenario and month indices are 0-based throughout the library (the
    paper counts months 1..NM; the off-by-one is confined to display).
    """
    return f"{name}[s{scenario},m{month}]"


@dataclass(frozen=True)
class Task:
    """One node of the application DAG.

    Parameters
    ----------
    name:
        Short task name (``caif``, ``mp``, ``pcr``, ``cof``, ``emi``,
        ``cd``, or ``main``/``post`` for fused tasks).
    kind:
        The :class:`TaskKind` phase.
    scenario:
        0-based index of the scenario (independent simulation chain).
    month:
        0-based index of the month within the scenario.
    nominal_seconds:
        Reference-machine duration.  For moldable tasks this is the
        duration on the *largest* admissible group and is informational —
        schedulers resolve actual durations against a timing model.
    moldable:
        True for the main-processing task whose duration depends on its
        processor group.
    """

    name: str
    kind: TaskKind
    scenario: int
    month: int
    nominal_seconds: float
    moldable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("task name must be non-empty")
        if self.scenario < 0 or self.month < 0:
            raise WorkflowError(
                f"task {self.name!r}: scenario and month must be >= 0, got "
                f"s={self.scenario}, m={self.month}"
            )
        if self.nominal_seconds < 0:
            raise WorkflowError(
                f"task {self.name!r}: nominal_seconds must be >= 0, got "
                f"{self.nominal_seconds!r}"
            )
        if self.moldable and self.kind is not TaskKind.MAIN:
            raise WorkflowError(
                f"task {self.name!r}: only MAIN tasks may be moldable"
            )

    @property
    def id(self) -> str:
        """Canonical DAG node identifier of this task."""
        return task_id(self.name, self.scenario, self.month)

    def label(self) -> str:
        """Human display label, 1-based like the paper's figures."""
        return f"{self.name}{self.month + 1}(s{self.scenario + 1})"
