"""JSON (de)serialization of workflow DAGs.

Lets experiment definitions travel: a campaign's DAG can be exported,
archived alongside its results, and re-imported bit-for-bit — the
round-trip is the tested contract.  The format is deliberately plain
(no class tags, no versioned envelopes beyond a single ``format`` key)
so that external tools can generate workloads for the scheduler without
importing this library.

Schema::

    {
      "format": "repro-dag/1",
      "tasks": [
        {"name": "main", "kind": "main", "scenario": 0, "month": 0,
         "nominal_seconds": 1262.0, "moldable": true},
        ...
      ],
      "edges": [["main[s0,m0]", "post[s0,m0]"], ...]
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import WorkflowError
from repro.workflow.dag import DAG
from repro.workflow.task import Task, TaskKind

__all__ = ["dag_to_dict", "dag_from_dict", "dumps_dag", "loads_dag"]

#: Format identifier written into every export.
FORMAT = "repro-dag/1"


def dag_to_dict(dag: DAG) -> dict[str, Any]:
    """Convert a DAG to a JSON-ready dictionary."""
    tasks = [
        {
            "name": task.name,
            "kind": task.kind.value,
            "scenario": task.scenario,
            "month": task.month,
            "nominal_seconds": task.nominal_seconds,
            "moldable": task.moldable,
        }
        for task in dag.tasks()
    ]
    edges = [
        [producer, consumer]
        for producer in dag.task_ids()
        for consumer in dag.successors(producer)
    ]
    return {"format": FORMAT, "tasks": tasks, "edges": edges}


def dag_from_dict(payload: dict[str, Any]) -> DAG:
    """Rebuild a DAG from :func:`dag_to_dict` output.

    Raises :class:`~repro.exceptions.WorkflowError` on schema problems;
    structural problems (cycles, unknown endpoints) surface through the
    DAG's own validation.
    """
    if not isinstance(payload, dict):
        raise WorkflowError(f"expected a dict payload, got {type(payload).__name__}")
    if payload.get("format") != FORMAT:
        raise WorkflowError(
            f"unsupported format {payload.get('format')!r}; expected {FORMAT!r}"
        )
    dag = DAG()
    for raw in payload.get("tasks", []):
        try:
            kind = TaskKind(raw["kind"])
            task = Task(
                raw["name"],
                kind,
                int(raw["scenario"]),
                int(raw["month"]),
                float(raw["nominal_seconds"]),
                bool(raw.get("moldable", False)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise WorkflowError(f"malformed task entry {raw!r}: {exc}") from exc
        dag.add_task(task)
    for raw_edge in payload.get("edges", []):
        if not isinstance(raw_edge, (list, tuple)) or len(raw_edge) != 2:
            raise WorkflowError(f"malformed edge entry {raw_edge!r}")
        dag.add_edge(raw_edge[0], raw_edge[1])
    dag.validate()
    return dag


def dumps_dag(dag: DAG, *, indent: int | None = None) -> str:
    """Serialize a DAG to a JSON string."""
    return json.dumps(dag_to_dict(dag), indent=indent)


def loads_dag(text: str) -> DAG:
    """Deserialize a DAG from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkflowError(f"invalid JSON: {exc}") from exc
    return dag_from_dict(payload)
