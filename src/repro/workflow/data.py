"""Inter-task data-transfer model.

Section 2: "Data exchanges between two consecutive monthly simulations
belonging to the same scenario reaches 120 MB.  Simulations are
independent, so there are no other data exchange."  Section 4.1 then
assumes "the execution time of any task is assumed to include the time
to access the data" — i.e. on a single cluster transfers are folded into
``T[G]``.

This model is therefore only load-bearing at the *grid* level: it
quantifies why a scenario, once placed on a cluster, should not migrate
(Algorithm 1's "once a scenario has been scheduled on a cluster, it can
not change location"), and it lets the middleware simulate message and
restart-file latencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.exceptions import ConfigurationError

__all__ = ["DataTransferModel"]


@dataclass(frozen=True)
class DataTransferModel:
    """Latency + bandwidth model of a network path.

    Parameters
    ----------
    bandwidth_bytes_per_s:
        Sustained throughput of the path.  The default, 1 Gbit/s, is the
        order of magnitude of Grid'5000's 2008 inter-site links (the
        backbone was 10 Gbit/s, shared).
    latency_s:
        Per-transfer startup latency.
    """

    bandwidth_bytes_per_s: float = 1e9 / 8
    latency_s: float = 0.010

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(
                f"bandwidth must be > 0, got {self.bandwidth_bytes_per_s!r}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency_s!r}")

    def transfer_time(self, nbytes: int | float) -> float:
        """Seconds to move ``nbytes`` over this path."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes!r}")
        return self.latency_s + float(nbytes) / self.bandwidth_bytes_per_s

    def inter_month_transfer_time(self) -> float:
        """Seconds to move one month's 120 MB restart data."""
        return self.transfer_time(constants.INTER_MONTH_DATA_BYTES)

    def migration_penalty(self, months: int) -> float:
        """Restart-data cost of moving a scenario after ``months`` months.

        Only the latest month's restart files need to move, but the
        receiving cluster also re-reads the scenario's accumulated
        diagnostic archive; we charge one inter-month volume plus a 10 %
        archive surcharge per elapsed month.  Used by the middleware to
        justify (and by tests to quantify) the no-migration rule.
        """
        if months < 0:
            raise ConfigurationError(f"months must be >= 0, got {months!r}")
        archive_bytes = 0.10 * constants.INTER_MONTH_DATA_BYTES * months
        return self.transfer_time(constants.INTER_MONTH_DATA_BYTES + archive_bytes)
