"""The Figure 1 → Figure 2 fusion transformation.

Section 4.1: "Given the short duration of the pre-processing tasks
compared to the duration of the main-processing task, we made the
decision to group them all in a single task.  The same decision was
taken for the 3 post-processing tasks."

:func:`fuse_ocean_atmosphere` performs that transformation on any
fine-grained Ocean-Atmosphere DAG produced by
:mod:`repro.workflow.ocean_atmosphere`: per (scenario, month) it
collapses the PRE tasks into the moldable MAIN task and the POST tasks
into one sequential POST task, rewiring dependencies so that the fused
DAG is exactly the one :func:`~repro.workflow.ocean_atmosphere.fused_scenario_dag`
builds directly (the tests assert this round-trip).
"""

from __future__ import annotations

from repro.exceptions import WorkflowError
from repro.workflow.dag import DAG
from repro.workflow.task import Task, TaskKind, task_id

__all__ = ["fuse_ocean_atmosphere"]


def _months_by_scenario(dag: DAG) -> dict[int, set[int]]:
    """Map scenario -> set of month indices present in the DAG."""
    result: dict[int, set[int]] = {}
    for task in dag.tasks():
        result.setdefault(task.scenario, set()).add(task.month)
    return result


def fuse_ocean_atmosphere(dag: DAG) -> DAG:
    """Fuse a fine-grained Ocean-Atmosphere DAG into the Figure 2 model.

    The fused MAIN task's nominal duration is the sum of the month's PRE
    durations plus the coupled run; the fused POST task sums the three
    post-processing durations.  Dependencies are rewired:

    * any fine edge between two months' tasks becomes
      ``main[m] -> main[m+1]``;
    * the in-month ``pcr -> cof`` edge becomes ``main[m] -> post[m]``.

    Raises :class:`~repro.exceptions.WorkflowError` if the input is not a
    well-formed Ocean-Atmosphere ensemble (missing phases, months with no
    main task, unexpected cross-scenario edges).
    """
    fused = DAG()
    per_cell: dict[tuple[int, int], dict[TaskKind, list[Task]]] = {}
    for task in dag.tasks():
        cell = per_cell.setdefault((task.scenario, task.month), {})
        cell.setdefault(task.kind, []).append(task)

    # Build fused nodes.
    for (scenario, month), phases in sorted(per_cell.items()):
        mains = phases.get(TaskKind.MAIN, [])
        if len(mains) != 1:
            raise WorkflowError(
                f"scenario {scenario} month {month}: expected exactly one "
                f"MAIN task, found {len(mains)}"
            )
        pre_seconds = sum(t.nominal_seconds for t in phases.get(TaskKind.PRE, []))
        post_tasks = phases.get(TaskKind.POST, [])
        fused.add_task(
            Task(
                "main",
                TaskKind.MAIN,
                scenario,
                month,
                pre_seconds + mains[0].nominal_seconds,
                moldable=True,
            )
        )
        if post_tasks:
            fused.add_task(
                Task(
                    "post",
                    TaskKind.POST,
                    scenario,
                    month,
                    sum(t.nominal_seconds for t in post_tasks),
                )
            )

    # Rewire edges at fused granularity.
    for producer_id in dag.task_ids():
        producer = dag.task(producer_id)
        for consumer_id in dag.successors(producer_id):
            consumer = dag.task(consumer_id)
            if producer.scenario != consumer.scenario:
                raise WorkflowError(
                    f"unexpected cross-scenario edge "
                    f"{producer_id!r} -> {consumer_id!r}"
                )
            src = _fused_endpoint(producer)
            dst = _fused_endpoint(consumer)
            if src == dst:
                continue  # edge absorbed inside one fused task
            fused.add_edge(
                task_id(src[0], producer.scenario, src[1]),
                task_id(dst[0], consumer.scenario, dst[1]),
            )

    fused.validate()
    _check_chain_shape(fused)
    return fused


def _fused_endpoint(task: Task) -> tuple[str, int]:
    """Which fused node a fine-grained task is absorbed into."""
    if task.kind in (TaskKind.PRE, TaskKind.MAIN):
        return ("main", task.month)
    if task.kind is TaskKind.POST:
        return ("post", task.month)
    raise WorkflowError(f"cannot fuse task of kind {task.kind!r}: {task.id!r}")


def _check_chain_shape(fused: DAG) -> None:
    """Verify the fused DAG has the Figure 2 shape, per scenario.

    Each ``main[m]`` (except the last) must feed exactly ``main[m+1]``
    and its own ``post[m]``; posts must be leaves.
    """
    months = _months_by_scenario(fused)
    for scenario, present in months.items():
        if present != set(range(len(present))):
            raise WorkflowError(
                f"scenario {scenario}: months are not contiguous from 0: "
                f"{sorted(present)[:8]}..."
            )
    for tid in fused.task_ids():
        task = fused.task(tid)
        if task.kind is TaskKind.POST and fused.successors(tid):
            raise WorkflowError(f"fused post task {tid!r} must be a leaf")
