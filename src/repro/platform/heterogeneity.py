"""Randomized heterogeneous platform generators.

The paper's evaluation uses fixed cluster speeds; these generators extend
it to randomized sensitivity studies (used by the ablation benchmarks and
the property-based tests).  All randomness flows through an explicit
:class:`numpy.random.Generator` so that every platform is reproducible
from its seed.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.exceptions import PlatformError
from repro.platform.cluster import ClusterSpec
from repro.platform.grid import GridSpec
from repro.platform.timing import (
    AmdahlTimingModel,
    TableTimingModel,
    TimingModel,
)

__all__ = ["random_cluster", "random_grid", "perturbed_timing"]


def random_cluster(
    rng: np.random.Generator,
    *,
    name: str = "random",
    min_resources: int = 11,
    max_resources: int = 120,
    min_t11: float = constants.FASTEST_MAIN_11_SECONDS,
    max_t11: float = constants.SLOWEST_MAIN_11_SECONDS,
    serial_fraction_range: tuple[float, float] = (0.15, 0.35),
) -> ClusterSpec:
    """A cluster with random size and speed inside the paper's envelope.

    ``T(11)`` is drawn uniformly from ``[min_t11, max_t11]`` (defaults to
    the published Grid'5000 extremes) and the Amdahl serial fraction from
    ``serial_fraction_range``, so the generated tables differ in *shape*
    as well as scale.
    """
    if min_resources < constants.MIN_GROUP_SIZE:
        raise PlatformError(
            f"min_resources must be >= {constants.MIN_GROUP_SIZE} so the "
            f"cluster can host at least one main-task group"
        )
    if min_resources > max_resources:
        raise PlatformError("min_resources must not exceed max_resources")
    if min_t11 > max_t11 or min_t11 <= 0:
        raise PlatformError("need 0 < min_t11 <= max_t11")
    lo, hi = serial_fraction_range
    if not (0.0 <= lo <= hi < 1.0):
        raise PlatformError(
            f"serial_fraction_range must satisfy 0 <= lo <= hi < 1, got {serial_fraction_range!r}"
        )
    resources = int(rng.integers(min_resources, max_resources + 1))
    t11 = float(rng.uniform(min_t11, max_t11))
    serial_fraction = float(rng.uniform(lo, hi))
    timing = AmdahlTimingModel.calibrated(t11, serial_fraction=serial_fraction)
    return ClusterSpec(name, resources, timing)


def random_grid(
    rng: np.random.Generator,
    n_clusters: int,
    **cluster_kwargs: object,
) -> GridSpec:
    """A grid of ``n_clusters`` independently random clusters."""
    if n_clusters < 1:
        raise PlatformError(f"n_clusters must be >= 1, got {n_clusters!r}")
    clusters = [
        random_cluster(rng, name=f"random{i}", **cluster_kwargs)  # type: ignore[arg-type]
        for i in range(n_clusters)
    ]
    return GridSpec.of(clusters)


def perturbed_timing(
    base: TimingModel,
    rng: np.random.Generator,
    *,
    relative_noise: float = 0.05,
) -> TimingModel:
    """Benchmark-noise injection: jitter every ``T[G]`` entry independently.

    Models measurement noise in the benchmark tables the heuristics
    consume.  The perturbed table keeps monotonicity by construction
    (each entry is clamped below its slower neighbour), because a
    non-monotone table would be a measurement artifact no scheduler
    should be asked to honour.
    """
    if not 0.0 <= relative_noise < 1.0:
        raise PlatformError(
            f"relative_noise must be in [0, 1), got {relative_noise!r}"
        )
    table = base.main_time_table()
    noisy: dict[int, float] = {}
    previous = float("inf")
    for g in sorted(table):
        jitter = 1.0 + float(rng.uniform(-relative_noise, relative_noise))
        value = min(table[g] * jitter, previous)
        noisy[g] = value
        previous = value
    return TableTimingModel(noisy, post_seconds=base.post_time())
