"""Platform models: processors, clusters, grids, and task timing.

This subpackage is the machine-side substrate of the reproduction.  The
paper's heuristics only ever observe a platform through two quantities —
the execution time ``T[G]`` of the moldable main task on a group of ``G``
processors, and the duration ``TP`` of a post-processing task — so the
central abstraction here is :class:`~repro.platform.timing.TimingModel`.

A :class:`~repro.platform.cluster.ClusterSpec` pairs a timing model with a
processor count; a :class:`~repro.platform.grid.GridSpec` aggregates
clusters into the heterogeneous platforms of Sections 5–6.  The synthetic
Grid'5000-like benchmark database of :mod:`repro.platform.benchmarks`
replaces the authors' testbed measurements (see DESIGN.md §2).
"""

from repro.platform.timing import (
    TimingModel,
    AmdahlTimingModel,
    TableTimingModel,
    ScaledTimingModel,
    reference_timing,
)
from repro.platform.cluster import ClusterSpec
from repro.platform.grid import GridSpec, homogeneous_grid
from repro.platform.benchmarks import (
    REFERENCE_CLUSTER_SPEEDS,
    benchmark_cluster,
    benchmark_clusters,
    benchmark_grid,
    main_time_table,
)
from repro.platform.gridfive import (
    SITE_CATALOG,
    catalog_cluster,
    catalog_grid,
    site_names,
)
from repro.platform.heterogeneity import (
    random_cluster,
    random_grid,
    perturbed_timing,
)

__all__ = [
    "TimingModel",
    "AmdahlTimingModel",
    "TableTimingModel",
    "ScaledTimingModel",
    "reference_timing",
    "ClusterSpec",
    "GridSpec",
    "homogeneous_grid",
    "REFERENCE_CLUSTER_SPEEDS",
    "benchmark_cluster",
    "benchmark_clusters",
    "benchmark_grid",
    "main_time_table",
    "SITE_CATALOG",
    "catalog_cluster",
    "catalog_grid",
    "site_names",
    "random_cluster",
    "random_grid",
    "perturbed_timing",
]
