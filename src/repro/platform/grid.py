"""Grid descriptions: heterogeneous collections of homogeneous clusters.

Grid'5000, the paper's target platform, "is a grid composed of several
clusters.  Each cluster is composed of homogeneous resources but differs
from one another."  :class:`GridSpec` captures exactly that: an ordered
collection of :class:`~repro.platform.cluster.ClusterSpec`, with the
helpers the repartition algorithm (Algorithm 1) and the middleware need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import PlatformError
from repro.platform.cluster import ClusterSpec
from repro.platform.timing import TimingModel

__all__ = ["GridSpec", "homogeneous_grid"]


@dataclass(frozen=True)
class GridSpec:
    """An ordered, immutable collection of clusters forming a grid."""

    clusters: tuple[ClusterSpec, ...]

    def __post_init__(self) -> None:
        if not self.clusters:
            raise PlatformError("a grid must contain at least one cluster")
        if not all(isinstance(c, ClusterSpec) for c in self.clusters):
            raise PlatformError("grid members must all be ClusterSpec instances")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise PlatformError(f"duplicate cluster names in grid: {dupes}")

    @classmethod
    def of(cls, clusters: Iterable[ClusterSpec]) -> "GridSpec":
        """Build a grid from any iterable of clusters."""
        return cls(tuple(clusters))

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[ClusterSpec]:
        return iter(self.clusters)

    def __getitem__(self, index: int) -> ClusterSpec:
        return self.clusters[index]

    # -- aggregate queries ----------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Cluster names in grid order."""
        return tuple(c.name for c in self.clusters)

    @property
    def total_resources(self) -> int:
        """Sum of processor counts over all clusters."""
        return sum(c.resources for c in self.clusters)

    def cluster_by_name(self, name: str) -> ClusterSpec:
        """Look a cluster up by name; raises :class:`PlatformError` if absent."""
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise PlatformError(f"no cluster named {name!r} in grid {self.names}")

    def fastest_cluster(self, group_size: int | None = None) -> ClusterSpec:
        """The cluster with the smallest main-task time.

        ``group_size`` defaults to each cluster's largest group, which is
        how Section 6 ranks clusters ("the fastest cluster executes one
        main-processing task on 11 resources in 1177 seconds").
        """
        return min(self.clusters, key=lambda c: self._rank_time(c, group_size))

    def slowest_cluster(self, group_size: int | None = None) -> ClusterSpec:
        """The cluster with the largest main-task time."""
        return max(self.clusters, key=lambda c: self._rank_time(c, group_size))

    @staticmethod
    def _rank_time(cluster: ClusterSpec, group_size: int | None) -> float:
        g = cluster.timing.max_group if group_size is None else group_size
        return cluster.main_time(g)

    def describe(self) -> str:
        """Multi-line human-readable inventory of the grid."""
        lines = [f"grid with {len(self)} cluster(s), {self.total_resources} processors:"]
        lines.extend("  " + c.describe() for c in self.clusters)
        return "\n".join(lines)


def homogeneous_grid(
    n_clusters: int,
    resources_per_cluster: int,
    timing: TimingModel,
    *,
    name_prefix: str = "cluster",
) -> GridSpec:
    """A grid of ``n_clusters`` identical clusters.

    Useful as a control configuration: Algorithm 1 on a homogeneous grid
    must spread scenarios evenly (round-robin counts), which the tests
    verify.
    """
    if n_clusters < 1:
        raise PlatformError(f"n_clusters must be >= 1, got {n_clusters!r}")
    return GridSpec.of(
        ClusterSpec(f"{name_prefix}{i}", resources_per_cluster, timing)
        for i in range(n_clusters)
    )
