"""A fuller synthetic Grid'5000 site catalog (2008 vintage).

The five-cluster benchmark database of :mod:`repro.platform.benchmarks`
carries the paper's evaluation; this catalog extends it to a
plausible-scale rendering of the whole testbed for larger studies and
examples.  Cluster names and node counts follow the real 2008 Grid'5000
inventory (Bolze et al. 2006 lists ~2800 processors over 9 sites);
speeds are interpolated inside the paper's published 1177–1622 s
envelope by hardware generation.  Everything remains synthetic —
documented as such per DESIGN.md §2 — but the *shape* of the platform
(few large sites, long tail of small ones, heterogeneous speeds) is
faithful, which is what grid-level experiments exercise.
"""

from __future__ import annotations

from typing import Final

from repro.exceptions import PlatformError
from repro.platform.benchmarks import DEFAULT_SERIAL_FRACTION
from repro.platform.cluster import ClusterSpec
from repro.platform.grid import GridSpec
from repro.platform.timing import AmdahlTimingModel

__all__ = ["SITE_CATALOG", "catalog_cluster", "catalog_grid", "site_names"]

#: ``site -> cluster -> (processors, T(11) seconds)``.  Node counts are
#: the order of magnitude of the 2008 testbed; T(11) interpolates the
#: paper's envelope by hardware generation (newer Opterons/Xeons faster).
SITE_CATALOG: Final[dict[str, dict[str, tuple[int, float]]]] = {
    "lyon": {
        "sagittaire": (158, 1177.0),
        "capricorne": (112, 1310.0),
    },
    "nancy": {
        "grelon": (240, 1288.0),
        "grillon": (94, 1405.0),
    },
    "lille": {
        "chti": (40, 1399.0),
        "chicon": (52, 1450.0),
        "chuque": (106, 1520.0),
    },
    "rennes": {
        "paravent": (198, 1510.0),
        "parasol": (128, 1340.0),
        "paraquad": (132, 1260.0),
    },
    "sophia": {
        "azur": (144, 1622.0),
        "helios": (112, 1235.0),
        "sol": (100, 1210.0),
    },
    "bordeaux": {
        "bordemer": (96, 1580.0),
        "bordeplage": (102, 1490.0),
    },
    "toulouse": {
        "violette": (114, 1560.0),
    },
    "orsay": {
        "gdx": (342, 1470.0),
        "netgdx": (60, 1430.0),
    },
    "grenoble": {
        "idpot": (48, 1600.0),
    },
}


def site_names() -> tuple[str, ...]:
    """All sites, catalog order."""
    return tuple(SITE_CATALOG)


def catalog_cluster(
    name: str, *, serial_fraction: float = DEFAULT_SERIAL_FRACTION
) -> ClusterSpec:
    """One named catalog cluster at its full node count."""
    for clusters in SITE_CATALOG.values():
        if name in clusters:
            resources, t11 = clusters[name]
            timing = AmdahlTimingModel.calibrated(
                t11, serial_fraction=serial_fraction
            )
            return ClusterSpec(name, resources, timing)
    known = sorted(n for site in SITE_CATALOG.values() for n in site)
    raise PlatformError(f"unknown catalog cluster {name!r}; known: {known}")


def catalog_grid(
    sites: tuple[str, ...] | None = None,
    *,
    max_resources_per_cluster: int | None = None,
    serial_fraction: float = DEFAULT_SERIAL_FRACTION,
) -> GridSpec:
    """A grid over whole sites (default: the entire catalog).

    ``max_resources_per_cluster`` caps each cluster — the paper never
    assumes whole-testbed reservations, and a realistic campaign books a
    slice of each cluster.
    """
    chosen = sites if sites is not None else site_names()
    clusters: list[ClusterSpec] = []
    for site in chosen:
        if site not in SITE_CATALOG:
            raise PlatformError(
                f"unknown site {site!r}; known: {list(SITE_CATALOG)}"
            )
        for name in SITE_CATALOG[site]:
            cluster = catalog_cluster(name, serial_fraction=serial_fraction)
            if max_resources_per_cluster is not None:
                cluster = cluster.with_resources(
                    min(cluster.resources, max_resources_per_cluster)
                )
            clusters.append(cluster)
    return GridSpec.of(clusters)
