"""Cluster descriptions.

A cluster, in the paper's sense, is a pool of *homogeneous* processors
with shared data access ("data on a site are available to all of its
nodes").  The heuristics therefore need only the processor count and the
timing model; individual node identities matter only to the simulator,
which indexes processors ``0 .. resources-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import PlatformError
from repro.platform.timing import TimingModel

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. the Grid'5000 site/cluster name).
    resources:
        Total number of processors ``R``.
    timing:
        The cluster's :class:`~repro.platform.timing.TimingModel`.
    """

    name: str
    resources: int
    timing: TimingModel = field(repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("cluster name must be non-empty")
        if not isinstance(self.resources, int) or self.resources < 1:
            raise PlatformError(
                f"cluster {self.name!r}: resources must be a positive int, "
                f"got {self.resources!r}"
            )
        if not isinstance(self.timing, TimingModel):
            raise PlatformError(
                f"cluster {self.name!r}: timing must be a TimingModel, "
                f"got {type(self.timing).__name__}"
            )

    # -- convenience accessors used throughout the heuristics ---------------

    def main_time(self, group_size: int) -> float:
        """``T[G]`` on this cluster."""
        return self.timing.main_time(group_size)

    def post_time(self) -> float:
        """``TP`` on this cluster."""
        return self.timing.post_time()

    def main_time_table(self) -> dict[int, float]:
        """The cluster's full ``{G: T[G]}`` benchmark table."""
        return self.timing.main_time_table()

    @property
    def group_sizes(self) -> tuple[int, ...]:
        """Admissible main-task group sizes on this cluster."""
        return self.timing.group_sizes

    def can_run_main(self) -> bool:
        """Whether at least one main-task group fits on the cluster."""
        return self.resources >= self.timing.min_group

    def with_resources(self, resources: int) -> "ClusterSpec":
        """A copy of this cluster with a different processor count."""
        return replace(self, resources=resources)

    def describe(self) -> str:
        """One-line human-readable summary."""
        t = self.timing
        return (
            f"{self.name}: R={self.resources}, "
            f"T[{t.min_group}]={t.main_time(t.min_group):.0f}s, "
            f"T[{t.max_group}]={t.main_time(t.max_group):.0f}s, "
            f"TP={t.post_time():.0f}s"
        )
