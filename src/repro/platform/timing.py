"""Timing models for the moldable main task and the post-processing task.

The scheduling heuristics of the paper consume a platform exclusively
through the table ``T[G]`` — the wall-clock time of one fused
main-processing task (*process_coupled_run* plus the two tiny
pre-processing tasks) on a group of ``G`` processors — and the scalar
``TP``, the duration of one fused post-processing task.  A
:class:`TimingModel` encapsulates exactly that interface.

Three concrete models are provided:

:class:`AmdahlTimingModel`
    Encodes the paper's structural knowledge of the application: the
    ARPEGE atmosphere is MPI-parallel but stops scaling above 8
    processors, while OPA, TRIP and the OASIS coupler are sequential and
    occupy one processor each.  Hence ``T(G) = pre + serial +
    parallel / min(G - 3, 8)`` for ``G ∈ [4, 11]``.

:class:`TableTimingModel`
    A direct lookup table, matching how the authors obtained their times
    (benchmarks on each Grid'5000 cluster).

:class:`ScaledTimingModel`
    Wraps another model and multiplies its times by a constant factor —
    the mechanism used to derive the five benchmark clusters of Section 6
    from a single reference calibration.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Mapping

from repro import constants
from repro.exceptions import PlatformError

__all__ = [
    "TimingModel",
    "AmdahlTimingModel",
    "TableTimingModel",
    "ScaledTimingModel",
    "reference_timing",
]


class TimingModel(ABC):
    """Abstract timing of the two fused Ocean-Atmosphere tasks.

    Subclasses must implement :meth:`main_time` and :meth:`post_time` and
    expose the admissible group-size range via :attr:`min_group` and
    :attr:`max_group`.  All other behaviour (table export, speedup
    queries, validation) derives from those primitives.
    """

    #: Smallest admissible processor group for the main task.
    min_group: int = constants.MIN_GROUP_SIZE

    #: Largest useful processor group for the main task.
    max_group: int = constants.MAX_GROUP_SIZE

    @abstractmethod
    def main_time(self, group_size: int) -> float:
        """Seconds for one fused main task on ``group_size`` processors."""

    @abstractmethod
    def post_time(self) -> float:
        """Seconds for one fused post-processing task (single processor)."""

    # -- derived helpers ----------------------------------------------------

    @property
    def group_sizes(self) -> tuple[int, ...]:
        """Admissible group sizes, ``min_group .. max_group`` inclusive."""
        return tuple(range(self.min_group, self.max_group + 1))

    def validate_group(self, group_size: int) -> None:
        """Raise :class:`PlatformError` if ``group_size`` is inadmissible."""
        if not isinstance(group_size, int):
            raise PlatformError(f"group size must be an int, got {group_size!r}")
        if not self.min_group <= group_size <= self.max_group:
            raise PlatformError(
                f"group size {group_size} outside the admissible range "
                f"[{self.min_group}, {self.max_group}]"
            )

    def main_time_table(self) -> dict[int, float]:
        """The full ``{G: T[G]}`` table over the admissible range."""
        return {g: self.main_time(g) for g in self.group_sizes}

    def speedup(self, group_size: int) -> float:
        """Speedup of ``group_size`` processors over the minimal group."""
        return self.main_time(self.min_group) / self.main_time(group_size)

    def efficiency(self, group_size: int) -> float:
        """Parallel efficiency relative to the minimal group.

        Normalized so that the minimal group has efficiency 1; larger
        groups trade efficiency for speed, which is exactly the tension
        the knapsack heuristic arbitrates.
        """
        return self.speedup(group_size) * self.min_group / group_size

    def work(self, group_size: int) -> float:
        """Processor-seconds consumed by one main task on a group."""
        return self.main_time(group_size) * group_size

    def is_monotone(self) -> bool:
        """True when ``T[G]`` is non-increasing in ``G`` (it should be)."""
        table = self.main_time_table()
        values = [table[g] for g in self.group_sizes]
        return all(a >= b for a, b in zip(values, values[1:], strict=False))

    def posts_per_main(self) -> int:
        """``⌊TG/TP⌋`` for the *fastest* group — a paper-formula building block.

        The analytic formulas use ``⌊TG/TP⌋`` with the ``TG`` of the
        currently considered grouping; this convenience uses the largest
        group and is only meant for quick diagnostics.
        """
        return math.floor(self.main_time(self.max_group) / self.post_time())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t_min = self.main_time(self.min_group)
        t_max = self.main_time(self.max_group)
        return (
            f"<{type(self).__name__} T[{self.min_group}]={t_min:.0f}s "
            f"T[{self.max_group}]={t_max:.0f}s TP={self.post_time():.0f}s>"
        )


class AmdahlTimingModel(TimingModel):
    """Amdahl-style moldable timing for *process_coupled_run*.

    ``T(G) = pre + serial + parallel / a(G)`` with
    ``a(G) = min(G - sequential_components, max_parallel)`` the number of
    processors actually exploited by the atmosphere model.

    Parameters
    ----------
    serial_seconds:
        Time of the non-scaling part of the coupled run (OPA, TRIP,
        OASIS synchronization, I/O).
    parallel_seconds:
        Total atmosphere work in processor-seconds; divided by the number
        of atmosphere processors.
    pre_seconds, post_seconds:
        Durations of the fused pre- and post-processing phases; default
        to the paper's Figure 1 values (2 s and 180 s).
    sequential_components:
        Processors reserved for the sequential components (default 3).
    max_parallel:
        Atmosphere processor count beyond which speedup stops (default 8).
    """

    def __init__(
        self,
        serial_seconds: float,
        parallel_seconds: float,
        *,
        pre_seconds: float = constants.PRE_SECONDS,
        post_seconds: float = constants.POST_SECONDS,
        sequential_components: int = constants.SEQUENTIAL_COMPONENTS,
        max_parallel: int = constants.MAX_ATMOSPHERE_PROCS,
    ) -> None:
        if serial_seconds < 0 or parallel_seconds <= 0:
            raise PlatformError(
                "serial_seconds must be >= 0 and parallel_seconds > 0, got "
                f"{serial_seconds!r}, {parallel_seconds!r}"
            )
        if post_seconds <= 0:
            raise PlatformError(f"post_seconds must be > 0, got {post_seconds!r}")
        if sequential_components < 0 or max_parallel < 1:
            raise PlatformError(
                "need sequential_components >= 0 and max_parallel >= 1, got "
                f"{sequential_components!r}, {max_parallel!r}"
            )
        self.serial_seconds = float(serial_seconds)
        self.parallel_seconds = float(parallel_seconds)
        self.pre_seconds = float(pre_seconds)
        self._post_seconds = float(post_seconds)
        self.sequential_components = int(sequential_components)
        self.max_parallel = int(max_parallel)
        self.min_group = self.sequential_components + 1
        self.max_group = self.sequential_components + self.max_parallel

    @classmethod
    def calibrated(
        cls,
        main_time_at_max: float,
        *,
        serial_fraction: float = 0.5,
        pre_seconds: float = constants.PRE_SECONDS,
        post_seconds: float = constants.POST_SECONDS,
        sequential_components: int = constants.SEQUENTIAL_COMPONENTS,
        max_parallel: int = constants.MAX_ATMOSPHERE_PROCS,
    ) -> "AmdahlTimingModel":
        """Build a model anchored to the time on the largest group.

        ``main_time_at_max`` is ``T(max_group)`` *including* the fused
        pre-processing.  ``serial_fraction`` is the share of the coupled
        run (excluding pre) that does not scale; the rest is atmosphere
        work spread over ``max_parallel`` processors.
        """
        if main_time_at_max <= pre_seconds:
            raise PlatformError(
                f"main_time_at_max ({main_time_at_max!r}) must exceed "
                f"pre_seconds ({pre_seconds!r})"
            )
        if not 0.0 <= serial_fraction < 1.0:
            raise PlatformError(
                f"serial_fraction must be in [0, 1), got {serial_fraction!r}"
            )
        pcr = main_time_at_max - pre_seconds
        serial = pcr * serial_fraction
        parallel = (pcr - serial) * max_parallel
        return cls(
            serial,
            parallel,
            pre_seconds=pre_seconds,
            post_seconds=post_seconds,
            sequential_components=sequential_components,
            max_parallel=max_parallel,
        )

    def atmosphere_procs(self, group_size: int) -> int:
        """Processors effectively used by the atmosphere model."""
        self.validate_group(group_size)
        return min(group_size - self.sequential_components, self.max_parallel)

    def main_time(self, group_size: int) -> float:
        a = self.atmosphere_procs(group_size)
        return self.pre_seconds + self.serial_seconds + self.parallel_seconds / a

    def post_time(self) -> float:
        return self._post_seconds


class TableTimingModel(TimingModel):
    """Timing backed by an explicit benchmark table ``{G: seconds}``.

    Mirrors the paper's methodology: the authors benchmarked
    *process_coupled_run* on each Grid'5000 cluster and fed the resulting
    table to the heuristics.  The table must cover a contiguous range of
    group sizes.
    """

    def __init__(
        self,
        main_table: Mapping[int, float],
        *,
        post_seconds: float = constants.POST_SECONDS,
    ) -> None:
        if not main_table:
            raise PlatformError("main_table must not be empty")
        sizes = sorted(main_table)
        if any(not isinstance(g, int) for g in sizes):
            raise PlatformError("group sizes in main_table must be ints")
        if sizes != list(range(sizes[0], sizes[-1] + 1)):
            raise PlatformError(
                f"main_table group sizes must be contiguous, got {sizes}"
            )
        if any(main_table[g] <= 0 for g in sizes):
            raise PlatformError("main_table times must all be positive")
        if post_seconds <= 0:
            raise PlatformError(f"post_seconds must be > 0, got {post_seconds!r}")
        self._table = {g: float(main_table[g]) for g in sizes}
        self._post_seconds = float(post_seconds)
        self.min_group = sizes[0]
        self.max_group = sizes[-1]

    def main_time(self, group_size: int) -> float:
        self.validate_group(group_size)
        return self._table[group_size]

    def post_time(self) -> float:
        return self._post_seconds


class ScaledTimingModel(TimingModel):
    """A timing model derived from another one by a constant speed factor.

    ``factor > 1`` is a slower machine, ``factor < 1`` a faster one.  The
    post-processing time is scaled too by default — post tasks run on the
    same hardware — but can be pinned with ``scale_post=False`` to study
    platforms whose I/O-bound post phase does not follow CPU speed.
    """

    def __init__(
        self, base: TimingModel, factor: float, *, scale_post: bool = True
    ) -> None:
        if factor <= 0:
            raise PlatformError(f"factor must be > 0, got {factor!r}")
        self.base = base
        self.factor = float(factor)
        self.scale_post = bool(scale_post)
        self.min_group = base.min_group
        self.max_group = base.max_group

    def main_time(self, group_size: int) -> float:
        return self.base.main_time(group_size) * self.factor

    def post_time(self) -> float:
        if self.scale_post:
            return self.base.post_time() * self.factor
        return self.base.post_time()


def reference_timing(*, serial_fraction: float = 0.5) -> AmdahlTimingModel:
    """The calibrated reference machine of Figure 1.

    Anchored so that one fused main task on the full 11-processor group
    takes ``pre + pcr = 2 + 1260`` seconds, with the paper's 180-second
    post task.
    """
    return AmdahlTimingModel.calibrated(
        constants.PRE_SECONDS + constants.PCR_SECONDS,
        serial_fraction=serial_fraction,
    )
