"""Job kinds and the worker-process entry point.

A *job kind* names a unit of work the campaign service knows how to
run: a full middleware campaign, a single-cluster simulation, a figure
sweep, the fig9 protocol trace.  Each kind validates its parameters at
submission time (so the server rejects garbage before it is queued) and
produces a result object that
:func:`repro.experiments.results_io.dump_result` can serialize — one
serializer for every job kind is what lets the run store treat results
uniformly.

:func:`execute_job` is the function shipped to
:class:`~concurrent.futures.ProcessPoolExecutor` workers.  It is
module-level (picklable), takes only plain values, and returns the
serialized result string, so nothing non-picklable ever crosses the
process boundary.

Two execution hosts share this entry point: the server's in-process
pool (:mod:`repro.service.queue`, via ``execute_job_traced`` when
observability is on) and the horizontally-scaled fleet workers
(:mod:`repro.service.fleet`), which call :func:`execute_job` directly
inside their own ``service.fleet.job`` span.  Job kinds therefore must
stay host-agnostic: pure functions of their validated parameters, no
reliance on which process or machine runs them — that is what makes a
lease reassignment mid-campaign safe.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.exceptions import ReproError, ServiceError

__all__ = [
    "JobKind",
    "execute_job",
    "execute_job_traced",
    "job_kinds",
    "validate_job",
]

_HEURISTICS = ("basic", "redistribute", "allpost_end", "knapsack")


def _as_int(params: Mapping[str, Any], key: str, default: int, *, low: int = 1) -> int:
    """Pull a bounded integer parameter with a typed error on garbage."""
    value = params.get(key, default)
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ServiceError(
            f"parameter {key!r} must be an integer, got {value!r}",
            code="bad-params",
        ) from None
    if value < low:
        raise ServiceError(
            f"parameter {key!r} must be >= {low}, got {value}",
            code="bad-params",
        )
    return value


def _as_float(
    params: Mapping[str, Any], key: str, default: float, *, low: float = 0.0
) -> float:
    """Pull a bounded float parameter with a typed error on garbage."""
    value = params.get(key, default)
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ServiceError(
            f"parameter {key!r} must be a number, got {value!r}",
            code="bad-params",
        ) from None
    if value < low:
        raise ServiceError(
            f"parameter {key!r} must be >= {low}, got {value}",
            code="bad-params",
        )
    return value


def _as_heuristic(params: Mapping[str, Any]) -> str:
    value = str(params.get("heuristic", "knapsack"))
    if value not in _HEURISTICS:
        raise ServiceError(
            f"unknown heuristic {value!r}; expected one of {_HEURISTICS}",
            code="bad-params",
        )
    return value


# ---------------------------------------------------------------------------
# Job implementations (all module-level: they run in worker processes).
# ---------------------------------------------------------------------------


def _validate_campaign(params: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "clusters": _as_int(params, "clusters", 3),
        "resources": _as_int(params, "resources", 40),
        "scenarios": _as_int(params, "scenarios", 10),
        "months": _as_int(params, "months", 12),
        "heuristic": _as_heuristic(params),
    }


def _run_campaign(params: Mapping[str, Any]):
    from repro.experiments.results_io import GenericResult
    from repro.middleware.deployment import run_campaign
    from repro.platform.benchmarks import benchmark_grid

    grid = benchmark_grid(params["clusters"], params["resources"])
    result = run_campaign(
        grid, params["scenarios"], params["months"], params["heuristic"]
    )
    return GenericResult(
        kind="campaign",
        data={
            "makespan": result.makespan,
            "predicted_makespan": result.predicted_makespan,
            "control_plane_seconds": result.control_plane_seconds,
            "scenarios": params["scenarios"],
            "months": params["months"],
            "heuristic": params["heuristic"],
            "clusters": [
                {
                    "name": report.cluster_name,
                    "scenarios": list(report.scenario_ids),
                    "grouping": report.grouping.describe(),
                    "makespan": report.makespan,
                }
                for report in result.reports
            ],
        },
    )


def _validate_simulate(params: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "cluster": str(params.get("cluster", "sagittaire")),
        "resources": _as_int(params, "resources", 53),
        "scenarios": _as_int(params, "scenarios", 10),
        "months": _as_int(params, "months", 12),
        "heuristic": _as_heuristic(params),
    }


def _run_simulate(params: Mapping[str, Any]):
    from repro.experiments.results_io import GenericResult
    from repro.experiments.runner import run_cluster_simulation
    from repro.workflow.ocean_atmosphere import EnsembleSpec

    spec = EnsembleSpec(params["scenarios"], params["months"])
    result = run_cluster_simulation(
        params["cluster"], params["resources"], spec, params["heuristic"]
    )
    return GenericResult(
        kind="simulate",
        data={
            "makespan": result.makespan,
            "cluster": params["cluster"],
            "resources": params["resources"],
            "scenarios": params["scenarios"],
            "months": params["months"],
            "heuristic": params["heuristic"],
        },
    )


def _validate_sweep(params: Mapping[str, Any]) -> dict[str, Any]:
    clean = {
        "scenarios": _as_int(params, "scenarios", 10),
        "months": _as_int(params, "months", 12),
        "r_min": _as_int(params, "r_min", 11),
        "r_max": _as_int(params, "r_max", 40),
        "step": _as_int(params, "step", 4),
    }
    if clean["r_max"] < clean["r_min"]:
        raise ServiceError(
            f"r_max ({clean['r_max']}) must be >= r_min ({clean['r_min']})",
            code="bad-params",
        )
    return clean


def _run_fig7(params: Mapping[str, Any]):
    from repro.experiments import fig7

    return fig7.run(
        scenarios=params["scenarios"],
        months=params["months"],
        r_min=params["r_min"],
        r_max=params["r_max"],
        step=params["step"],
    )


def _run_fig8(params: Mapping[str, Any]):
    from repro.experiments import fig8

    return fig8.run(
        scenarios=params["scenarios"],
        months=params["months"],
        r_min=params["r_min"],
        r_max=params["r_max"],
        step=params["step"],
    )


def _validate_fig10(params: Mapping[str, Any]) -> dict[str, Any]:
    clean = _validate_sweep(params)
    raw = params.get("clusters", [2, 3])
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ServiceError(
            f"parameter 'clusters' must be a non-empty list, got {raw!r}",
            code="bad-params",
        )
    clean["clusters"] = [_as_int({"n": n}, "n", 0, low=1) for n in raw]
    return clean


def _run_fig10(params: Mapping[str, Any]):
    from repro.experiments import fig10

    return fig10.run(
        scenarios=params["scenarios"],
        months=params["months"],
        cluster_counts=tuple(params["clusters"]),
        r_min=params["r_min"],
        r_max=params["r_max"],
        step=params["step"],
    )


def _validate_fig9(params: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "clusters": _as_int(params, "clusters", 2),
        "resources": _as_int(params, "resources", 25),
        "scenarios": _as_int(params, "scenarios", 4),
        "months": _as_int(params, "months", 6),
        "heuristic": _as_heuristic(params),
    }


def _run_fig9(params: Mapping[str, Any]):
    from repro.experiments import fig9_protocol
    from repro.experiments.results_io import GenericResult
    from repro.platform.benchmarks import benchmark_grid

    result = fig9_protocol.run(
        grid=benchmark_grid(params["clusters"], params["resources"]),
        scenarios=params["scenarios"],
        months=params["months"],
        heuristic=params["heuristic"],
    )
    return GenericResult(
        kind="fig9",
        data={
            "makespan": result.campaign.makespan,
            "predicted_makespan": result.campaign.predicted_makespan,
            "participants": list(result.participants),
            "message_kinds": result.kinds_in_order(),
            "messages": [
                {
                    "sender": entry.sender,
                    "receiver": entry.receiver,
                    "kind": entry.kind,
                    "nbytes": entry.nbytes,
                }
                for entry in result.log
            ],
        },
    )


def _validate_grid_sweep(params: Mapping[str, Any]) -> dict[str, Any]:
    clean = _validate_sweep(params)
    raw_clusters = params.get("clusters", ["sagittaire"])
    if not isinstance(raw_clusters, (list, tuple)) or not raw_clusters:
        raise ServiceError(
            f"parameter 'clusters' must be a non-empty list of cluster "
            f"names, got {raw_clusters!r}",
            code="bad-params",
        )
    clean["clusters"] = [str(name) for name in raw_clusters]
    raw_heuristics = params.get("heuristics", list(_HEURISTICS))
    if not isinstance(raw_heuristics, (list, tuple)) or not raw_heuristics:
        raise ServiceError(
            f"parameter 'heuristics' must be a non-empty list, "
            f"got {raw_heuristics!r}",
            code="bad-params",
        )
    for name in raw_heuristics:
        if name not in _HEURISTICS:
            raise ServiceError(
                f"unknown heuristic {name!r}; expected one of {_HEURISTICS}",
                code="bad-params",
            )
    clean["heuristics"] = [str(name) for name in raw_heuristics]
    # Jobs already run inside a pool worker, so the sweep itself stays
    # serial by default; opt into nested workers explicitly if the
    # deployment allows it.
    clean["workers"] = _as_int(params, "workers", 0, low=0)
    clean["chunk_size"] = _as_int(params, "chunk_size", 32)
    return clean


def _run_grid_sweep(params: Mapping[str, Any]):
    from repro.experiments.sweep import SweepGrid, run_sweep

    grid = SweepGrid.from_ranges(
        clusters=tuple(params["clusters"]),
        r_min=params["r_min"],
        r_max=params["r_max"],
        step=params["step"],
        scenarios=(params["scenarios"],),
        months=(params["months"],),
        heuristics=tuple(params["heuristics"]),
    )
    return run_sweep(
        grid,
        workers=params["workers"] or None,
        chunk_size=params["chunk_size"],
    )


def _validate_faults(params: Mapping[str, Any]) -> dict[str, Any]:
    clean = {
        "clusters": _as_int(params, "clusters", 3),
        "resources": _as_int(params, "resources", 40),
        "scenarios": _as_int(params, "scenarios", 10),
        "months": _as_int(params, "months", 12),
        "heuristic": _as_heuristic(params),
        "seed": _as_int(params, "seed", 0, low=0),
        "mtbf_hours": _as_float(params, "mtbf_hours", 6.0, low=1e-6),
        "mttr_hours": _as_float(params, "mttr_hours", 1.0, low=1e-6),
        "outages_only": bool(params.get("outages_only", False)),
    }
    events = params.get("events")
    if events is not None:
        if not isinstance(events, (list, tuple)):
            raise ServiceError(
                f"parameter 'events' must be a list of fault events, "
                f"got {events!r}",
                code="bad-params",
            )
        from repro.exceptions import ConfigurationError
        from repro.faults.trace import FaultTrace

        try:
            FaultTrace.from_dicts(events)
        except ConfigurationError as exc:
            raise ServiceError(
                f"invalid fault event list: {exc}", code="bad-params"
            ) from None
        clean["events"] = [dict(entry) for entry in events]
    else:
        clean["events"] = None
    return clean


def _run_faults(params: Mapping[str, Any]):
    from repro.experiments.results_io import GenericResult
    from repro.faults.trace import FaultProfile, FaultTrace, generate_trace
    from repro.middleware.recovery import run_campaign_with_faults
    from repro.platform.benchmarks import benchmark_grid

    grid = benchmark_grid(params["clusters"], params["resources"])
    scenarios, months = params["scenarios"], params["months"]
    heuristic = params["heuristic"]
    baseline = run_campaign_with_faults(
        grid, scenarios, months, FaultTrace(), heuristic=heuristic
    )
    if params["events"] is not None:
        trace = FaultTrace.from_dicts(params["events"])
    else:
        profile = (
            FaultProfile.outages_only(
                params["mtbf_hours"] * 3600.0, params["mttr_hours"] * 3600.0
            )
            if params["outages_only"]
            else FaultProfile(
                mtbf_seconds=params["mtbf_hours"] * 3600.0,
                mttr_seconds=params["mttr_hours"] * 3600.0,
            )
        )
        trace = generate_trace(
            {name: profile for name in grid.names},
            baseline.makespan,
            params["seed"],
        )
    report = run_campaign_with_faults(
        grid, scenarios, months, trace, heuristic=heuristic
    )
    return GenericResult(
        kind="faults",
        data={
            "original_makespan": report.original_makespan,
            "makespan": report.makespan,
            "delay": report.delay,
            "replans": report.replans,
            "months_lost": report.months_lost,
            "lost_work_seconds": report.lost_work_seconds,
            "seed": params["seed"],
            "heuristic": heuristic,
            "scenarios": scenarios,
            "months": months,
            "trace": trace.to_dicts(),
            "events": [
                {
                    "kind": outcome.event.kind.value,
                    "cluster": outcome.event.cluster,
                    "at_time": outcome.event.at_time,
                    "applied": outcome.applied,
                    "reason": outcome.reason,
                    "interrupted": list(outcome.interrupted),
                    "reassignment": {
                        str(s): t for s, t in outcome.reassignment.items()
                    },
                    "months_lost": outcome.months_lost,
                    "makespan_after": outcome.makespan_after,
                }
                for outcome in report.events
            ],
        },
    )


def _validate_arena(params: Mapping[str, Any]) -> dict[str, Any]:
    from repro.exceptions import ConfigurationError
    from repro.schedulers.arena import ARENA_PRESETS
    from repro.schedulers.base import list_schedulers

    preset = str(params.get("preset", "fig7"))
    if preset not in ARENA_PRESETS:
        raise ServiceError(
            f"unknown arena preset {preset!r}; "
            f"expected one of {tuple(sorted(ARENA_PRESETS))}",
            code="bad-params",
        )
    registered = list_schedulers()
    raw_schedulers = params.get("schedulers", "all")
    if raw_schedulers == "all":
        schedulers = list(registered)
    elif isinstance(raw_schedulers, (list, tuple)) and raw_schedulers:
        for name in raw_schedulers:
            if name not in registered:
                raise ServiceError(
                    f"unknown scheduler {name!r}; "
                    f"registered: {sorted(registered)}",
                    code="bad-params",
                )
        schedulers = [str(name) for name in raw_schedulers]
    else:
        raise ServiceError(
            f"parameter 'schedulers' must be 'all' or a non-empty list, "
            f"got {raw_schedulers!r}",
            code="bad-params",
        )
    raw_faults = params.get("fault_seeds", [])
    if not isinstance(raw_faults, (list, tuple)):
        raise ServiceError(
            f"parameter 'fault_seeds' must be a list of integers, "
            f"got {raw_faults!r}",
            code="bad-params",
        )
    fault_seeds = [_as_int({"s": s}, "s", 0, low=0) for s in raw_faults]
    clean = {
        "preset": preset,
        "schedulers": schedulers,
        "fault_seeds": fault_seeds,
        "include_fault_free": bool(params.get("include_fault_free", True)),
        "seed": _as_int(params, "seed", 0, low=0),
        "scenarios": _as_int(params, "scenarios", 10),
        "months": _as_int(params, "months", 12),
        "mtbf_hours": _as_float(params, "mtbf_hours", 6.0, low=1e-6),
        "mttr_hours": _as_float(params, "mttr_hours", 1.0, low=1e-6),
        # Same stance as the sweep job: already inside a pool worker,
        # so the race stays serial unless the deployment opts in.
        "workers": _as_int(params, "workers", 0, low=0),
        "chunk_size": _as_int(params, "chunk_size", 16),
    }
    for key in ("r_min", "r_max", "step"):
        # None (absent or explicit) means "use the preset's value" —
        # kept as None so validation stays idempotent under the
        # re-validation execute_job performs.
        clean[key] = (
            None if params.get(key) is None else _as_int(params, key, 0)
        )
    if (
        clean["r_min"] is not None
        and clean["r_max"] is not None
        and clean["r_max"] < clean["r_min"]
    ):
        raise ServiceError(
            f"r_max ({clean['r_max']}) must be >= r_min ({clean['r_min']})",
            code="bad-params",
        )
    if not clean["fault_seeds"] and not clean["include_fault_free"]:
        raise ServiceError(
            "a race needs fault_seeds and/or include_fault_free=True",
            code="bad-params",
        )
    try:
        _arena_grid(clean)
    except ConfigurationError as exc:
        raise ServiceError(str(exc), code="bad-params") from None
    return clean


def _arena_grid(params: Mapping[str, Any]):
    from repro.schedulers.arena import ArenaGrid

    return ArenaGrid.from_preset(
        params["preset"],
        schedulers=tuple(params["schedulers"]),
        fault_seeds=tuple(params["fault_seeds"]),
        include_fault_free=params["include_fault_free"],
        seed=params["seed"],
        r_min=params["r_min"],
        r_max=params["r_max"],
        step=params["step"],
        scenarios=params["scenarios"],
        months=params["months"],
        mtbf_hours=params["mtbf_hours"],
        mttr_hours=params["mttr_hours"],
    )


def _run_arena(params: Mapping[str, Any]):
    from repro.schedulers.arena import run_arena

    return run_arena(
        _arena_grid(params),
        workers=params["workers"] or None,
        chunk_size=params["chunk_size"],
    )


def _validate_sleep(params: Mapping[str, Any]) -> dict[str, Any]:
    try:
        seconds = float(params.get("seconds", 0.0))
    except (TypeError, ValueError):
        raise ServiceError(
            f"parameter 'seconds' must be a number, "
            f"got {params.get('seconds')!r}",
            code="bad-params",
        ) from None
    if seconds < 0:
        raise ServiceError(
            f"parameter 'seconds' must be >= 0, got {seconds}",
            code="bad-params",
        )
    return {"seconds": seconds, "fail": bool(params.get("fail", False))}


def _run_sleep(params: Mapping[str, Any]):
    from repro.experiments.results_io import GenericResult

    if params["seconds"]:
        time.sleep(params["seconds"])
    if params["fail"]:
        raise ServiceError("sleep job asked to fail", code="injected")
    return GenericResult(kind="sleep", data={"slept": params["seconds"]})


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobKind:
    """One unit of work the service can execute."""

    name: str
    description: str
    validate: Callable[[Mapping[str, Any]], dict[str, Any]]
    run: Callable[[Mapping[str, Any]], Any]


_KINDS: dict[str, JobKind] = {
    kind.name: kind
    for kind in (
        JobKind(
            "campaign",
            "full middleware campaign on a benchmark grid",
            _validate_campaign,
            _run_campaign,
        ),
        JobKind(
            "simulate",
            "single-cluster ensemble simulation",
            _validate_simulate,
            _run_simulate,
        ),
        JobKind(
            "fig7",
            "optimal-grouping sweep (Figure 7)",
            _validate_sweep,
            _run_fig7,
        ),
        JobKind(
            "fig8",
            "homogeneous-cluster gains sweep (Figure 8)",
            _validate_sweep,
            _run_fig8,
        ),
        JobKind(
            "fig10",
            "grid gains sweep with repartition (Figure 10)",
            _validate_fig10,
            _run_fig10,
        ),
        JobKind(
            "fig9",
            "live protocol trace (Figure 9)",
            _validate_fig9,
            _run_fig9,
        ),
        JobKind(
            "sweep",
            "declarative parameter-grid sweep through the memoized kernels",
            _validate_grid_sweep,
            _run_grid_sweep,
        ),
        JobKind(
            "faults",
            "campaign replanned through a seeded (or explicit) fault trace",
            _validate_faults,
            _run_faults,
        ),
        JobKind(
            "arena",
            "scheduler race across a figure-shaped grid and fault traces",
            _validate_arena,
            _run_arena,
        ),
        JobKind(
            "sleep",
            "diagnostic no-op job (optionally failing) for tests and benchmarks",
            _validate_sleep,
            _run_sleep,
        ),
    )
}


def job_kinds() -> tuple[JobKind, ...]:
    """Every registered job kind, in registration order."""
    return tuple(_KINDS.values())


def validate_job(kind: str, params: Mapping[str, Any]) -> dict[str, Any]:
    """Check a submission and return its normalized parameters.

    Raises :class:`~repro.exceptions.ServiceError` with code
    ``unknown-kind`` or ``bad-params``; the server maps these straight
    to typed wire errors, so invalid work is refused before it touches
    the queue.
    """
    job = _KINDS.get(kind)
    if job is None:
        raise ServiceError(
            f"unknown job kind {kind!r}; "
            f"expected one of {tuple(_KINDS)}",
            code="unknown-kind",
        )
    if not isinstance(params, Mapping):
        raise ServiceError(
            f"params must be an object, got {type(params).__name__}",
            code="bad-params",
        )
    return job.validate(params)


def execute_job(kind: str, params: dict[str, Any]) -> str:
    """Run one job to completion; the worker-process entry point.

    Returns the result serialized with
    :func:`repro.experiments.results_io.dump_result`.  Library errors
    propagate as :class:`~repro.exceptions.ReproError` subclasses —
    they pickle cleanly back to the dispatcher, which decides between
    retry and terminal failure.
    """
    from repro.experiments.results_io import dump_result

    clean = validate_job(kind, params)
    try:
        result = _KINDS[kind].run(clean)
    except ReproError:
        raise
    except Exception as exc:  # pragma: no cover - defensive normalization
        raise ServiceError(
            f"job kind {kind!r} crashed: {exc!r}", code="job-crashed"
        ) from exc
    return dump_result(result)


def execute_job_traced(
    kind: str,
    params: dict[str, Any],
    trace: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one job inside a worker-local observability session.

    The cross-process half of trace propagation: ``trace`` is a
    :meth:`~repro.obs.context.TraceContext.to_wire` dict minted at
    submit time.  It is re-hydrated here — inside the pool worker — so
    the job's own instrumentation (campaign spans, SeD execution spans,
    planner spans) records under the same trace as the dispatcher that
    sent it.  The worker's span buffer travels back in the returned
    envelope, which stays picklable::

        {"result": <dump_result string>,
         "spans": [<Chrome complete-span event dicts>],
         "worker_pid": <os pid of this worker>}

    The dispatcher grafts the spans onto its own tracer
    (``pid=WORKER_PID``, tid = the worker's os pid) and persists only
    ``result``, so the store contract of :func:`execute_job` is
    unchanged.  On failure the exception propagates exactly as from
    :func:`execute_job` (the attempt's spans are dropped with the
    worker's session — the dispatcher's ``service.job`` span still
    records the failed attempt).
    """
    from repro import obs
    from repro.obs.context import TraceContext, use_trace

    context = TraceContext.from_wire(trace) if trace is not None else None
    with obs.session() as (_registry, tracer):
        with use_trace(context):
            tags = context.tag_args() if context is not None else {}
            with obs.span("service.worker", kind=kind, **tags):
                result = execute_job(kind, params)
        spans = [span.as_event() for span in tracer.spans]
    return {"result": result, "spans": spans, "worker_pid": os.getpid()}
