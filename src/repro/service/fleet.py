"""The worker fleet — leased job execution in independent processes.

Where :class:`~repro.service.queue.JobQueue` executes jobs inside the
server process (its liveness *is* the server's, so crash recovery is
``recover_interrupted`` at the next start), a :class:`FleetWorker` is
a separate process — ``repro-oa worker`` — that shares nothing with
the server but the store.  Its crash contract is the **lease**:

* every claim stamps the worker's ``owner_id`` and a lease deadline
  ``lease_seconds`` ahead (:meth:`RunStore.claim_next`);
* a heartbeat pump renews the lease every ``heartbeat_interval``
  seconds while the job executes;
* if the worker dies — SIGKILL, OOM, power loss — the heartbeats
  stop, the lease expires, and the server's reaper
  (:meth:`~repro.service.server.CampaignServer.reap_once`) requeues
  the run for another worker, ``trace_id`` and attempt count intact;
* every completion is an *owner-checked* compare-and-set: a worker
  that lost its lease (e.g. it was partitioned from the store and the
  run was reassigned) gets ``lease-lost`` instead of silently
  overwriting the other worker's run — that edge is what makes
  reassignment exactly-once.

Determinism: the worker reads time only through the injected
``clock`` and sleeps only through the injected ``sleep``, so lease
expiry, reassignment, and the whole multi-worker kill matrix replay
on a fake clock.  A :class:`~repro.faults.chaos.FleetChaosConfig`
arms the worker with seeded process-level failures
(:class:`WorkerKilled` simulates the SIGKILL without needing a real
process per decision).
"""

from __future__ import annotations

import os
import random
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable

from repro import obs
from repro.exceptions import ReproError, ServiceError
from repro.faults.chaos import FleetChaosConfig, FleetChaosMonkey
from repro.service.queue import full_jitter_backoff
from repro.service.store import RunRecord, RunStore
from repro.service.workers import execute_job

__all__ = ["FleetWorker", "WorkerConfig", "WorkerKilled"]

_log = obs.get_logger(__name__)


class WorkerKilled(Exception):
    """The simulated SIGKILL: the worker stops *without* cleanup.

    Raised out of :meth:`FleetWorker.run_once` when fleet chaos kills
    the worker mid-job — deliberately **not** a
    :class:`~repro.exceptions.ReproError`, so no handler on the
    execution path can turn it into a recorded failure.  The claimed
    run stays ``running`` under the dead worker's live lease, exactly
    as a real ``kill -9`` would leave it, and only the reaper can
    recover it.
    """


@dataclass(frozen=True)
class WorkerConfig:
    """Tunables of one fleet worker process."""

    #: Lease duration stamped on every claim, in seconds.  A worker
    #: must die for this long before the reaper reassigns its job.
    lease_seconds: float = 15.0
    #: Heartbeat period; must leave room for several renewals per
    #: lease (``< lease_seconds / 2``) so one delayed beat does not
    #: forfeit the job.
    heartbeat_interval: float = 5.0
    #: Idle poll backoff: first delay, growth factor, and cap.
    poll_base: float = 0.05
    poll_factor: float = 2.0
    poll_cap: float = 1.0
    #: Seed for the idle-poll jitter stream; ``None`` seeds from the OS.
    poll_seed: int | None = None
    #: Retry backoff for failed executions (mirrors
    #: :class:`~repro.service.queue.QueueConfig`).
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0
    #: Seed for the retry jitter stream; ``None`` seeds from the OS.
    backoff_seed: int | None = None
    #: Stop after this many executed jobs; ``None`` runs until stopped.
    max_jobs: int | None = None

    def __post_init__(self) -> None:
        if self.lease_seconds <= 0:
            raise ServiceError(
                f"lease_seconds must be positive, got "
                f"{self.lease_seconds!r}",
                code="bad-request",
            )
        if not 0 < self.heartbeat_interval < self.lease_seconds / 2:
            raise ServiceError(
                f"heartbeat_interval must be in (0, lease_seconds/2) so "
                f"a lease survives a missed beat; got "
                f"{self.heartbeat_interval!r} against lease "
                f"{self.lease_seconds!r}",
                code="bad-request",
            )


def mint_owner_id() -> str:
    """A fleet-unique worker identity: ``worker-<pid>-<random hex>``.

    The pid makes the owner greppable on its host; the random suffix
    keeps identities unique across hosts and across restarts reusing
    a pid.
    """
    return f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class _HeartbeatPump:
    """Renews one job's lease from a side thread while it executes.

    The pump waits on a :class:`threading.Event` so it both wakes
    every ``heartbeat_interval`` and stops promptly when the job
    finishes.  A failed renewal means the lease was lost (reassigned
    or completed elsewhere); the pump records that and stops — the
    worker checks :attr:`lost` before trusting its own result.
    """

    def __init__(self, worker: "FleetWorker", record: RunRecord) -> None:
        self._worker = worker
        self._record = record
        self._stop = threading.Event()
        self.lost = False
        self.beats = 0
        self._thread = threading.Thread(
            target=self._loop,
            name=f"heartbeat-{record.run_id}",
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()

    def _loop(self) -> None:
        while not self._stop.wait(self._worker.config.heartbeat_interval):
            if not self._worker.heartbeat_now(self._record.run_id):
                self.lost = True
                return
            self.beats += 1


class FleetWorker:
    """One leased-execution worker process (see module docstring).

    ``clock`` and ``sleep`` default to the real ones and are
    injectable for deterministic tests; ``chaos`` arms the seeded
    fleet failure modes.
    """

    def __init__(
        self,
        store: RunStore,
        config: WorkerConfig | None = None,
        *,
        owner_id: str | None = None,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
        chaos: FleetChaosConfig | None = None,
    ) -> None:
        self.store = store
        self.config = config or WorkerConfig()
        self.owner_id = owner_id or mint_owner_id()
        self._clock = clock
        self._sleep = sleep
        self.chaos = (
            FleetChaosMonkey(chaos)
            if chaos is not None and chaos.total_rate > 0
            else None
        )
        self._poll_rng = random.Random(self.config.poll_seed)
        self._backoff_rng = random.Random(self.config.backoff_seed)
        #: When fleet chaos partitions this worker from the store, its
        #: heartbeats are suppressed for the rest of the current job.
        self._partitioned = False
        #: Lifetime outcome counters, keyed by :meth:`run_once` return.
        self.stats: dict[str, int] = {
            "claims": 0,
            "done": 0,
            "retried": 0,
            "failed": 0,
            "lease-lost": 0,
            "heartbeats": 0,
        }

    # -- lease plumbing ----------------------------------------------------

    def heartbeat_now(self, run_id: str) -> bool:
        """Renew the lease on ``run_id`` once; ``False`` when lost.

        A partitioned worker (fleet chaos) cannot reach the store: the
        renewal is silently dropped, which is exactly what a network
        partition does to a real heartbeat.
        """
        if self._partitioned:
            return True  # the worker *believes* it still owns the run
        renewed = self.store.heartbeat(
            run_id,
            self.owner_id,
            lease_seconds=self.config.lease_seconds,
            now=self._clock(),
        )
        if renewed:
            self.stats["heartbeats"] += 1
            obs.inc("service.fleet_heartbeats", owner=self.owner_id)
        return renewed

    # -- execution ---------------------------------------------------------

    def run_once(self, now: float | None = None) -> str | None:
        """Claim and execute at most one run.

        Returns the outcome — ``"done"``, ``"retried"``, ``"failed"``,
        or ``"lease-lost"`` — or ``None`` when nothing was claimable.
        Raises :class:`WorkerKilled` when fleet chaos kills this
        worker; the claimed run is left ``running`` under its lease.
        """
        now = self._clock() if now is None else now
        record = self.store.claim_next(
            now,
            owner_id=self.owner_id,
            lease_seconds=self.config.lease_seconds,
        )
        if record is None:
            return None
        self.stats["claims"] += 1
        obs.inc("service.fleet_claims", kind=record.kind)
        self._partitioned = False
        if self.chaos is not None:
            action = self.chaos.decide(record.run_id, record.attempts)
            if action is not None:
                self.chaos.record(action, record.run_id, record.kind)
            if action == "kill":
                raise WorkerKilled(
                    f"{self.owner_id} killed right after claiming "
                    f"{record.run_id}"
                )
            if action == "kill-heartbeat":
                # Die *after* a renewal: the lease looks freshest
                # possible when the worker vanishes, so this is the
                # worst case for reassignment latency.
                self.heartbeat_now(record.run_id)
                raise WorkerKilled(
                    f"{self.owner_id} killed mid-heartbeat on "
                    f"{record.run_id}"
                )
            if action == "partition":
                self._partitioned = True
        outcome = self._execute(record)
        self.stats[outcome] += 1
        return outcome

    def _execute(self, record: RunRecord) -> str:
        pump = _HeartbeatPump(self, record)
        pump.start()
        with obs.span(
            "service.fleet.job",
            run_id=record.run_id,
            kind=record.kind,
            attempt=record.attempts,
            trace_id=record.trace_id,
            owner=self.owner_id,
        ):
            try:
                result: str | None = None
                error: str | None = None
                try:
                    result = execute_job(record.kind, record.params)
                except ReproError as exc:
                    error = f"{type(exc).__name__}: {exc}"
                except Exception as exc:  # defensive: job kind bug
                    error = f"worker crash: {exc!r}"
            finally:
                pump.stop()
            # A partitioned worker reconnects exactly here — at the
            # completion write — which the owner check must refuse if
            # the run was reassigned meanwhile.
            self._partitioned = False
            try:
                if error is None:
                    assert result is not None
                    self.store.mark_done(
                        record.run_id, result, owner_id=self.owner_id
                    )
                    obs.inc("service.fleet_jobs_done", kind=record.kind)
                    obs.log_event(
                        _log, "fleet.job_done",
                        run_id=record.run_id, kind=record.kind,
                        owner=self.owner_id, attempt=record.attempts,
                    )
                    return "done"
                return self._record_failure(record, error)
            except ServiceError as exc:
                # ``lease-lost``: still running, but under a new owner.
                # ``bad-transition``: the new owner already finished it.
                # Either way this worker's execution lost the race and
                # its result must be discarded.
                if exc.code not in ("lease-lost", "bad-transition"):
                    raise
                obs.inc("service.lease_lost", owner=self.owner_id)
                obs.log_event(
                    _log, "fleet.lease_lost",
                    run_id=record.run_id, owner=self.owner_id,
                    attempt=record.attempts,
                )
                return "lease-lost"

    def _record_failure(self, record: RunRecord, error: str) -> str:
        """Route a failed execution to retry-with-backoff or terminal."""
        if record.attempts >= record.max_attempts:
            self.store.mark_failed(
                record.run_id, error, owner_id=self.owner_id
            )
            obs.inc("service.jobs_failed", kind=record.kind)
            obs.log_event(
                _log, "fleet.job_failed",
                run_id=record.run_id, kind=record.kind,
                owner=self.owner_id, attempt=record.attempts, error=error,
            )
            return "failed"
        delay = full_jitter_backoff(
            record.attempts,
            base=self.config.backoff_base,
            factor=self.config.backoff_factor,
            cap=self.config.backoff_cap,
            rng=self._backoff_rng,
        )
        self.store.requeue_for_retry(
            record.run_id,
            error,
            not_before=self._clock() + delay,
            owner_id=self.owner_id,
        )
        obs.inc("service.jobs_retried", kind=record.kind)
        obs.log_event(
            _log, "fleet.job_retry",
            run_id=record.run_id, kind=record.kind,
            owner=self.owner_id, attempt=record.attempts,
            backoff_s=delay, error=error,
        )
        return "retried"

    # -- the loop ----------------------------------------------------------

    def run_forever(self, stop: threading.Event | None = None) -> dict[str, Any]:
        """Claim-and-execute until stopped (or ``max_jobs`` executed).

        Idle polls back off with seeded full jitter (reset on every
        successful claim) so a large idle fleet does not hammer the
        store in lock-step.  Returns the final :attr:`stats`.
        """
        stop = stop if stop is not None else threading.Event()
        executed = 0
        idle_streak = 0
        obs.log_event(
            _log, "fleet.worker_started",
            owner=self.owner_id, lease_s=self.config.lease_seconds,
        )
        while not stop.is_set():
            outcome = self.run_once()
            if outcome is None:
                idle_streak += 1
                self._sleep(
                    full_jitter_backoff(
                        idle_streak,
                        base=self.config.poll_base,
                        factor=self.config.poll_factor,
                        cap=self.config.poll_cap,
                        rng=self._poll_rng,
                    )
                )
                continue
            idle_streak = 0
            executed += 1
            if (
                self.config.max_jobs is not None
                and executed >= self.config.max_jobs
            ):
                break
        obs.log_event(
            _log, "fleet.worker_stopped",
            owner=self.owner_id, executed=executed, **self.stats,
        )
        return dict(self.stats)
