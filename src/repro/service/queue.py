"""The job queue — an asyncio dispatcher over a process worker pool.

The dispatcher loop claims eligible runs from the
:class:`~repro.service.store.RunStore` (oldest first, honouring
per-run backoff deadlines), executes each on a
:class:`~concurrent.futures.ProcessPoolExecutor` via
:func:`repro.service.workers.execute_job`, and writes the outcome back:

* success → ``done`` with the serialized result;
* failure with attempts left → re-``queued`` with a full-jitter
  exponential backoff deadline (uniform over ``[0, min(base *
  factor**(attempt-1), cap)]`` — simultaneous failures never retry in
  lock-step);
* failure on the last attempt → ``failed`` with the error recorded;
* per-job timeout → treated as a failure (the stuck worker is
  abandoned and the pool rebuilt so the slot is not lost).

A :class:`~repro.faults.chaos.ChaosConfig` arms the queue with
deterministic fault injection: each claimed execution may be hit by an
injected worker crash, forced timeout, or transient executor error
*instead of* running, consuming the attempt and exercising exactly the
retry/backoff and pool-rebuild paths above.  Decisions depend only on
``(seed, run_id, attempt)``, so chaotic campaigns replay identically.

Because every transition is a durable store write *before* the next
claim, the queue is crash-safe: a process killed mid-job leaves the row
``running``, and the next server start requeues it via
``recover_interrupted``.

Shutdown is graceful by default — the dispatcher stops claiming, and
in-flight jobs finish and are recorded; queued runs simply stay queued
for the next start.  ``graceful=False`` abandons in-flight work (the
crash path, used deliberately by the resilience tests).
"""

from __future__ import annotations

import asyncio
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro import obs
from repro.exceptions import ReproError, ServiceError
from repro.faults.chaos import ChaosConfig, ChaosMonkey
from repro.obs.tracing import WORKER_PID
from repro.service.store import RUN_STATES, RunRecord, RunStore
from repro.service.workers import execute_job, execute_job_traced

__all__ = ["JobQueue", "QueueConfig", "full_jitter_backoff"]

_log = obs.get_logger(__name__)


def full_jitter_backoff(
    attempt: int,
    *,
    base: float,
    factor: float,
    cap: float,
    rng: random.Random | None = None,
) -> float:
    """Full-jitter (AWS style) retry delay after the ``attempt``-th failure.

    Uniform over ``[0, min(base * factor**(attempt-1), cap)]`` — many
    callers failing together spread their retries instead of
    thundering back in lock-step.  Without an ``rng`` the ceiling
    itself is returned (the deterministic worst case).  Shared by the
    dispatcher's retry scheduling, the fleet worker's idle polling,
    and the client's connect retries.
    """
    ceiling = min(base * factor ** max(0, attempt - 1), cap)
    if rng is None:
        return ceiling
    return rng.uniform(0.0, ceiling)


@dataclass(frozen=True)
class QueueConfig:
    """Tunables of the dispatcher and its worker pool."""

    #: Worker processes (concurrent jobs).  ``0`` disables the
    #: in-process pool entirely — the fleet-only topology, where the
    #: server just serves, recovers, and reaps while ``repro-oa
    #: worker`` processes execute.
    max_workers: int = 2
    #: Per-job wall-clock budget in seconds; ``None`` disables.
    job_timeout: float | None = None
    #: Default executions per run (submit can override per run).
    max_attempts: int = 3
    #: First retry delay in seconds.
    backoff_base: float = 0.5
    #: Delay multiplier per further attempt.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff delay.
    backoff_cap: float = 30.0
    #: Seed for the backoff jitter stream; ``None`` seeds from the OS.
    backoff_seed: int | None = None
    #: Idle dispatcher poll period in seconds.
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_workers < 0:
            raise ServiceError(
                f"max_workers must be >= 0, got {self.max_workers!r}",
                code="bad-request",
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ServiceError(
                f"job_timeout must be positive, got {self.job_timeout!r}",
                code="bad-request",
            )

    def backoff_ceiling(self, attempt: int) -> float:
        """The capped exponential bound on the ``attempt``-th retry delay."""
        delay = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        return min(delay, self.backoff_cap)

    def backoff(self, attempt: int, rng: random.Random | None = None) -> float:
        """Retry delay after the ``attempt``-th failed execution.

        Delegates to :func:`full_jitter_backoff` with this config's
        base/factor/cap.
        """
        return full_jitter_backoff(
            attempt,
            base=self.backoff_base,
            factor=self.backoff_factor,
            cap=self.backoff_cap,
            rng=rng,
        )


class JobQueue:
    """Dispatch queued runs onto worker processes (see module docstring)."""

    def __init__(
        self,
        store: RunStore,
        config: QueueConfig | None = None,
        *,
        chaos: ChaosConfig | None = None,
    ) -> None:
        self.store = store
        self.config = config or QueueConfig()
        self.chaos = (
            ChaosMonkey(chaos)
            if chaos is not None and chaos.total_rate > 0
            else None
        )
        self._backoff_rng = random.Random(self.config.backoff_seed)
        self._executor: ProcessPoolExecutor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._active: set[asyncio.Task] = set()
        self._wake: asyncio.Event | None = None
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        """Recover interrupted runs and start dispatching.

        Returns the number of runs recovered from a previous process.
        """
        if self._wake is not None:
            raise ServiceError("queue already started", code="internal")
        recovered = self.store.recover_interrupted()
        if recovered:
            obs.log_event(_log, "service.recovered", runs=recovered)
        self._stopping = False
        self._wake = asyncio.Event()
        if self.config.max_workers > 0:
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.max_workers
            )
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._publish_metrics()
        return recovered

    def kick(self) -> None:
        """Wake the dispatcher (call after a submit)."""
        if self._wake is not None:
            self._wake.set()

    async def join(self, timeout: float | None = None) -> None:
        """Wait until no run is queued or running (the queue is drained)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.store.unfinished():
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"queue not drained within {timeout}s", code="timeout"
                )
            await asyncio.sleep(self.config.poll_interval)

    async def stop(self, *, graceful: bool = True) -> None:
        """Stop dispatching; finish (graceful) or abandon in-flight jobs.

        Graceful shutdown lets running jobs complete and records their
        outcomes; queued runs stay queued for the next start.  The
        non-graceful path cancels in-flight bookkeeping so rows stay
        ``running`` — exactly what a crash would leave behind.
        """
        self._stopping = True
        self.kick()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        active = list(self._active)
        if graceful:
            if active:
                await asyncio.gather(*active, return_exceptions=True)
        else:
            for task in active:
                task.cancel()
            if active:
                await asyncio.gather(*active, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=graceful, cancel_futures=True)
            self._executor = None
        self._wake = None
        self._publish_metrics()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self._stopping:
            if len(self._active) >= self.config.max_workers:
                await self._sleep(self.config.poll_interval)
                continue
            # One clock read per pass: the same instant decides both the
            # claim's eligibility and the idle sleep, so a deadline that
            # lands between two reads cannot make the job wait an extra
            # poll interval.
            now = time.time()
            record = self.store.claim_next(now)
            if record is None:
                await self._sleep(self._idle_delay(now))
                continue
            task = asyncio.create_task(self._run_job(record))
            self._active.add(task)
            task.add_done_callback(self._job_finished)
            self._publish_metrics()

    def _idle_delay(self, now: float) -> float:
        """How long to sleep when nothing was claimable at ``now``."""
        eligible_at = self.store.next_eligible_at()
        if eligible_at is None:
            return self.config.poll_interval
        return max(
            0.0, min(self.config.poll_interval, eligible_at - now)
        )

    async def _sleep(self, delay: float) -> None:
        assert self._wake is not None
        self._wake.clear()
        if delay <= 0:
            return
        try:
            await asyncio.wait_for(self._wake.wait(), timeout=delay)
        except asyncio.TimeoutError:
            pass

    def _job_finished(self, task: asyncio.Task) -> None:
        self._active.discard(task)
        self.kick()

    async def _run_job(self, record: RunRecord) -> None:
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        obs.observe(
            "service.queue_wait_seconds",
            max(0.0, time.time() - record.created_at),
            kind=record.kind,
        )
        with obs.span(
            "service.job",
            run_id=record.run_id,
            kind=record.kind,
            attempt=record.attempts,
            trace_id=record.trace_id,
        ) as dispatch_span:
            if self.chaos is not None:
                action = self.chaos.decide(record.run_id, record.attempts)
                if action is not None:
                    self._inject_chaos(action, record)
                    self._publish_metrics()
                    return
            try:
                if obs.enabled():
                    # Traced execution: the worker runs inside its own
                    # obs session and ships its span buffer back.  When
                    # collection is off, the plain entry point keeps
                    # workers on the uninstrumented fast paths.
                    trace_wire = None
                    if record.trace_id:
                        trace_wire = {
                            "trace_id": record.trace_id,
                            "run_id": record.run_id,
                            "parent_span_id": dispatch_span,
                        }
                    dispatch_us = obs.tracer().now_us()
                    future = loop.run_in_executor(
                        self._executor,
                        execute_job_traced,
                        record.kind,
                        record.params,
                        trace_wire,
                    )
                else:
                    dispatch_us = 0.0
                    future = loop.run_in_executor(
                        self._executor,
                        execute_job,
                        record.kind,
                        record.params,
                    )
                if self.config.job_timeout is not None:
                    outcome = await asyncio.wait_for(
                        future, timeout=self.config.job_timeout
                    )
                else:
                    outcome = await future
                if isinstance(outcome, str):
                    result = outcome
                else:
                    result = outcome["result"]
                    self._import_worker_spans(
                        record, outcome, dispatch_span, dispatch_us
                    )
            except asyncio.TimeoutError:
                self._rebuild_executor()
                self._record_failure(
                    record,
                    f"timeout: exceeded {self.config.job_timeout}s "
                    f"wall-clock budget",
                )
            except ReproError as exc:
                self._record_failure(
                    record, f"{type(exc).__name__}: {exc}"
                )
            except Exception as exc:  # e.g. BrokenProcessPool
                self._rebuild_executor()
                self._record_failure(
                    record, f"executor failure: {exc!r}"
                )
            else:
                self.store.mark_done(record.run_id, result)
                obs.inc("service.jobs_done", kind=record.kind)
                obs.observe(
                    "service.job_seconds",
                    time.perf_counter() - started,
                    kind=record.kind,
                    outcome="done",
                )
                obs.log_event(
                    _log, "service.job_done",
                    run_id=record.run_id, kind=record.kind,
                    attempt=record.attempts,
                )
        self._publish_metrics()

    def _import_worker_spans(
        self,
        record: RunRecord,
        envelope: dict,
        parent_id: int | None,
        dispatch_us: float,
    ) -> None:
        """Graft a worker's span buffer onto the dispatcher's tracer.

        Worker spans are timed against the worker session's own epoch;
        offsetting by the dispatch instant (``dispatch_us``, read on
        this tracer's timeline just before the executor call) lines
        them up under the ``service.job`` span that sent them.  Worker
        span ids live in a different namespace, so they are kept as
        ``worker_span_id``/``worker_parent_id`` args and the imported
        spans all parent on the dispatch span.
        """
        if not obs.enabled():
            return
        spans = envelope.get("spans") or []
        worker_pid = int(envelope.get("worker_pid", 0))
        tracer = obs.tracer()
        for event in spans:
            args = dict(event.get("args", {}))
            args["worker_span_id"] = args.pop("span_id", None)
            worker_parent = args.pop("parent_id", None)
            if worker_parent is not None:
                args["worker_parent_id"] = worker_parent
            args["trace_id"] = record.trace_id
            args["run_id"] = record.run_id
            tracer.add_complete_span(
                str(event.get("name", "?")),
                ts=dispatch_us + float(event.get("ts", 0.0)),
                dur=float(event.get("dur", 0.0)),
                pid=WORKER_PID,
                tid=worker_pid,
                parent_id=parent_id,
                **args,
            )
        if spans:
            obs.inc("service.worker_spans", len(spans), kind=record.kind)

    def _inject_chaos(self, action: str, record: RunRecord) -> None:
        """Apply one injected failure, consuming this execution attempt.

        Each action exercises the same code path its real counterpart
        would: ``crash`` and ``timeout`` abandon the pool (rebuild),
        ``error`` is a plain failed attempt.  The job itself never runs.
        """
        assert self.chaos is not None
        self.chaos.record(action, record.run_id, record.kind)
        if action == "crash":
            self._rebuild_executor()
            self._record_failure(record, "chaos: injected worker crash")
        elif action == "timeout":
            self._rebuild_executor()
            self._record_failure(record, "chaos: injected forced timeout")
        else:
            self._record_failure(
                record, "chaos: injected transient executor error"
            )

    def _record_failure(self, record: RunRecord, error: str) -> None:
        """Route a failed execution to retry-with-backoff or terminal."""
        if record.attempts >= record.max_attempts:
            self.store.mark_failed(record.run_id, error)
            obs.inc("service.jobs_failed", kind=record.kind)
            obs.log_event(
                _log, "service.job_failed",
                run_id=record.run_id, kind=record.kind,
                attempt=record.attempts, error=error,
            )
            return
        delay = self.config.backoff(record.attempts, self._backoff_rng)
        self.store.requeue_for_retry(
            record.run_id, error, not_before=time.time() + delay
        )
        obs.inc("service.jobs_retried", kind=record.kind)
        obs.log_event(
            _log, "service.job_retry",
            run_id=record.run_id, kind=record.kind,
            attempt=record.attempts, backoff_s=delay, error=error,
        )

    def _rebuild_executor(self) -> None:
        """Replace the pool after a timeout/breakage reclaimed no slot.

        ``ProcessPoolExecutor`` cannot cancel a running call, so a
        timed-out job would otherwise occupy its worker forever; the old
        pool is abandoned (its stuck process exits when the call ends)
        and a fresh one takes over.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(
            max_workers=self.config.max_workers
        )

    def _publish_metrics(self) -> None:
        """Export queue depth and per-state job counts as gauges."""
        if not obs.enabled():
            return
        counts = self.store.counts_by_state()
        obs.set_gauge("service.queue_depth", counts["queued"])
        for state in RUN_STATES:
            obs.set_gauge("service.jobs", counts[state], state=state)
        obs.set_gauge("service.active_jobs", len(self._active))
