"""Pluggable storage backends for the campaign run store.

:func:`backend_from_url` maps a location string to a backend:

* ``memory://`` — :class:`~repro.service.backends.memory.MemoryBackend`
  (tests, demos);
* ``postgres://...`` / ``postgresql://...`` —
  :class:`~repro.service.backends.postgres.PostgresBackend` (requires
  an installed psycopg driver);
* ``sqlite:///path/to/runs.db``, or any plain filesystem path —
  :class:`~repro.service.backends.sqlite.SQLiteBackend` (the default).
"""

from __future__ import annotations

from pathlib import Path

from repro.service.backends.base import (
    RUN_STATES,
    SCHEMA_VERSION,
    LeaseView,
    RunRecord,
    StorageBackend,
)
from repro.service.backends.memory import MemoryBackend
from repro.service.backends.postgres import PostgresBackend
from repro.service.backends.sqlite import SQLiteBackend

__all__ = [
    "LeaseView",
    "MemoryBackend",
    "PostgresBackend",
    "RUN_STATES",
    "RunRecord",
    "SCHEMA_VERSION",
    "SQLiteBackend",
    "StorageBackend",
    "backend_from_url",
]


def backend_from_url(url: str | Path) -> StorageBackend:
    """Construct the backend a location string names (module docstring)."""
    text = str(url)
    if text.startswith("memory:"):
        return MemoryBackend()
    if text.startswith(("postgres://", "postgresql://")):
        return PostgresBackend(text)
    if text.startswith("sqlite:"):
        # sqlite:///relative/or/absolute/path — tolerate 0-3 slashes.
        path = text[len("sqlite:") :]
        if path.startswith("//"):
            path = path[2:]
        return SQLiteBackend(path)
    return SQLiteBackend(text)
