"""PostgreSQL storage backend — the server-grade option.

A thin DB-API adapter over :class:`~repro.service.backends.dbapi.
SQLRunBackend`: the SQL is shared with SQLite, only the placeholder
style (``%s``), the float column type (``DOUBLE PRECISION``), version
stamping (a one-row ``runs_schema`` table instead of ``PRAGMA
user_version``) and row locking (``FOR UPDATE SKIP LOCKED``) differ.
``SKIP LOCKED`` lets many worker hosts claim concurrently without
serializing on one database lock, which is what makes Postgres the
backend for multi-host fleets.

The driver is imported lazily — ``psycopg`` (v3) preferred,
``psycopg2`` accepted — and a missing driver raises
:class:`~repro.exceptions.ServiceError` with code
``backend-unavailable`` at *construction*, so ``repro-oa serve
--store sqlite:...`` works on machines with no Postgres client
installed.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ServiceError
from repro.service.backends.dbapi import SQLRunBackend

__all__ = ["PostgresBackend", "load_driver"]


def load_driver() -> Any:
    """Import and return the installed psycopg module, else raise.

    Raises :class:`~repro.exceptions.ServiceError` with code
    ``backend-unavailable`` when neither ``psycopg`` nor ``psycopg2``
    is importable.
    """
    try:
        import psycopg  # type: ignore[import-not-found]

        return psycopg
    except ImportError:
        pass
    try:
        import psycopg2  # type: ignore[import-not-found]

        return psycopg2
    except ImportError:
        pass
    raise ServiceError(
        "the postgres storage backend needs the psycopg (or psycopg2) "
        "driver, which is not installed; install it or point --store at "
        "a sqlite path",
        code="backend-unavailable",
    )


class PostgresBackend(SQLRunBackend):
    """The run store on a PostgreSQL server (see module docstring)."""

    name = "postgres"
    placeholder = "%s"
    float_type = "DOUBLE PRECISION"

    def __init__(self, dsn: str, *, driver: Any = None) -> None:
        self.url = dsn
        self._driver = driver if driver is not None else load_driver()
        super().__init__()

    def _connect(self) -> Any:
        conn = self._driver.connect(self.url)
        conn.autocommit = True
        return conn

    def _execute(self, statement: str, args: tuple = ()) -> Any:
        # psycopg connections have no .execute shortcut in DB-API v2
        # (psycopg2); go through a cursor for both driver generations.
        cursor = self._conn.cursor()
        cursor.execute(self._sql(statement), args)
        return cursor

    def _commit(self) -> None:
        self._execute("COMMIT")

    def _rollback(self) -> None:
        self._execute("ROLLBACK")

    def _read_version(self) -> int:
        self._execute(
            "CREATE TABLE IF NOT EXISTS runs_schema (version INTEGER)"
        )
        row = self._execute("SELECT version FROM runs_schema").fetchone()
        return 0 if row is None else int(row[0])

    def _write_version(self, version: int) -> None:
        self._execute("DELETE FROM runs_schema")
        self._execute(
            "INSERT INTO runs_schema (version) VALUES (?)", (version,)
        )

    def _begin_exclusive(self) -> None:
        self._execute("BEGIN")

    def _claim_select_suffix(self) -> str:
        # Concurrent claimants skip each other's locked rows instead of
        # queueing on them — the fleet's claim throughput scales with
        # worker count.
        return " FOR UPDATE SKIP LOCKED"
