"""The storage-backend contract behind :class:`repro.service.store.RunStore`.

A backend owns the durable representation of the ``runs`` table and
nothing else: record-level reads and writes, the schema migration
chain, and the atomicity of the claim/lease/transition primitives.
Policy — run-id minting, timestamping via the injected clock, typed
:class:`~repro.exceptions.ServiceError` raising, backoff arithmetic —
stays in :class:`~repro.service.store.RunStore`, so every backend
behaves identically through the store facade and the storage-contract
test suite can race them against each other.

Three implementations ship:

* :class:`~repro.service.backends.sqlite.SQLiteBackend` — the dev
  default, one WAL-mode file, safe across processes on one host;
* :class:`~repro.service.backends.postgres.PostgresBackend` — the
  server-grade backend for multi-host worker fleets, a thin DB-API
  adapter gated on an installed ``psycopg``/``psycopg2``;
* :class:`~repro.service.backends.memory.MemoryBackend` — a pure
  in-process fake for tests, same contract, no I/O.

Schema history (``schema_version``):

* **v1** — the original ``runs`` table;
* **v2** — adds the ``trace_id`` correlation column
  (:mod:`repro.obs.context`);
* **v3** — adds the lease columns ``owner_id``, ``lease_expires_at``
  and ``heartbeat_at`` for horizontal worker fleets (the ``attempts``
  counter has carried the per-run attempt count since v1).
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

__all__ = [
    "LeaseView",
    "RUN_STATES",
    "RunRecord",
    "SCHEMA_VERSION",
    "StorageBackend",
]

#: Current on-disk layout (see the schema history in the module
#: docstring); stamped by every backend's migration chain.
SCHEMA_VERSION = 3

#: Legal ``runs.state`` values, in lifecycle order.
RUN_STATES: tuple[str, ...] = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
)

#: States a run can never leave.
_TERMINAL = frozenset({"done", "failed", "cancelled"})


@dataclass(frozen=True)
class RunRecord:
    """One submitted job, as stored."""

    run_id: str
    kind: str
    params: dict[str, Any]
    state: str
    created_at: float
    updated_at: float
    attempts: int
    max_attempts: int
    not_before: float
    error: str | None
    result: str | None
    trace_id: str | None = None
    owner_id: str | None = None
    lease_expires_at: float | None = None
    heartbeat_at: float | None = None

    @property
    def finished(self) -> bool:
        """Whether the run reached a terminal state."""
        return self.state in _TERMINAL

    def summary(self) -> dict[str, Any]:
        """The wire-friendly projection (everything but the result body)."""
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "params": self.params,
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error": self.error,
            "trace_id": self.trace_id,
            "owner_id": self.owner_id,
        }


@dataclass(frozen=True)
class LeaseView:
    """One live lease, as reported by :meth:`StorageBackend.live_leases`."""

    run_id: str
    owner_id: str
    lease_expires_at: float
    heartbeat_at: float

    def age(self, now: float) -> float:
        """Seconds since the owner last heartbeat, as of ``now``."""
        return max(0.0, now - self.heartbeat_at)


def params_to_json(params: dict[str, Any]) -> str:
    """Canonical serialization of a record's parameter dict."""
    return json.dumps(params)


class StorageBackend(ABC):
    """Record-level persistence for submitted runs (see module docstring).

    Implementations must make :meth:`claim_next`, :meth:`transition`,
    :meth:`heartbeat` and :meth:`expire_leases` atomic with respect to
    concurrent claimants — including claimants in *other processes*
    for backends that support them — because the worker fleet's
    exactly-once guarantee reduces to these four compare-and-set
    primitives.
    """

    #: Human-readable backend identifier (``sqlite``, ``postgres``,
    #: ``memory``), used in logs and the health report.
    name: str = "?"

    #: The location this backend persists to (path, DSN, or pseudo-URL).
    url: str = "?"

    # -- schema ------------------------------------------------------------

    @abstractmethod
    def migrate(self) -> None:
        """Create or upgrade the schema in place; refuse newer layouts.

        Must raise :class:`~repro.exceptions.ServiceError` with code
        ``schema-version`` when the stored version is newer than
        :data:`SCHEMA_VERSION`, and must preserve existing rows
        bit-for-bit when upgrading.
        """

    @abstractmethod
    def schema_version(self) -> int:
        """The stored schema version stamp."""

    # -- writes ------------------------------------------------------------

    @abstractmethod
    def insert(self, record: RunRecord) -> None:
        """Persist a brand-new queued run."""

    @abstractmethod
    def claim_next(
        self,
        now: float,
        *,
        owner_id: str | None = None,
        lease_expires_at: float | None = None,
    ) -> RunRecord | None:
        """Atomically move the oldest eligible queued run to ``running``.

        Bumps ``attempts`` and stamps ``owner_id`` /
        ``lease_expires_at`` / ``heartbeat_at`` when a leased owner
        claims; a legacy (``owner_id=None``) claim leaves the lease
        columns NULL.  Returns the claimed record, or ``None`` when
        nothing is eligible at ``now``.
        """

    @abstractmethod
    def heartbeat(
        self,
        run_id: str,
        owner_id: str,
        *,
        now: float,
        lease_expires_at: float,
    ) -> bool:
        """Renew a live lease; ``False`` when the lease is no longer held.

        The renewal only applies while the row is ``running`` *and*
        still owned by ``owner_id`` — a reassigned or completed run
        refuses, which is how a partitioned worker learns it lost
        ownership.
        """

    @abstractmethod
    def transition(
        self,
        run_id: str,
        expect: str,
        state: str,
        *,
        now: float,
        result: str | None = None,
        error: str | None = None,
        not_before: float = 0.0,
        owner_id: str | None = None,
        clear_lease: bool = False,
    ) -> bool:
        """Compare-and-set one row from ``expect`` to ``state``.

        When ``owner_id`` is given the row must additionally still be
        owned by it (the leased-completion path); ``clear_lease``
        resets the lease columns as part of the same write.  Returns
        whether exactly one row moved.
        """

    @abstractmethod
    def expire_leases(self, now: float) -> list[RunRecord]:
        """Requeue every running run whose lease deadline has passed.

        Only leased rows (``owner_id`` set) participate; legacy
        in-process claims have no lease and are covered by
        :meth:`recover_interrupted` instead.  Returns the expired
        records *as they were at expiry* (owner and lease intact) so
        the reaper can log who lost which run.
        """

    @abstractmethod
    def recover_interrupted(self, now: float) -> int:
        """Requeue orphaned ``running`` rows on startup.

        Orphaned means either a legacy claim (``owner_id`` NULL — its
        claimant was the dead server itself) or an *expired* lease.  A
        live lease belongs to a healthy fleet worker and must be left
        alone — the reaper, not recovery, handles it if the worker
        later dies.  Returns the number of requeued rows.
        """

    # -- reads -------------------------------------------------------------

    @abstractmethod
    def fetch(self, run_id: str) -> RunRecord | None:
        """One record, or ``None`` when unknown."""

    @abstractmethod
    def next_eligible_at(self) -> float | None:
        """Earliest ``not_before`` among queued runs (backoff wake-up)."""

    @abstractmethod
    def list_runs(
        self, state: str | None = None, *, limit: int = 100
    ) -> list[RunRecord]:
        """Runs newest-first, optionally filtered by state."""

    @abstractmethod
    def counts_by_state(self) -> dict[str, int]:
        """``{state: count}`` over every known state (zeros included)."""

    @abstractmethod
    def unfinished(self) -> list[RunRecord]:
        """Every run not yet in a terminal state, oldest first."""

    @abstractmethod
    def live_leases(self, now: float) -> list[LeaseView]:
        """Leases still live at ``now``, oldest heartbeat first."""

    # -- plumbing ----------------------------------------------------------

    @abstractmethod
    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
