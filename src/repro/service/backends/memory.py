"""In-memory storage backend — the test fake.

A pure-dict implementation of the same contract, no I/O, so the
storage-contract suite can assert that SQLite and memory behave
identically, and unit tests of lease logic run with zero filesystem
setup.  Lives only as long as the process; ``repro-oa serve --store
memory://`` is useful for demos, never for real campaigns.
"""

from __future__ import annotations

import threading
from dataclasses import replace

from repro.service.backends.base import (
    RUN_STATES,
    SCHEMA_VERSION,
    LeaseView,
    RunRecord,
    StorageBackend,
)

__all__ = ["MemoryBackend"]


class MemoryBackend(StorageBackend):
    """The run store as a process-local dict (see module docstring)."""

    name = "memory"

    def __init__(self) -> None:
        self.url = "memory://"
        self._lock = threading.RLock()
        self._rows: dict[str, RunRecord] = {}
        self._order: list[str] = []  # insertion order == created order

    # -- schema ------------------------------------------------------------

    def migrate(self) -> None:
        """Nothing to create; the dict is always at the current layout."""

    def schema_version(self) -> int:
        """Always the current version — there is no stored layout."""
        return SCHEMA_VERSION

    # -- writes ------------------------------------------------------------

    def insert(self, record: RunRecord) -> None:
        """Persist a brand-new queued run."""
        with self._lock:
            self._rows[record.run_id] = record
            self._order.append(record.run_id)

    def claim_next(
        self,
        now: float,
        *,
        owner_id: str | None = None,
        lease_expires_at: float | None = None,
    ) -> RunRecord | None:
        """Atomically claim the oldest eligible queued run."""
        with self._lock:
            eligible = [
                row
                for row in self._rows.values()
                if row.state == "queued" and row.not_before <= now
            ]
            eligible.sort(key=lambda r: (r.created_at, r.run_id))
            for row in eligible[:1]:
                claimed = replace(
                    row,
                    state="running",
                    attempts=row.attempts + 1,
                    updated_at=now,
                    owner_id=owner_id,
                    lease_expires_at=lease_expires_at,
                    heartbeat_at=now if owner_id is not None else None,
                )
                self._rows[row.run_id] = claimed
                return claimed
        return None

    def heartbeat(
        self,
        run_id: str,
        owner_id: str,
        *,
        now: float,
        lease_expires_at: float,
    ) -> bool:
        """Renew a live lease; ``False`` when no longer held."""
        with self._lock:
            row = self._rows.get(run_id)
            if row is None or row.state != "running":
                return False
            if row.owner_id != owner_id:
                return False
            self._rows[run_id] = replace(
                row,
                heartbeat_at=now,
                lease_expires_at=lease_expires_at,
                updated_at=now,
            )
            return True

    def transition(
        self,
        run_id: str,
        expect: str,
        state: str,
        *,
        now: float,
        result: str | None = None,
        error: str | None = None,
        not_before: float = 0.0,
        owner_id: str | None = None,
        clear_lease: bool = False,
    ) -> bool:
        """Compare-and-set one row from ``expect`` to ``state``."""
        with self._lock:
            row = self._rows.get(run_id)
            if row is None or row.state != expect:
                return False
            if owner_id is not None and row.owner_id != owner_id:
                return False
            updates: dict = {
                "state": state,
                "updated_at": now,
                "not_before": not_before,
            }
            if result is not None:
                updates["result"] = result
            if error is not None:
                updates["error"] = error
            if clear_lease:
                updates["owner_id"] = None
                updates["lease_expires_at"] = None
                updates["heartbeat_at"] = None
            self._rows[run_id] = replace(row, **updates)
            return True

    def expire_leases(self, now: float) -> list[RunRecord]:
        """Requeue running runs whose lease deadline has passed."""
        with self._lock:
            expired = [
                row
                for run_id in self._order
                if (row := self._rows[run_id]).state == "running"
                and row.owner_id is not None
                and row.lease_expires_at is not None
                and row.lease_expires_at <= now
            ]
            expired.sort(key=lambda r: (r.lease_expires_at, r.run_id))
            for row in expired:
                self._rows[row.run_id] = replace(
                    row,
                    state="queued",
                    not_before=0.0,
                    owner_id=None,
                    lease_expires_at=None,
                    heartbeat_at=None,
                    updated_at=now,
                )
        return expired

    def recover_interrupted(self, now: float) -> int:
        """Requeue orphaned running rows (legacy claims, expired leases)."""
        with self._lock:
            count = 0
            for run_id in self._order:
                row = self._rows[run_id]
                if row.state != "running":
                    continue
                if row.owner_id is not None and (
                    row.lease_expires_at is None
                    or row.lease_expires_at > now
                ):
                    continue  # live lease on a healthy worker
                self._rows[run_id] = replace(
                    row,
                    state="queued",
                    not_before=0.0,
                    owner_id=None,
                    lease_expires_at=None,
                    heartbeat_at=None,
                    updated_at=now,
                )
                count += 1
            return count

    # -- reads -------------------------------------------------------------

    def fetch(self, run_id: str) -> RunRecord | None:
        """One record, or ``None`` when unknown."""
        with self._lock:
            return self._rows.get(run_id)

    def next_eligible_at(self) -> float | None:
        """Earliest ``not_before`` among queued runs."""
        with self._lock:
            queued = [
                row.not_before
                for row in self._rows.values()
                if row.state == "queued"
            ]
        return min(queued) if queued else None

    def list_runs(
        self, state: str | None = None, *, limit: int = 100
    ) -> list[RunRecord]:
        """Runs newest-first, optionally filtered by state."""
        with self._lock:
            rows = [
                self._rows[run_id]
                for run_id in self._order
                if state is None or self._rows[run_id].state == state
            ]
        rows.sort(key=lambda r: (-r.created_at, r.run_id))
        return rows[:limit]

    def counts_by_state(self) -> dict[str, int]:
        """``{state: count}`` over every known state (zeros included)."""
        counts = {state: 0 for state in RUN_STATES}
        with self._lock:
            for row in self._rows.values():
                counts[row.state] += 1
        return counts

    def unfinished(self) -> list[RunRecord]:
        """Every run not yet terminal, oldest first."""
        with self._lock:
            return [
                self._rows[run_id]
                for run_id in self._order
                if self._rows[run_id].state in ("queued", "running")
            ]

    def live_leases(self, now: float) -> list[LeaseView]:
        """Leases still live at ``now``, oldest heartbeat first."""
        with self._lock:
            leases = [
                LeaseView(
                    run_id=row.run_id,
                    owner_id=row.owner_id,
                    lease_expires_at=row.lease_expires_at,
                    heartbeat_at=row.heartbeat_at,
                )
                for row in self._rows.values()
                if row.state == "running"
                and row.owner_id is not None
                and row.lease_expires_at is not None
                and row.lease_expires_at > now
            ]
        leases.sort(key=lambda v: (v.heartbeat_at, v.run_id))
        return leases

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        """No resources to release."""
