"""SQLite storage backend — the dev default.

One WAL-mode file, safe to share between the in-process dispatcher,
CLI threads, and independent ``repro-oa worker`` processes on the same
host.  The connection runs in autocommit (``isolation_level=None``)
so the multi-statement claim and lease-expiry primitives can open an
explicit ``BEGIN IMMEDIATE`` transaction, which takes the database
write lock up front and excludes every other claimant — thread or
process — until commit.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

from repro.service.backends.dbapi import SQLRunBackend

__all__ = ["SQLiteBackend"]


class SQLiteBackend(SQLRunBackend):
    """The run store on a single SQLite file (see module docstring)."""

    name = "sqlite"
    placeholder = "?"
    float_type = "REAL"

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        self.url = self.path
        super().__init__()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path,
            isolation_level=None,  # autocommit; txns are explicit
            check_same_thread=False,
            timeout=30.0,
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    def _read_version(self) -> int:
        return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    def _write_version(self, version: int) -> None:
        # PRAGMA does not accept bound parameters; version is an int
        # under our control.
        self._conn.execute(f"PRAGMA user_version = {int(version)}")

    def _begin_exclusive(self) -> None:
        # IMMEDIATE acquires the write lock at BEGIN, not first write,
        # so concurrent claimants from other processes serialize here.
        self._conn.execute("BEGIN IMMEDIATE")
