"""Generic DB-API 2.0 implementation of the storage contract.

Everything SQL about the run store lives here once:
:class:`SQLRunBackend` issues portable statements through a small set
of dialect hooks (parameter placeholder, float column type, version
stamping, exclusive-transaction opener) that
:class:`~repro.service.backends.sqlite.SQLiteBackend` and
:class:`~repro.service.backends.postgres.PostgresBackend` fill in.

Concurrency model: the connection runs in **autocommit** — every
single-statement write is atomic on its own, and the two multi-step
primitives (claim-with-lease, lease expiry) open an explicit
exclusive transaction first (``BEGIN IMMEDIATE`` on SQLite,
``BEGIN`` + ``FOR UPDATE SKIP LOCKED`` on Postgres), so two claimants
— threads *or processes* — can never take the same row.  A
process-local re-entrant lock additionally serializes statements from
threads sharing one connection.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Sequence

from repro.exceptions import ServiceError
from repro.service.backends.base import (
    RUN_STATES,
    SCHEMA_VERSION,
    LeaseView,
    RunRecord,
    StorageBackend,
    params_to_json,
)

__all__ = ["SQLRunBackend"]

#: Column order used by every SELECT — positional row decoding keeps
#: the backend independent of driver row factories.
_COLUMNS: tuple[str, ...] = (
    "run_id",
    "kind",
    "params",
    "state",
    "created_at",
    "updated_at",
    "attempts",
    "max_attempts",
    "not_before",
    "error",
    "result",
    "trace_id",
    "owner_id",
    "lease_expires_at",
    "heartbeat_at",
)

_SELECT = f"SELECT {', '.join(_COLUMNS)} FROM runs"


def _row_to_record(row: Sequence[Any]) -> RunRecord:
    data = dict(zip(_COLUMNS, row, strict=True))
    data["params"] = json.loads(data["params"])
    return RunRecord(**data)


class SQLRunBackend(StorageBackend):
    """The shared SQL storage logic (see module docstring).

    Subclasses supply the connection (:meth:`_connect`) and the four
    dialect hooks; everything else — schema chain, claims, leases,
    transitions, queries — is identical across engines, which is what
    the storage-contract suite asserts.
    """

    #: DB-API parameter placeholder (``?`` for sqlite3, ``%s`` for
    #: psycopg).
    placeholder = "?"

    #: SQL column type for float timestamps.
    float_type = "REAL"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._conn = self._connect()
        self.migrate()

    # -- dialect hooks -----------------------------------------------------

    def _connect(self) -> Any:
        """Open the DB-API connection in autocommit mode."""
        raise NotImplementedError

    def _read_version(self) -> int:
        """The stored schema version (0 when the store is fresh)."""
        raise NotImplementedError

    def _write_version(self, version: int) -> None:
        """Stamp the schema version."""
        raise NotImplementedError

    def _begin_exclusive(self) -> None:
        """Open a transaction that excludes concurrent claimants."""
        raise NotImplementedError

    def _claim_select_suffix(self) -> str:
        """Row-locking clause appended to the claim SELECT (dialect)."""
        return ""

    # -- plumbing ----------------------------------------------------------

    def _sql(self, statement: str) -> str:
        """Translate the canonical ``?`` placeholders to the dialect's."""
        if self.placeholder == "?":
            return statement
        return statement.replace("?", self.placeholder)

    def _execute(self, statement: str, args: tuple = ()) -> Any:
        return self._conn.execute(self._sql(statement), args)

    def _commit(self) -> None:
        self._conn.execute("COMMIT")

    def _rollback(self) -> None:
        self._conn.execute("ROLLBACK")

    # -- schema ------------------------------------------------------------

    def migrate(self) -> None:
        """Create or upgrade the runs table; refuse newer layouts."""
        with self._lock:
            version = self._read_version()
            if version > SCHEMA_VERSION:
                raise ServiceError(
                    f"run store {self.url!r} has schema version {version}, "
                    f"newer than this library's {SCHEMA_VERSION}; "
                    f"upgrade the library instead of downgrading the data",
                    code="schema-version",
                )
            if version == SCHEMA_VERSION:
                return
            if version == 0:
                self._create_fresh()
                self._write_version(SCHEMA_VERSION)
                return
            # In-place upgrade chain: each step only appends columns,
            # so existing rows survive bit-for-bit and old rows read
            # back with NULL in the new columns.
            if version == 1:
                # v1 -> v2: the trace correlation column.
                self._execute("ALTER TABLE runs ADD COLUMN trace_id TEXT")
                version = 2
            if version == 2:
                # v2 -> v3: the worker-fleet lease columns.  The
                # ``attempts`` counter has existed since v1 and keeps
                # serving as the per-run attempt count.
                self._execute("ALTER TABLE runs ADD COLUMN owner_id TEXT")
                self._execute(
                    f"ALTER TABLE runs ADD COLUMN lease_expires_at "
                    f"{self.float_type}"
                )
                self._execute(
                    f"ALTER TABLE runs ADD COLUMN heartbeat_at "
                    f"{self.float_type}"
                )
                version = 3
            self._write_version(SCHEMA_VERSION)

    def _create_fresh(self) -> None:
        real = self.float_type
        self._execute(
            f"""
            CREATE TABLE IF NOT EXISTS runs (
                run_id           TEXT PRIMARY KEY,
                kind             TEXT NOT NULL,
                params           TEXT NOT NULL,
                state            TEXT NOT NULL,
                created_at       {real} NOT NULL,
                updated_at       {real} NOT NULL,
                attempts         INTEGER NOT NULL DEFAULT 0,
                max_attempts     INTEGER NOT NULL DEFAULT 3,
                not_before       {real} NOT NULL DEFAULT 0,
                error            TEXT,
                result           TEXT,
                trace_id         TEXT,
                owner_id         TEXT,
                lease_expires_at {real},
                heartbeat_at     {real}
            )
            """
        )
        self._execute(
            "CREATE INDEX IF NOT EXISTS runs_by_state "
            "ON runs (state, not_before, created_at)"
        )

    def schema_version(self) -> int:
        """The stored schema version stamp."""
        with self._lock:
            return self._read_version()

    # -- writes ------------------------------------------------------------

    def insert(self, record: RunRecord) -> None:
        """Persist a brand-new queued run."""
        with self._lock:
            self._execute(
                "INSERT INTO runs (run_id, kind, params, state, created_at,"
                " updated_at, attempts, max_attempts, not_before, trace_id)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.run_id,
                    record.kind,
                    params_to_json(record.params),
                    record.state,
                    record.created_at,
                    record.updated_at,
                    record.attempts,
                    record.max_attempts,
                    record.not_before,
                    record.trace_id,
                ),
            )

    def claim_next(
        self,
        now: float,
        *,
        owner_id: str | None = None,
        lease_expires_at: float | None = None,
    ) -> RunRecord | None:
        """Atomically claim the oldest eligible queued run."""
        with self._lock:
            self._begin_exclusive()
            try:
                cursor = self._execute(
                    f"{_SELECT} WHERE state = 'queued' AND not_before <= ?"
                    f" ORDER BY created_at, run_id LIMIT 1"
                    f"{self._claim_select_suffix()}",
                    (now,),
                )
                row = cursor.fetchone()
                if row is None:
                    self._rollback()
                    return None
                run_id = row[0]
                updated = self._execute(
                    "UPDATE runs SET state = 'running',"
                    " attempts = attempts + 1, updated_at = ?,"
                    " owner_id = ?, lease_expires_at = ?, heartbeat_at = ?"
                    " WHERE run_id = ? AND state = 'queued'",
                    (
                        now,
                        owner_id,
                        lease_expires_at,
                        now if owner_id is not None else None,
                        run_id,
                    ),
                ).rowcount
                if updated != 1:  # pragma: no cover - excluded by BEGIN
                    self._rollback()
                    return None
                self._commit()
            except BaseException:
                self._rollback()
                raise
        return self.fetch(run_id)

    def heartbeat(
        self,
        run_id: str,
        owner_id: str,
        *,
        now: float,
        lease_expires_at: float,
    ) -> bool:
        """Renew a live lease; ``False`` when no longer held."""
        with self._lock:
            cursor = self._execute(
                "UPDATE runs SET heartbeat_at = ?, lease_expires_at = ?,"
                " updated_at = ?"
                " WHERE run_id = ? AND state = 'running' AND owner_id = ?",
                (now, lease_expires_at, now, run_id, owner_id),
            )
            return cursor.rowcount == 1

    def transition(
        self,
        run_id: str,
        expect: str,
        state: str,
        *,
        now: float,
        result: str | None = None,
        error: str | None = None,
        not_before: float = 0.0,
        owner_id: str | None = None,
        clear_lease: bool = False,
    ) -> bool:
        """Compare-and-set one row from ``expect`` to ``state``."""
        statement = (
            "UPDATE runs SET state = ?, updated_at = ?, not_before = ?,"
            " result = COALESCE(?, result), error = COALESCE(?, error)"
        )
        args: list[Any] = [state, now, not_before, result, error]
        if clear_lease:
            statement += (
                ", owner_id = NULL, lease_expires_at = NULL,"
                " heartbeat_at = NULL"
            )
        statement += " WHERE run_id = ? AND state = ?"
        args += [run_id, expect]
        if owner_id is not None:
            statement += " AND owner_id = ?"
            args.append(owner_id)
        with self._lock:
            cursor = self._execute(statement, tuple(args))
            return cursor.rowcount == 1

    def expire_leases(self, now: float) -> list[RunRecord]:
        """Requeue running runs whose lease deadline has passed."""
        with self._lock:
            self._begin_exclusive()
            try:
                rows = self._execute(
                    f"{_SELECT} WHERE state = 'running'"
                    f" AND owner_id IS NOT NULL AND lease_expires_at <= ?"
                    f" ORDER BY lease_expires_at, run_id"
                    f"{self._claim_select_suffix()}",
                    (now,),
                ).fetchall()
                expired = [_row_to_record(row) for row in rows]
                for record in expired:
                    self._execute(
                        "UPDATE runs SET state = 'queued', not_before = 0,"
                        " owner_id = NULL, lease_expires_at = NULL,"
                        " heartbeat_at = NULL, updated_at = ?"
                        " WHERE run_id = ? AND state = 'running'"
                        " AND owner_id = ?",
                        (now, record.run_id, record.owner_id),
                    )
                self._commit()
            except BaseException:
                self._rollback()
                raise
        return expired

    def recover_interrupted(self, now: float) -> int:
        """Requeue orphaned running rows (legacy claims, expired leases)."""
        with self._lock:
            cursor = self._execute(
                "UPDATE runs SET state = 'queued', not_before = 0,"
                " owner_id = NULL, lease_expires_at = NULL,"
                " heartbeat_at = NULL, updated_at = ?"
                " WHERE state = 'running'"
                " AND (owner_id IS NULL OR lease_expires_at <= ?)",
                (now, now),
            )
            return cursor.rowcount

    # -- reads -------------------------------------------------------------

    def fetch(self, run_id: str) -> RunRecord | None:
        """One record, or ``None`` when unknown."""
        with self._lock:
            row = self._execute(
                f"{_SELECT} WHERE run_id = ?", (run_id,)
            ).fetchone()
        return None if row is None else _row_to_record(row)

    def next_eligible_at(self) -> float | None:
        """Earliest ``not_before`` among queued runs."""
        with self._lock:
            row = self._execute(
                "SELECT MIN(not_before) FROM runs WHERE state = 'queued'"
            ).fetchone()
        return None if row is None or row[0] is None else float(row[0])

    def list_runs(
        self, state: str | None = None, *, limit: int = 100
    ) -> list[RunRecord]:
        """Runs newest-first, optionally filtered by state."""
        query = _SELECT
        args: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            args = (state,)
        query += " ORDER BY created_at DESC, run_id LIMIT ?"
        with self._lock:
            rows = self._execute(query, (*args, limit)).fetchall()
        return [_row_to_record(row) for row in rows]

    def counts_by_state(self) -> dict[str, int]:
        """``{state: count}`` over every known state (zeros included)."""
        with self._lock:
            rows = self._execute(
                "SELECT state, COUNT(*) FROM runs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in RUN_STATES}
        for state, n in rows:
            counts[state] = n
        return counts

    def unfinished(self) -> list[RunRecord]:
        """Every run not yet terminal, oldest first."""
        with self._lock:
            rows = self._execute(
                f"{_SELECT} WHERE state IN ('queued', 'running')"
                f" ORDER BY created_at, run_id"
            ).fetchall()
        return [_row_to_record(row) for row in rows]

    def live_leases(self, now: float) -> list[LeaseView]:
        """Leases still live at ``now``, oldest heartbeat first."""
        with self._lock:
            rows = self._execute(
                "SELECT run_id, owner_id, lease_expires_at, heartbeat_at"
                " FROM runs WHERE state = 'running'"
                " AND owner_id IS NOT NULL AND lease_expires_at > ?"
                " ORDER BY heartbeat_at, run_id",
                (now,),
            ).fetchall()
        return [LeaseView(*row) for row in rows]

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()
