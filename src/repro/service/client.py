"""A blocking client for the campaign service.

Speaks the NDJSON protocol of :mod:`repro.service.protocol` over a
plain TCP socket — deliberately synchronous, because its callers (the
CLI, scripts, tests) are synchronous.  One client holds one connection
and may issue any number of requests; typed server errors surface as
:class:`~repro.exceptions.ServiceError` with the wire error code on
``exc.code``.

Typical use::

    with ServiceClient(port=port) as client:
        run_id = client.submit("campaign", {"clusters": 3, "resources": 40})
        status = client.wait(run_id, timeout=120)
        if status["state"] == "done":
            payload = client.result(run_id)
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any

from repro import obs
from repro.exceptions import ServiceError
from repro.obs.context import TraceContext, current_trace, mint_trace
from repro.service import protocol
from repro.service.queue import full_jitter_backoff

__all__ = ["ServiceClient"]


class ServiceClient:
    """Synchronous campaign-service client (see module docstring).

    Every :meth:`submit` carries a :class:`~repro.obs.context.TraceContext`:
    the process-locally active one (:func:`~repro.obs.context.use_trace`),
    or a freshly minted one.  The accepted context — bound to its run id
    — is kept on :attr:`last_trace`, so callers can join the client's
    own spans, the store row, and the worker-side trace on one
    ``trace_id``.

    Timeouts: ``timeout`` bounds both the connection attempt and each
    reply read; ``connect_timeout`` / ``read_timeout`` override either
    individually.  A timed-out request surfaces as
    :class:`~repro.exceptions.ServiceError` with code ``timeout``, so
    a hung server can no longer block a caller forever.  Failed
    *connection* attempts are retried ``connect_retries`` times with
    seeded full-jitter backoff
    (:func:`~repro.service.queue.full_jitter_backoff`) — the seed
    makes retry schedules replayable in tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4321,
        *,
        timeout: float = 30.0,
        connect_timeout: float | None = None,
        read_timeout: float | None = None,
        connect_retries: int = 2,
        retry_base: float = 0.1,
        retry_cap: float = 2.0,
        retry_seed: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self.read_timeout = (
            read_timeout if read_timeout is not None else timeout
        )
        self.connect_retries = max(0, connect_retries)
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self._retry_rng = random.Random(retry_seed)
        self.last_trace: TraceContext | None = None
        self._sock: socket.socket | None = None
        self._reader = None

    # -- plumbing ----------------------------------------------------------

    def _connect_once(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )

    def _connect(self) -> None:
        if self._sock is not None:
            return
        last_error: OSError | None = None
        for attempt in range(1, self.connect_retries + 2):
            try:
                self._sock = self._connect_once()
                break
            except OSError as exc:
                last_error = exc
                if attempt > self.connect_retries:
                    code = (
                        "timeout"
                        if isinstance(exc, socket.timeout)
                        else "internal"
                    )
                    raise ServiceError(
                        f"cannot connect to service at "
                        f"{self.host}:{self.port} after {attempt} "
                        f"attempt(s): {exc}",
                        code=code,
                    ) from None
                time.sleep(
                    full_jitter_backoff(
                        attempt,
                        base=self.retry_base,
                        factor=2.0,
                        cap=self.retry_cap,
                        rng=self._retry_rng,
                    )
                )
        assert self._sock is not None, last_error
        # Per-reply read budget; sendall shares the same socket timeout.
        self._sock.settimeout(self.read_timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def _request(self, op: str, payload: dict[str, Any]) -> dict[str, Any]:
        """One round-trip; raises typed :class:`ServiceError` on failure."""
        self._connect()
        assert self._sock is not None and self._reader is not None
        line = protocol.encode_request(
            protocol.Request(op=op, payload=payload)
        )
        try:
            self._sock.sendall((line + "\n").encode("utf-8"))
            reply = self._reader.readline()
        except socket.timeout:
            self.close()
            raise ServiceError(
                f"no reply from {self.host}:{self.port} within "
                f"{self.read_timeout}s (op {op!r})",
                code="timeout",
            ) from None
        except OSError as exc:
            self.close()
            raise ServiceError(
                f"connection to {self.host}:{self.port} broke: {exc}",
                code="internal",
            ) from None
        if not reply:
            self.close()
            raise ServiceError(
                f"service at {self.host}:{self.port} closed the connection",
                code="internal",
            )
        response = protocol.decode_response(reply)
        response.raise_for_error()
        return response.payload

    def close(self) -> None:
        """Drop the connection (the client reconnects on next use)."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: connect eagerly."""
        self._connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # -- operations --------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict[str, Any] | None = None,
        *,
        max_attempts: int | None = None,
        trace: TraceContext | str | None = None,
    ) -> str:
        """Queue a job; returns its run id.

        ``trace`` pins the trace context explicitly (a
        :class:`~repro.obs.context.TraceContext` or a bare trace id
        string); by default the process-locally active context is used,
        or a fresh one is minted.  The run-bound context lands on
        :attr:`last_trace`.
        """
        if trace is None:
            context = current_trace() or mint_trace()
        elif isinstance(trace, str):
            context = TraceContext(trace_id=trace)
        else:
            context = trace
        payload: dict[str, Any] = {
            "kind": kind,
            "params": params or {},
            "trace_id": context.trace_id,
        }
        if max_attempts is not None:
            payload["max_attempts"] = max_attempts
        with obs.span(
            "service.client.submit", kind=kind, trace_id=context.trace_id
        ):
            reply = self._request("submit", payload)
        self.last_trace = context.with_run(reply["run_id"])
        return reply["run_id"]

    def status(self, run_id: str) -> dict[str, Any]:
        """The run's summary (state, attempts, error, timestamps)."""
        return self._request("status", {"run_id": run_id})

    def result(self, run_id: str) -> dict[str, Any]:
        """The stored result envelope of a ``done`` run.

        The ``result`` key holds the parsed
        :func:`repro.experiments.results_io.dump_result` envelope;
        feed ``json.dumps(payload["result"])`` to
        :func:`~repro.experiments.results_io.load_result` to get the
        original object back.
        """
        return self._request("result", {"run_id": run_id})

    def runs(
        self, state: str | None = None, *, limit: int = 100
    ) -> list[dict[str, Any]]:
        """Run summaries, newest first, optionally filtered by state."""
        payload: dict[str, Any] = {"limit": limit}
        if state is not None:
            payload["state"] = state
        return self._request("list", payload)["runs"]

    def cancel(self, run_id: str) -> dict[str, Any]:
        """Cancel a queued run; typed error if it already started."""
        return self._request("cancel", {"run_id": run_id})

    def health(self) -> dict[str, Any]:
        """Server liveness: version, uptime, worker and queue counts."""
        return self._request("health", {})

    def wait(
        self,
        run_id: str,
        *,
        timeout: float = 120.0,
        poll: float = 0.05,
    ) -> dict[str, Any]:
        """Poll until the run reaches a terminal state; returns its summary."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(run_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"run {run_id} still {status['state']} after {timeout}s",
                    code="timeout",
                )
            time.sleep(poll)
