"""The campaign service wire protocol — versioned NDJSON over TCP.

One request, one response, each a single JSON object on its own line
(newline-delimited JSON).  Requests carry the protocol version, an
operation name, and an operation payload::

    {"v": 1, "op": "submit", "payload": {"kind": "campaign", "params": {...}}}

Responses echo the operation and either carry a payload or a typed
error::

    {"v": 1, "ok": true,  "op": "submit", "payload": {"run_id": "..."}}
    {"v": 1, "ok": false, "op": "submit",
     "error": {"code": "unknown-kind", "message": "..."}}

Error codes are a closed set (:data:`ERROR_CODES`) so clients can
branch on machine-readable failures; the human-readable message is
advisory.  Unknown protocol versions are refused with ``bad-version``
rather than guessed at — the version is the contract.

Operations: ``submit``, ``status``, ``result``, ``list``, ``cancel``,
``health`` (:data:`OPERATIONS`).

Trace propagation rides the existing message shape (still protocol
v1 — the field is optional, so older peers interoperate): a submit
payload may carry ``"trace_id"`` (:data:`TRACE_ID_KEY`), the
correlation id minted by :func:`repro.obs.context.mint_trace`.  The
server persists it on the run's store row, threads it through every
worker attempt, and echoes it in the submit response and in every
``status``/``list`` summary; absent a client-supplied id, the server
mints one, so every stored run is joinable by trace_id.

Worker-fleet visibility (still protocol v1 — additive fields): the
``health`` reply payload carries a ``"fleet"`` object describing the
shared store's lease state — ``backend`` (storage backend name),
``live_workers`` (distinct owners holding live leases), ``leased_jobs``
(runs currently leased), ``oldest_heartbeat_age`` (seconds since the
stalest live lease's last heartbeat), and the reaper counters
``leases_expired`` / ``leases_reassigned`` accumulated over the server
process's lifetime.  ``status``/``list`` summaries likewise gain an
optional ``"owner_id"`` field naming the worker currently executing a
running run.  Old clients ignore the new fields; old servers simply
don't send them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ServiceError

__all__ = [
    "ERROR_CODES",
    "OPERATIONS",
    "PROTOCOL_VERSION",
    "TRACE_ID_KEY",
    "Request",
    "Response",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "error_response",
    "ok_response",
]

#: Wire protocol generation; bump on incompatible message changes.
PROTOCOL_VERSION = 1

#: Optional submit-payload key carrying the trace correlation id.
TRACE_ID_KEY = "trace_id"

#: The closed set of request operations.
OPERATIONS: tuple[str, ...] = (
    "submit",
    "status",
    "result",
    "list",
    "cancel",
    "health",
)

#: Machine-readable failure codes a response may carry.
ERROR_CODES: tuple[str, ...] = (
    "bad-request",      # malformed JSON / missing fields
    "bad-version",      # protocol version mismatch
    "unknown-op",       # operation not in OPERATIONS
    "unknown-kind",     # submit with an unregistered job kind
    "bad-params",       # job parameters failed validation
    "unknown-run",      # no run with that id
    "not-finished",     # result requested before the run finished
    "job-failed",       # result requested for a failed run
    "not-cancellable",  # cancel on a non-queued run
    "bad-transition",   # illegal state-machine move (internal misuse)
    "schema-version",   # store written by a newer library
    "injected",         # deliberately-failing diagnostic job
    "job-crashed",      # non-library exception inside a worker
    "timeout",          # job exceeded the per-job wall-clock budget
    "lease-lost",       # leased completion by an owner no longer holding it
    "backend-unavailable",  # storage backend's driver is not installed
    "internal",         # anything else
)


@dataclass(frozen=True)
class Request:
    """One decoded client request."""

    op: str
    payload: dict[str, Any] = field(default_factory=dict)
    v: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Response:
    """One decoded server response."""

    op: str
    ok: bool
    payload: dict[str, Any] = field(default_factory=dict)
    error_code: str | None = None
    error_message: str | None = None
    v: int = PROTOCOL_VERSION

    def raise_for_error(self) -> "Response":
        """Raise a typed :class:`ServiceError` if this is an error reply."""
        if self.ok:
            return self
        raise ServiceError(
            self.error_message or "service request failed",
            code=self.error_code or "internal",
        )


def encode_request(request: Request) -> str:
    """Serialize a request to one NDJSON line (no trailing newline)."""
    return json.dumps(
        {"v": request.v, "op": request.op, "payload": request.payload}
    )


def encode_response(response: Response) -> str:
    """Serialize a response to one NDJSON line (no trailing newline)."""
    body: dict[str, Any] = {
        "v": response.v,
        "ok": response.ok,
        "op": response.op,
    }
    if response.ok:
        body["payload"] = response.payload
    else:
        body["error"] = {
            "code": response.error_code or "internal",
            "message": response.error_message or "",
        }
    return json.dumps(body)


def _parse_line(line: str, what: str) -> dict[str, Any]:
    try:
        body = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(
            f"malformed {what} line: {exc}", code="bad-request"
        ) from None
    if not isinstance(body, dict):
        raise ServiceError(
            f"{what} must be a JSON object, "
            f"got {type(body).__name__}",
            code="bad-request",
        )
    return body


def _check_version(body: dict[str, Any], what: str) -> int:
    version = body.get("v")
    if version != PROTOCOL_VERSION:
        raise ServiceError(
            f"{what} protocol version {version!r} is not supported "
            f"(this library speaks {PROTOCOL_VERSION})",
            code="bad-version",
        )
    return version


def decode_request(line: str) -> Request:
    """Parse and validate one request line; typed errors on any defect."""
    body = _parse_line(line, "request")
    version = _check_version(body, "request")
    op = body.get("op")
    if op not in OPERATIONS:
        raise ServiceError(
            f"unknown operation {op!r}; expected one of {OPERATIONS}",
            code="unknown-op",
        )
    payload = body.get("payload", {})
    if not isinstance(payload, dict):
        raise ServiceError(
            f"request payload must be an object, "
            f"got {type(payload).__name__}",
            code="bad-request",
        )
    return Request(op=op, payload=payload, v=version)


def decode_response(line: str) -> Response:
    """Parse one response line (client side)."""
    body = _parse_line(line, "response")
    version = _check_version(body, "response")
    op = str(body.get("op", ""))
    if body.get("ok"):
        payload = body.get("payload", {})
        if not isinstance(payload, dict):
            raise ServiceError(
                f"response payload must be an object, "
                f"got {type(payload).__name__}",
                code="bad-request",
            )
        return Response(op=op, ok=True, payload=payload, v=version)
    error = body.get("error", {})
    if not isinstance(error, dict):
        error = {}
    return Response(
        op=op,
        ok=False,
        error_code=str(error.get("code", "internal")),
        error_message=str(error.get("message", "")),
        v=version,
    )


def ok_response(op: str, payload: dict[str, Any]) -> Response:
    """Build a success reply."""
    return Response(op=op, ok=True, payload=payload)


def error_response(op: str, exc: ServiceError) -> Response:
    """Build a typed error reply from a service exception."""
    code = exc.code if exc.code in ERROR_CODES else "internal"
    return Response(
        op=op, ok=False, error_code=code, error_message=str(exc)
    )
