"""The persistent run store — SQLite-backed campaign bookkeeping.

Every submitted job becomes a row in a single ``runs`` table: its kind,
parameters, state machine position (``queued -> running -> done/failed``,
with ``cancelled`` as a side exit), attempt count, backoff deadline, and
— once finished — either the serialized result envelope
(:func:`repro.experiments.results_io.dump_result`) or the recorded
error.  The database is the *only* durable state of the campaign
service: a server restart replays ``recover_interrupted`` and resumes
exactly where the previous process died.

Design points:

* **WAL journal** — readers (``repro-oa runs`` against the file, a
  second server replica probing health) never block the dispatcher's
  writes.
* **Schema versioning** — ``PRAGMA user_version`` stamps the layout;
  opening a database written by a *newer* library refuses loudly
  instead of corrupting it.
* **Single-writer discipline** — all mutation goes through this class
  under one lock, so the store is safe to share between the asyncio
  dispatcher and CLI threads in the same process.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import ServiceError

__all__ = [
    "RUN_STATES",
    "SCHEMA_VERSION",
    "RunRecord",
    "RunStore",
]

#: Current on-disk layout, stamped into ``PRAGMA user_version``.
#: v1: the original ``runs`` table; v2 adds the ``trace_id``
#: correlation column (see :mod:`repro.obs.context`).
SCHEMA_VERSION = 2

#: Legal ``runs.state`` values, in lifecycle order.
RUN_STATES: tuple[str, ...] = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
)

#: States a run can never leave.
_TERMINAL = frozenset({"done", "failed", "cancelled"})


@dataclass(frozen=True)
class RunRecord:
    """One submitted job, as stored."""

    run_id: str
    kind: str
    params: dict[str, Any]
    state: str
    created_at: float
    updated_at: float
    attempts: int
    max_attempts: int
    not_before: float
    error: str | None
    result: str | None
    trace_id: str | None = None

    @property
    def finished(self) -> bool:
        """Whether the run reached a terminal state."""
        return self.state in _TERMINAL

    def summary(self) -> dict[str, Any]:
        """The wire-friendly projection (everything but the result body)."""
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "params": self.params,
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error": self.error,
            "trace_id": self.trace_id,
        }


def _row_to_record(row: sqlite3.Row) -> RunRecord:
    return RunRecord(
        run_id=row["run_id"],
        kind=row["kind"],
        params=json.loads(row["params"]),
        state=row["state"],
        created_at=row["created_at"],
        updated_at=row["updated_at"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        not_before=row["not_before"],
        error=row["error"],
        result=row["result"],
        trace_id=row["trace_id"],
    )


class RunStore:
    """SQLite persistence for submitted runs (see module docstring).

    ``clock`` supplies every timestamp the store writes (``created_at``,
    ``updated_at``, claim eligibility ``now``); it defaults to
    :func:`time.time` and is injectable so tests drive retry/backoff
    deadlines and kill-restart recovery on a fake clock instead of
    sleeping through real time.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = str(path)
        self._clock = clock
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=10.0
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._migrate()

    # -- schema ------------------------------------------------------------

    def _migrate(self) -> None:
        """Create or validate the schema; refuse newer-than-known layouts."""
        with self._lock, self._conn:
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if version > SCHEMA_VERSION:
                raise ServiceError(
                    f"run store {self.path!r} has schema version {version}, "
                    f"newer than this library's {SCHEMA_VERSION}; "
                    f"upgrade the library instead of downgrading the data",
                    code="schema-version",
                )
            if version == SCHEMA_VERSION:
                return
            if version == 1:
                # v1 -> v2: runs gain the trace correlation column.
                # Old rows keep a NULL trace_id — they predate tracing.
                self._conn.execute(
                    "ALTER TABLE runs ADD COLUMN trace_id TEXT"
                )
                self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
                return
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS runs (
                    run_id       TEXT PRIMARY KEY,
                    kind         TEXT NOT NULL,
                    params       TEXT NOT NULL,
                    state        TEXT NOT NULL,
                    created_at   REAL NOT NULL,
                    updated_at   REAL NOT NULL,
                    attempts     INTEGER NOT NULL DEFAULT 0,
                    max_attempts INTEGER NOT NULL DEFAULT 3,
                    not_before   REAL NOT NULL DEFAULT 0,
                    error        TEXT,
                    result       TEXT,
                    trace_id     TEXT
                )
                """
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS runs_by_state "
                "ON runs (state, not_before, created_at)"
            )
            self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    # -- lifecycle ---------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict[str, Any],
        *,
        max_attempts: int = 3,
        trace_id: str | None = None,
    ) -> str:
        """Persist a new queued run; returns its id.

        ``trace_id`` is the submit-time correlation id
        (:mod:`repro.obs.context`); every execution attempt of this run
        tags its spans with it.
        """
        if max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {max_attempts!r}",
                code="bad-request",
            )
        run_id = uuid.uuid4().hex[:12]
        now = self._clock()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO runs (run_id, kind, params, state, created_at,"
                " updated_at, attempts, max_attempts, not_before, trace_id)"
                " VALUES (?, ?, ?, 'queued', ?, ?, 0, ?, 0, ?)",
                (
                    run_id,
                    kind,
                    json.dumps(params),
                    now,
                    now,
                    max_attempts,
                    trace_id,
                ),
            )
        return run_id

    def get(self, run_id: str) -> RunRecord:
        """Fetch one run; raises ``unknown-run`` if absent."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise ServiceError(
                f"no run with id {run_id!r}", code="unknown-run"
            )
        return _row_to_record(row)

    def claim_next(self, now: float | None = None) -> RunRecord | None:
        """Atomically move the oldest eligible queued run to ``running``.

        Eligible means its backoff deadline (``not_before``) has passed.
        The claim bumps ``attempts``, so a claimed run already counts
        the execution about to happen.  Returns ``None`` when nothing
        is runnable right now.
        """
        now = self._clock() if now is None else now
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE state = 'queued' AND"
                " not_before <= ? ORDER BY created_at, run_id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE runs SET state = 'running', attempts = attempts + 1,"
                " updated_at = ? WHERE run_id = ?",
                (now, row["run_id"]),
            )
        return self.get(row["run_id"])

    def next_eligible_at(self) -> float | None:
        """Earliest ``not_before`` among queued runs (backoff wake-up)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT MIN(not_before) AS t FROM runs WHERE state = 'queued'"
            ).fetchone()
        return None if row["t"] is None else float(row["t"])

    def mark_done(self, run_id: str, result: str) -> None:
        """Record success and the serialized result envelope."""
        self._transition(run_id, "running", "done", result=result)

    def mark_failed(self, run_id: str, error: str) -> None:
        """Record terminal failure with its error message."""
        self._transition(run_id, "running", "failed", error=error)

    def requeue_for_retry(
        self, run_id: str, error: str, *, not_before: float
    ) -> None:
        """Put a failed execution back in the queue with a backoff deadline."""
        self._transition(
            run_id, "running", "queued", error=error, not_before=not_before
        )

    def cancel(self, run_id: str) -> RunRecord:
        """Cancel a queued run; running/terminal runs refuse."""
        record = self.get(run_id)
        if record.state != "queued":
            raise ServiceError(
                f"run {run_id!r} is {record.state}, only queued runs "
                f"can be cancelled",
                code="not-cancellable",
            )
        self._transition(run_id, "queued", "cancelled")
        return self.get(run_id)

    def recover_interrupted(self) -> int:
        """Requeue runs a dead server left ``running`` (crash recovery).

        Called on server startup *before* the dispatcher starts: any row
        still marked running belongs to a process that no longer exists,
        so its execution is lost and must be redone.  The interrupted
        attempt stays counted.  Returns the number of recovered runs.
        """
        now = self._clock()
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE runs SET state = 'queued', not_before = 0,"
                " updated_at = ? WHERE state = 'running'",
                (now,),
            )
            return cursor.rowcount

    def _transition(
        self,
        run_id: str,
        expect: str,
        state: str,
        *,
        result: str | None = None,
        error: str | None = None,
        not_before: float = 0.0,
    ) -> None:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE runs SET state = ?, updated_at = ?, not_before = ?,"
                " result = COALESCE(?, result), error = COALESCE(?, error)"
                " WHERE run_id = ? AND state = ?",
                (
                    state,
                    self._clock(),
                    not_before,
                    result,
                    error,
                    run_id,
                    expect,
                ),
            )
            if cursor.rowcount != 1:
                actual = self.get(run_id).state  # raises unknown-run if absent
                raise ServiceError(
                    f"run {run_id!r} is {actual}, expected {expect} "
                    f"(cannot move to {state})",
                    code="bad-transition",
                )

    # -- queries -----------------------------------------------------------

    def list_runs(
        self, state: str | None = None, *, limit: int = 100
    ) -> list[RunRecord]:
        """Runs newest-first, optionally filtered by state."""
        if state is not None and state not in RUN_STATES:
            raise ServiceError(
                f"unknown state {state!r}; expected one of {RUN_STATES}",
                code="bad-request",
            )
        query = "SELECT * FROM runs"
        args: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            args = (state,)
        query += " ORDER BY created_at DESC, run_id LIMIT ?"
        with self._lock:
            rows = self._conn.execute(query, (*args, limit)).fetchall()
        return [_row_to_record(row) for row in rows]

    def counts_by_state(self) -> dict[str, int]:
        """``{state: count}`` over every known state (zeros included)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM runs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in RUN_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def queue_depth(self) -> int:
        """Number of queued runs (including backoff waits)."""
        return self.counts_by_state()["queued"]

    def unfinished(self) -> list[RunRecord]:
        """Every run not yet in a terminal state, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM runs WHERE state IN ('queued', 'running')"
                " ORDER BY created_at, run_id"
            ).fetchall()
        return [_row_to_record(row) for row in rows]

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the connection."""
        self.close()
