"""The persistent run store — campaign bookkeeping over pluggable backends.

Every submitted job becomes a record in a single ``runs`` table: its
kind, parameters, state machine position (``queued -> running ->
done/failed``, with ``cancelled`` as a side exit), attempt count,
backoff deadline, lease ownership, and — once finished — either the
serialized result envelope
(:func:`repro.experiments.results_io.dump_result`) or the recorded
error.  The store is the *only* durable state of the campaign service:
a server restart replays :meth:`RunStore.recover_interrupted` and
resumes exactly where the previous process died, and a worker-fleet
deployment shares one store between the server and every ``repro-oa
worker`` process.

Storage is pluggable (:mod:`repro.service.backends`): SQLite remains
the dev default, ``postgres://`` DSNs select the server-grade DB-API
adapter, and ``memory://`` selects the in-process test fake.  This
class is the *policy* layer over the backend contract — run-id
minting, timestamps from the injected clock, typed
:class:`~repro.exceptions.ServiceError` raising — so every backend
behaves identically to callers.

Leases (schema v3): a fleet worker claims with ``owner_id`` and a
lease deadline, renews via :meth:`heartbeat`, and completes with an
owner-checked write.  If the worker dies, the server's reaper
(:meth:`expire_leases`) requeues the run for another worker — exactly
once, because every completion is a compare-and-set on (state, owner).
"""

from __future__ import annotations

import time
import uuid
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import ServiceError
from repro.service.backends import (
    RUN_STATES,
    SCHEMA_VERSION,
    LeaseView,
    RunRecord,
    StorageBackend,
    backend_from_url,
)

__all__ = [
    "LeaseView",
    "RUN_STATES",
    "SCHEMA_VERSION",
    "RunRecord",
    "RunStore",
]


class RunStore:
    """Run persistence over a pluggable backend (see module docstring).

    ``url`` is anything :func:`repro.service.backends.backend_from_url`
    accepts — a SQLite path (the default interpretation), a
    ``sqlite:``/``postgres://`` URL, or ``memory://`` — or an
    already-constructed :class:`StorageBackend`.

    ``clock`` supplies every timestamp the store writes (``created_at``,
    ``updated_at``, claim eligibility ``now``, lease deadlines); it
    defaults to :func:`time.time` and is injectable so tests drive
    retry/backoff deadlines, lease expiry, and kill-restart recovery on
    a fake clock instead of sleeping through real time.
    """

    def __init__(
        self,
        url: str | Path | StorageBackend,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if isinstance(url, StorageBackend):
            self.backend = url
        else:
            self.backend = backend_from_url(url)
        #: The backend location (kept under the historical name; the
        #: SQLite default means this *is* a filesystem path there).
        self.path = self.backend.url
        self._clock = clock

    # -- schema ------------------------------------------------------------

    def schema_version(self) -> int:
        """The backend's stored schema version stamp."""
        return self.backend.schema_version()

    # -- lifecycle ---------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict[str, Any],
        *,
        max_attempts: int = 3,
        trace_id: str | None = None,
    ) -> str:
        """Persist a new queued run; returns its id.

        ``trace_id`` is the submit-time correlation id
        (:mod:`repro.obs.context`); every execution attempt of this run
        tags its spans with it — including attempts reassigned to a
        different worker after a lease expiry.
        """
        if max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {max_attempts!r}",
                code="bad-request",
            )
        run_id = uuid.uuid4().hex[:12]
        now = self._clock()
        self.backend.insert(
            RunRecord(
                run_id=run_id,
                kind=kind,
                params=params,
                state="queued",
                created_at=now,
                updated_at=now,
                attempts=0,
                max_attempts=max_attempts,
                not_before=0.0,
                error=None,
                result=None,
                trace_id=trace_id,
            )
        )
        return run_id

    def get(self, run_id: str) -> RunRecord:
        """Fetch one run; raises ``unknown-run`` if absent."""
        record = self.backend.fetch(run_id)
        if record is None:
            raise ServiceError(
                f"no run with id {run_id!r}", code="unknown-run"
            )
        return record

    def claim_next(
        self,
        now: float | None = None,
        *,
        owner_id: str | None = None,
        lease_seconds: float | None = None,
    ) -> RunRecord | None:
        """Atomically move the oldest eligible queued run to ``running``.

        Eligible means its backoff deadline (``not_before``) has passed.
        The claim bumps ``attempts``, so a claimed run already counts
        the execution about to happen.  Returns ``None`` when nothing
        is runnable right now.

        With ``owner_id`` the claim takes a *lease*: the run is stamped
        with the owner and a ``lease_expires_at`` deadline
        ``lease_seconds`` from now, which the owner must renew via
        :meth:`heartbeat` before it passes or the reaper reassigns the
        run.  Without an owner (the in-process dispatcher) the claim is
        legacy-style — no lease, covered by
        :meth:`recover_interrupted` because the claimant's lifetime is
        the server's own.
        """
        now = self._clock() if now is None else now
        lease_expires_at: float | None = None
        if owner_id is not None:
            if lease_seconds is None or lease_seconds <= 0:
                raise ServiceError(
                    f"a leased claim needs lease_seconds > 0, got "
                    f"{lease_seconds!r}",
                    code="bad-request",
                )
            lease_expires_at = now + lease_seconds
        return self.backend.claim_next(
            now, owner_id=owner_id, lease_expires_at=lease_expires_at
        )

    def heartbeat(
        self,
        run_id: str,
        owner_id: str,
        *,
        lease_seconds: float,
        now: float | None = None,
    ) -> bool:
        """Renew a live lease; ``False`` when the lease was lost.

        Extends ``lease_expires_at`` to ``lease_seconds`` past ``now``
        and stamps ``heartbeat_at``.  A ``False`` return means the run
        is no longer running under ``owner_id`` — it finished, was
        reassigned after expiry, or never belonged to this owner — and
        the worker must abandon the execution (its result would be
        discarded anyway).
        """
        now = self._clock() if now is None else now
        return self.backend.heartbeat(
            run_id, owner_id, now=now, lease_expires_at=now + lease_seconds
        )

    def next_eligible_at(self) -> float | None:
        """Earliest ``not_before`` among queued runs (backoff wake-up)."""
        return self.backend.next_eligible_at()

    def mark_done(
        self, run_id: str, result: str, *, owner_id: str | None = None
    ) -> None:
        """Record success and the serialized result envelope.

        With ``owner_id`` the write is owner-checked: it only lands if
        the caller still holds the lease, raising ``lease-lost``
        otherwise.  This is the exactly-once edge — a worker that lost
        its lease mid-execution cannot overwrite the reassigned run.
        """
        self._transition(
            run_id,
            "running",
            "done",
            result=result,
            owner_id=owner_id,
            clear_lease=True,
        )

    def mark_failed(
        self, run_id: str, error: str, *, owner_id: str | None = None
    ) -> None:
        """Record terminal failure with its error message (owner-checked)."""
        self._transition(
            run_id,
            "running",
            "failed",
            error=error,
            owner_id=owner_id,
            clear_lease=True,
        )

    def requeue_for_retry(
        self,
        run_id: str,
        error: str,
        *,
        not_before: float,
        owner_id: str | None = None,
    ) -> None:
        """Put a failed execution back in the queue with a backoff deadline."""
        self._transition(
            run_id,
            "running",
            "queued",
            error=error,
            not_before=not_before,
            owner_id=owner_id,
            clear_lease=True,
        )

    def cancel(self, run_id: str) -> RunRecord:
        """Cancel a queued run; running/terminal runs refuse."""
        record = self.get(run_id)
        if record.state != "queued":
            raise ServiceError(
                f"run {run_id!r} is {record.state}, only queued runs "
                f"can be cancelled",
                code="not-cancellable",
            )
        self._transition(run_id, "queued", "cancelled")
        return self.get(run_id)

    def recover_interrupted(self) -> int:
        """Requeue orphaned ``running`` rows on startup (crash recovery).

        Called on server startup *before* the dispatcher starts.
        Orphaned means a legacy in-process claim (its claimant was the
        dead server itself) or an already-expired lease.  A run whose
        lease is still live belongs to a healthy fleet worker and is
        left untouched — the reaper handles it if that worker later
        dies.  The interrupted attempt stays counted.  Returns the
        number of recovered runs.
        """
        return self.backend.recover_interrupted(self._clock())

    def expire_leases(self, now: float | None = None) -> list[RunRecord]:
        """Requeue runs whose lease deadline has passed (the reaper).

        Returns the expired records as they were at expiry — owner and
        lease intact — so the caller can log and count who lost which
        run.  Requeued runs keep their ``trace_id`` and attempt count,
        which is how a reassigned execution stays correlated with the
        original submission.
        """
        now = self._clock() if now is None else now
        return self.backend.expire_leases(now)

    def live_leases(self, now: float | None = None) -> list[LeaseView]:
        """Leases still live at ``now``, oldest heartbeat first."""
        now = self._clock() if now is None else now
        return self.backend.live_leases(now)

    def _transition(
        self,
        run_id: str,
        expect: str,
        state: str,
        *,
        result: str | None = None,
        error: str | None = None,
        not_before: float = 0.0,
        owner_id: str | None = None,
        clear_lease: bool = False,
    ) -> None:
        moved = self.backend.transition(
            run_id,
            expect,
            state,
            now=self._clock(),
            result=result,
            error=error,
            not_before=not_before,
            owner_id=owner_id,
            clear_lease=clear_lease,
        )
        if moved:
            return
        record = self.get(run_id)  # raises unknown-run if absent
        if record.state == expect and owner_id is not None:
            raise ServiceError(
                f"run {run_id!r} is no longer leased to {owner_id!r} "
                f"(current owner: {record.owner_id!r}); the result of "
                f"this execution is discarded",
                code="lease-lost",
            )
        raise ServiceError(
            f"run {run_id!r} is {record.state}, expected {expect} "
            f"(cannot move to {state})",
            code="bad-transition",
        )

    # -- queries -----------------------------------------------------------

    def list_runs(
        self, state: str | None = None, *, limit: int = 100
    ) -> list[RunRecord]:
        """Runs newest-first, optionally filtered by state."""
        if state is not None and state not in RUN_STATES:
            raise ServiceError(
                f"unknown state {state!r}; expected one of {RUN_STATES}",
                code="bad-request",
            )
        return self.backend.list_runs(state, limit=limit)

    def counts_by_state(self) -> dict[str, int]:
        """``{state: count}`` over every known state (zeros included)."""
        return self.backend.counts_by_state()

    def queue_depth(self) -> int:
        """Number of queued runs (including backoff waits)."""
        return self.counts_by_state()["queued"]

    def unfinished(self) -> list[RunRecord]:
        """Every run not yet in a terminal state, oldest first."""
        return self.backend.unfinished()

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying backend (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "RunStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the backend."""
        self.close()
