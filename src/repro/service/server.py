"""The campaign server — asyncio TCP front-end over store and queue.

One :class:`CampaignServer` owns the three moving parts: a
:class:`~repro.service.store.RunStore` (durable state), a
:class:`~repro.service.queue.JobQueue` (execution), and an asyncio TCP
listener speaking the NDJSON protocol of
:mod:`repro.service.protocol`.  Connections are cheap: each request
line is answered with exactly one response line, and a client may hold
the connection open for many requests.

Two hosting modes:

* :func:`CampaignServer.serve_forever` — the CLI's blocking mode, with
  SIGINT/SIGTERM triggering a graceful drain (in-flight jobs finish,
  queued jobs persist for the next start);
* :func:`serve_in_thread` — an in-process server on a background
  thread, used by the tests, the example, and the throughput benchmark.
  Its handle exposes ``stop()`` (graceful) and ``kill()`` (abandon
  in-flight work — the crash-injection path).

Worker-fleet duty: besides its own in-process queue, the server is
the fleet's **reaper**.  A periodic task (``reap_interval``) calls
:meth:`CampaignServer.reap_once`, which requeues runs whose lease a
dead ``repro-oa worker`` stopped renewing — the reassignment path
that makes a SIGKILLed worker's job land on a healthy one.  The
``health`` reply exposes the fleet state (live workers, leased jobs,
reap counters) for probes and dashboards.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Callable

from repro import obs
from repro._version import __version__
from repro.exceptions import ServiceError
from repro.faults.chaos import ChaosConfig
from repro.obs.context import mint_trace
from repro.service import protocol
from repro.service.queue import JobQueue, QueueConfig
from repro.service.store import RunStore
from repro.service.workers import job_kinds, validate_job

__all__ = ["CampaignServer", "ServerHandle", "serve_in_thread"]

_log = obs.get_logger(__name__)


class CampaignServer:
    """TCP campaign service over a run store (see module docstring).

    ``db_path`` is anything the store accepts — a SQLite path, a
    ``postgres://`` DSN, or ``memory://``
    (:func:`repro.service.backends.backend_from_url`); the name is
    historical.

    ``clock`` supplies the store's timestamps and the health report's
    uptime; injectable (default :func:`time.time`) so tests can pin
    wall-clock-derived state instead of racing real time.
    """

    def __init__(
        self,
        db_path: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_config: QueueConfig | None = None,
        chaos: "ChaosConfig | None" = None,
        clock: Callable[[], float] = time.time,
        reap_interval: float | None = 1.0,
    ) -> None:
        self.db_path = db_path
        self.host = host
        self._requested_port = port
        self.queue_config = queue_config or QueueConfig()
        self.chaos = chaos
        self._clock = clock
        #: Reaper period in seconds; ``None`` disables the periodic
        #: task (``reap_once`` stays callable — the test hook).
        self.reap_interval = reap_interval
        self.store: RunStore | None = None
        self.queue: JobQueue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._reaper: asyncio.Task | None = None
        #: Lifetime reaper counters, exposed in the health reply.
        self.lease_stats: dict[str, int] = {"expired": 0, "reassigned": 0}
        self._started_at = 0.0
        self._port: int | None = None

    @property
    def port(self) -> int:
        """The bound port (valid once started)."""
        if self._port is None:
            raise ServiceError("server is not started", code="internal")
        return self._port

    async def start(self) -> int:
        """Open the store, recover, start the queue and listener.

        Returns the bound port (useful with ``port=0``).
        """
        if self._server is not None:
            raise ServiceError("server already started", code="internal")
        self.store = RunStore(self.db_path, clock=self._clock)
        self.queue = JobQueue(self.store, self.queue_config, chaos=self.chaos)
        recovered = await self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        if self.reap_interval is not None:
            self._reaper = asyncio.create_task(self._reap_loop())
        self._started_at = self._clock()
        obs.log_event(
            _log, "service.started",
            host=self.host, port=self._port, db=self.db_path,
            recovered=recovered, workers=self.queue_config.max_workers,
            backend=self.store.backend.name,
        )
        return self._port

    async def stop(self, *, graceful: bool = True) -> None:
        """Close the listener and stop the queue; graceful finishes jobs."""
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Open client connections park in readline(); closing their
        # transports feeds them EOF so the handlers exit normally
        # (cancelling them instead trips asyncio's stream callbacks).
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        self._writers.clear()
        if self.queue is not None:
            await self.queue.stop(graceful=graceful)
            self.queue = None
        if self.store is not None:
            self.store.close()
            self.store = None
        self._port = None
        obs.log_event(_log, "service.stopped", graceful=graceful)

    async def serve_forever(self) -> None:
        """Block until SIGINT/SIGTERM, then drain gracefully (CLI mode)."""
        import signal

        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_event.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop_event.wait()
        await self.stop(graceful=True)

    # -- lease reaping ------------------------------------------------------

    async def _reap_loop(self) -> None:
        """Expire stale leases every ``reap_interval`` seconds."""
        assert self.reap_interval is not None
        while True:
            await asyncio.sleep(self.reap_interval)
            try:
                self.reap_once()
            except Exception:  # pragma: no cover - defensive
                obs.log_event(_log, "service.reap_error")

    def reap_once(self, now: float | None = None) -> int:
        """One reaper pass: requeue runs whose lease has expired.

        An expired lease means its worker stopped heartbeating — it
        was SIGKILLed, partitioned, or hung past its deadline.  The
        run goes back to ``queued`` with ``trace_id`` and attempt
        count intact, so the next claimant (another fleet worker, or
        this server's own queue) continues the same traced story.
        Returns the number of reassigned runs.  Callable directly
        with a pinned ``now`` — the deterministic test hook.
        """
        assert self.store is not None
        now = self._clock() if now is None else now
        with obs.span("service.lease", reap=True):
            expired = self.store.expire_leases(now)
            for record in expired:
                self.lease_stats["expired"] += 1
                self.lease_stats["reassigned"] += 1
                obs.inc("service.lease_expired", kind=record.kind)
                obs.inc("service.lease_reassignments", kind=record.kind)
                obs.log_event(
                    _log, "service.lease_reassigned",
                    run_id=record.run_id, kind=record.kind,
                    lost_owner=record.owner_id, attempt=record.attempts,
                )
            live = self.store.live_leases(now)
            obs.set_gauge("service.leases_live", len(live))
            if live:
                obs.set_gauge(
                    "service.lease_age_seconds",
                    max(view.age(now) for view in live),
                )
        if expired and self.queue is not None:
            self.queue.kick()
        return len(expired)

    def fleet_health(self, now: float | None = None) -> dict[str, Any]:
        """The worker-fleet section of the health reply."""
        assert self.store is not None
        now = self._clock() if now is None else now
        live = self.store.live_leases(now)
        return {
            "backend": self.store.backend.name,
            "live_workers": len({view.owner_id for view in live}),
            "leased_jobs": len(live),
            "oldest_heartbeat_age": (
                max(view.age(now) for view in live) if live else 0.0
            ),
            "leases_expired": self.lease_stats["expired"],
            "leases_reassigned": self.lease_stats["reassigned"],
        }

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        obs.inc("service.connections")
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = self._respond(line.decode("utf-8", "replace"))
                writer.write(
                    (protocol.encode_response(response) + "\n").encode()
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _respond(self, line: str) -> protocol.Response:
        """Decode, dispatch, and wrap one request line."""
        op = "?"
        try:
            request = protocol.decode_request(line)
            op = request.op
            payload = self._dispatch(request)
            obs.inc("service.requests", op=op, outcome="ok")
            return protocol.ok_response(op, payload)
        except ServiceError as exc:
            obs.inc("service.requests", op=op, outcome=exc.code)
            return protocol.error_response(op, exc)
        except Exception as exc:  # pragma: no cover - defensive
            obs.inc("service.requests", op=op, outcome="internal")
            return protocol.error_response(
                op, ServiceError(f"internal error: {exc!r}", code="internal")
            )

    # -- operations --------------------------------------------------------

    def _dispatch(self, request: protocol.Request) -> dict[str, Any]:
        assert self.store is not None and self.queue is not None
        handler = getattr(self, f"_op_{request.op}")
        return handler(request.payload)

    def _require_run_id(self, payload: dict[str, Any]) -> str:
        run_id = payload.get("run_id")
        if not isinstance(run_id, str) or not run_id:
            raise ServiceError(
                "payload must carry a non-empty 'run_id' string",
                code="bad-request",
            )
        return run_id

    def _op_submit(self, payload: dict[str, Any]) -> dict[str, Any]:
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise ServiceError(
                "submit payload must carry a 'kind' string",
                code="bad-request",
            )
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ServiceError(
                f"submit params must be an object, "
                f"got {type(params).__name__}",
                code="bad-params",
            )
        clean = validate_job(kind, params)
        max_attempts = payload.get(
            "max_attempts", self.queue_config.max_attempts
        )
        if not isinstance(max_attempts, int) or max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be a positive integer, "
                f"got {max_attempts!r}",
                code="bad-request",
            )
        trace_id = payload.get("trace_id")
        if trace_id is None:
            # Untraced client (or older protocol peer): mint here so
            # every stored run is joinable by trace_id regardless.
            trace_id = mint_trace().trace_id
        elif not isinstance(trace_id, str) or not trace_id:
            raise ServiceError(
                f"submit trace_id must be a non-empty string, "
                f"got {trace_id!r}",
                code="bad-request",
            )
        run_id = self.store.submit(
            kind, clean, max_attempts=max_attempts, trace_id=trace_id
        )
        obs.inc("service.submissions", kind=kind)
        self.queue.kick()
        return {
            "run_id": run_id,
            "state": "queued",
            "kind": kind,
            "trace_id": trace_id,
        }

    def _op_status(self, payload: dict[str, Any]) -> dict[str, Any]:
        record = self.store.get(self._require_run_id(payload))
        return record.summary()

    def _op_result(self, payload: dict[str, Any]) -> dict[str, Any]:
        record = self.store.get(self._require_run_id(payload))
        if record.state == "failed":
            raise ServiceError(
                f"run {record.run_id} failed after {record.attempts} "
                f"attempt(s): {record.error}",
                code="job-failed",
            )
        if record.state != "done" or record.result is None:
            raise ServiceError(
                f"run {record.run_id} is {record.state}; "
                f"result is only available once done",
                code="not-finished",
            )
        return {
            "run_id": record.run_id,
            "kind": record.kind,
            "result": json.loads(record.result),
        }

    def _op_list(self, payload: dict[str, Any]) -> dict[str, Any]:
        state = payload.get("state")
        if state is not None and not isinstance(state, str):
            raise ServiceError(
                f"list state filter must be a string, got {state!r}",
                code="bad-request",
            )
        limit = payload.get("limit", 100)
        if not isinstance(limit, int) or limit < 1:
            raise ServiceError(
                f"limit must be a positive integer, got {limit!r}",
                code="bad-request",
            )
        records = self.store.list_runs(state, limit=limit)
        return {"runs": [record.summary() for record in records]}

    def _op_cancel(self, payload: dict[str, Any]) -> dict[str, Any]:
        record = self.store.cancel(self._require_run_id(payload))
        obs.inc("service.cancellations")
        return record.summary()

    def _op_health(self, payload: dict[str, Any]) -> dict[str, Any]:
        counts = self.store.counts_by_state()
        return {
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_seconds": self._clock() - self._started_at,
            "workers": self.queue_config.max_workers,
            "queue_depth": counts["queued"],
            "jobs": counts,
            "kinds": [kind.name for kind in job_kinds()],
            "fleet": self.fleet_health(),
        }


class ServerHandle:
    """A server running on a background thread (tests/examples/benches)."""

    def __init__(self, thread: threading.Thread, loop, server, port: int):
        self._thread = thread
        self._loop = loop
        self._server = server
        self.port = port

    def _shutdown(self, graceful: bool) -> None:
        if not self._thread.is_alive():
            return

        async def _stop() -> None:
            await self._server.stop(graceful=graceful)

        future = asyncio.run_coroutine_threadsafe(_stop(), self._loop)
        future.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)

    def stop(self) -> None:
        """Graceful shutdown: in-flight jobs finish and are recorded."""
        self._shutdown(graceful=True)

    def kill(self) -> None:
        """Crash-style shutdown: abandon in-flight work (rows stay running)."""
        self._shutdown(graceful=False)


def serve_in_thread(
    db_path: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    queue_config: QueueConfig | None = None,
    chaos: ChaosConfig | None = None,
    clock: Callable[[], float] = time.time,
    reap_interval: float | None = 1.0,
) -> ServerHandle:
    """Start a :class:`CampaignServer` on a daemon thread; returns its handle.

    The call blocks until the listener is bound, so ``handle.port`` is
    immediately usable by a client.  ``chaos`` arms the queue with
    deterministic fault injection (the chaos-test path).
    """
    import concurrent.futures

    started: concurrent.futures.Future = concurrent.futures.Future()
    loop = asyncio.new_event_loop()
    server = CampaignServer(
        db_path, host=host, port=port, queue_config=queue_config,
        chaos=chaos, clock=clock, reap_interval=reap_interval,
    )

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _start() -> None:
            try:
                bound = await server.start()
                started.set_result(bound)
            except BaseException as exc:  # pragma: no cover - startup failure
                started.set_exception(exc)

        loop.run_until_complete(_start())
        loop.run_forever()
        # Drain cancelled callbacks after stop() so the loop closes clean.
        loop.run_until_complete(asyncio.sleep(0))
        loop.close()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    bound_port = started.result(timeout=30)
    return ServerHandle(thread, loop, server, bound_port)
