"""repro.service — the persistent campaign service.

The paper's client/MA/SeD protocol (§5, Figure 9) is a one-shot call
chain: a campaign lives and dies with the submitting interpreter.  This
subsystem turns it into a *service* — campaigns are submitted to a
long-running server, survive restarts, and are shared between users:

* :mod:`repro.service.store` — SQLite-backed run store (WAL mode,
  schema versioning): every submission, state transition, result, and
  error is durable;
* :mod:`repro.service.workers` — the registry of job kinds (campaign,
  simulate, figure sweeps, ...) and the picklable worker entry point;
* :mod:`repro.service.queue` — asyncio dispatcher over a
  ``ProcessPoolExecutor`` with per-job timeout, bounded retry with
  exponential backoff, and graceful drain;
* :mod:`repro.service.protocol` — versioned NDJSON wire protocol with
  typed error replies;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio TCP server and the blocking client.

CLI: ``repro-oa serve | submit | status | result | runs | cancel``.
See ``docs/SERVICE.md`` for the architecture and failure semantics.
"""

from __future__ import annotations

from repro.service.client import ServiceClient
from repro.service.protocol import (
    ERROR_CODES,
    OPERATIONS,
    PROTOCOL_VERSION,
    Request,
    Response,
)
from repro.service.queue import JobQueue, QueueConfig
from repro.service.server import CampaignServer, ServerHandle, serve_in_thread
from repro.service.store import RUN_STATES, SCHEMA_VERSION, RunRecord, RunStore
from repro.service.workers import (
    JobKind,
    execute_job,
    job_kinds,
    validate_job,
)

__all__ = [
    # store
    "RunStore",
    "RunRecord",
    "RUN_STATES",
    "SCHEMA_VERSION",
    # workers
    "JobKind",
    "job_kinds",
    "validate_job",
    "execute_job",
    # queue
    "JobQueue",
    "QueueConfig",
    # protocol
    "PROTOCOL_VERSION",
    "OPERATIONS",
    "ERROR_CODES",
    "Request",
    "Response",
    # server/client
    "CampaignServer",
    "ServerHandle",
    "serve_in_thread",
    "ServiceClient",
]
