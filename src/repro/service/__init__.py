"""repro.service — the persistent campaign service.

The paper's client/MA/SeD protocol (§5, Figure 9) is a one-shot call
chain: a campaign lives and dies with the submitting interpreter.  This
subsystem turns it into a *service* — campaigns are submitted to a
long-running server, survive restarts, and are shared between users:

* :mod:`repro.service.store` — the run store over pluggable storage
  backends (:mod:`repro.service.backends`: SQLite by default,
  Postgres for multi-host fleets, in-memory for tests), with schema
  versioning and leased job ownership: every submission, state
  transition, result, error, and lease is durable;
* :mod:`repro.service.workers` — the registry of job kinds (campaign,
  simulate, figure sweeps, ...) and the picklable worker entry point;
* :mod:`repro.service.queue` — asyncio dispatcher over a
  ``ProcessPoolExecutor`` with per-job timeout, bounded retry with
  exponential backoff, and graceful drain;
* :mod:`repro.service.fleet` — independent ``repro-oa worker``
  processes claiming jobs with leases, renewing via heartbeat, and
  recovering each other through the server's reaper;
* :mod:`repro.service.protocol` — versioned NDJSON wire protocol with
  typed error replies;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio TCP server (also the fleet's lease reaper) and the blocking
  client with connect/read timeouts.

CLI: ``repro-oa serve | worker | submit | status | result | runs |
cancel | health``.  See ``docs/SERVICE.md`` for the architecture and
failure semantics, ``docs/DEPLOYMENT.md`` for fleet topologies.
"""

from __future__ import annotations

from repro.service.backends import (
    MemoryBackend,
    PostgresBackend,
    SQLiteBackend,
    StorageBackend,
    backend_from_url,
)
from repro.service.client import ServiceClient
from repro.service.fleet import FleetWorker, WorkerConfig, WorkerKilled
from repro.service.protocol import (
    ERROR_CODES,
    OPERATIONS,
    PROTOCOL_VERSION,
    Request,
    Response,
)
from repro.service.queue import JobQueue, QueueConfig, full_jitter_backoff
from repro.service.server import CampaignServer, ServerHandle, serve_in_thread
from repro.service.store import (
    RUN_STATES,
    SCHEMA_VERSION,
    LeaseView,
    RunRecord,
    RunStore,
)
from repro.service.workers import (
    JobKind,
    execute_job,
    job_kinds,
    validate_job,
)

__all__ = [
    # store & backends
    "RunStore",
    "RunRecord",
    "RUN_STATES",
    "SCHEMA_VERSION",
    "LeaseView",
    "StorageBackend",
    "SQLiteBackend",
    "PostgresBackend",
    "MemoryBackend",
    "backend_from_url",
    # workers
    "JobKind",
    "job_kinds",
    "validate_job",
    "execute_job",
    # queue
    "JobQueue",
    "QueueConfig",
    "full_jitter_backoff",
    # fleet
    "FleetWorker",
    "WorkerConfig",
    "WorkerKilled",
    # protocol
    "PROTOCOL_VERSION",
    "OPERATIONS",
    "ERROR_CODES",
    "Request",
    "Response",
    # server/client
    "CampaignServer",
    "ServerHandle",
    "serve_in_thread",
    "ServiceClient",
]
