"""Baseline files — grandfathering existing findings.

Adopting a new rule on a living codebase usually surfaces findings
that are real but not worth a rushed fix.  The baseline records their
*fingerprints* so the CI gate only fails on new violations; the
grandfathered ones surface as an informational count until the code
they point at is cleaned up (at which point the stale entries are
pruned by rewriting the file).

Fingerprints are content-addressed rather than line-addressed:
``relative-path :: rule-id :: normalized-source-line :: occurrence``.
Inserting code above a grandfathered finding moves its line number but
not its fingerprint, so baselines survive unrelated edits; editing the
offending line itself invalidates the entry, which is exactly the
moment a human should re-decide.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.lintkit.framework import Finding

__all__ = [
    "BASELINE_VERSION",
    "fingerprint",
    "load_baseline",
    "partition",
    "write_baseline",
]

#: Schema stamp of the baseline JSON document.
BASELINE_VERSION = 1


def fingerprint(finding: Finding, source_line: str, occurrence: int) -> str:
    """Stable identity of one finding (see module docstring)."""
    digest = hashlib.sha256(
        "::".join(
            (
                finding.path.replace("\\", "/"),
                finding.rule_id,
                " ".join(source_line.split()),
                str(occurrence),
            )
        ).encode("utf-8")
    ).hexdigest()[:16]
    return f"{finding.rule_id}:{digest}"


def _fingerprints(findings: Sequence[Finding]) -> list[str]:
    """Fingerprints for a finding list, resolving source lines.

    Findings on identical source lines (same file, same rule, same
    text) are disambiguated by occurrence index, so two copies of the
    same sin each need their own baseline entry.
    """
    lines_cache: dict[str, list[str]] = {}
    seen: dict[tuple[str, str, str], int] = {}
    result: list[str] = []
    for finding in findings:
        if finding.path not in lines_cache:
            try:
                lines_cache[finding.path] = Path(finding.path).read_text(
                    encoding="utf-8"
                ).splitlines()
            except OSError:
                lines_cache[finding.path] = []
        lines = lines_cache[finding.path]
        text = (
            lines[finding.line - 1]
            if 0 < finding.line <= len(lines)
            else ""
        )
        key = (finding.path, finding.rule_id, " ".join(text.split()))
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        result.append(fingerprint(finding, text, occurrence))
    return result


def load_baseline(path: str | Path) -> set[str]:
    """Read the grandfathered fingerprints (empty set if absent)."""
    path = Path(path)
    if not path.is_file():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"baseline file {str(path)!r} is unreadable: {exc}"
        ) from None
    if (
        not isinstance(data, dict)
        or data.get("version") != BASELINE_VERSION
        or not isinstance(data.get("findings"), list)
    ):
        raise ConfigurationError(
            f"baseline file {str(path)!r} is not a version-"
            f"{BASELINE_VERSION} reprolint baseline"
        )
    return {str(item) for item in data["findings"]}


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> int:
    """Write the baseline for ``findings``; returns the entry count."""
    entries = sorted(set(_fingerprints(findings)))
    document = {
        "version": BASELINE_VERSION,
        "tool": "reprolint",
        "findings": entries,
    }
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def partition(
    findings: Sequence[Finding], baselined: Iterable[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, grandfathered)`` against a baseline."""
    known = set(baselined)
    fresh: list[Finding] = []
    old: list[Finding] = []
    for finding, print_ in zip(findings, _fingerprints(findings), strict=True):
        (old if print_ in known else fresh).append(finding)
    return fresh, old
