"""Determinism-taint propagation and the D004 rule.

The per-file rules D001–D003 catch a *direct* nondeterministic read.
This pass catches the indirect one: a deterministic-scope function
calling a helper that calls ``random.random()`` two modules away.  It
works in two steps:

1. **Sources.** Every function is scanned for direct nondeterminism
   reads — wall-clock calls (:data:`repro.lintkit.rules.WALLCLOCK_CALLS`,
   honoring ``wallclock-allow``), hidden-global RNG
   (:func:`repro.lintkit.rules.rng_violation`, so seeded
   ``random.Random(seed)`` stays sanctioned), ``os.environ`` /
   ``os.getenv`` reads, and unordered-set iteration inside
   ``engine-hot-paths`` modules (the only scope where iteration order
   feeds accumulation, matching D003).
2. **Propagation.** Taint flows *backwards* over the call graph to a
   fixed point: callers of tainted functions become tainted, each
   taint keeping a ``via`` pointer to the call site it arrived
   through.  Walking the ``via`` chain reconstructs the full witness
   path for the diagnostic.

Sanctioning a sink: a ``# reprolint: ignore[D004]`` pragma on a call
site stops propagation through that edge (the callee is vouched-for —
e.g. it consumes the clock read for logging only); on a source line it
removes the source.  A D001/D002 pragma does *not* implicitly sanction
D004 — vouching for the transitive contract is an explicit act.

D004 reports every tainted function whose module is in
``deterministic-packages``, anchored at the first call hop, with the
full chain in the message.  Direct (zero-hop) findings are left to
D001–D003 except for ``os.environ``, which has no per-file rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lintkit.callgraph import CallSite, callgraph_for, iter_calls
from repro.lintkit.framework import Finding, ProjectRule, register
from repro.lintkit.rules import WALLCLOCK_CALLS, _is_set_expr, rng_violation
from repro.lintkit.symbols import MODULE_FUNC, FunctionInfo, Project

__all__ = [
    "KINDS",
    "Taint",
    "TaintSource",
    "TransitiveNondeterminismRule",
    "analyze_taints",
    "render_chain",
    "taints_for",
]

#: Taint kinds, in reporting order.
KINDS: tuple[str, ...] = (
    "wall-clock", "global-rng", "environment", "set-order",
)


@dataclass(frozen=True)
class TaintSource:
    """One direct nondeterminism read: where the leak enters."""

    function: str
    kind: str
    line: int
    col: int
    #: Short human label of the read, e.g. ``time.time()``.
    detail: str


@dataclass(frozen=True)
class Taint:
    """One function's taint of one kind, with its arrival witness.

    ``via`` is ``None`` for the function containing the source itself;
    otherwise it is the call site the taint propagated through, and
    chasing ``via.callee`` through the taint map reconstructs the full
    chain down to the source.
    """

    kind: str
    source: TaintSource
    via: CallSite | None = None


def _pragma_blocks(fn: FunctionInfo, line: int) -> bool:
    """Whether a D004 pragma on ``line`` of ``fn``'s file sanctions it."""
    rules = fn.ctx.ignores.get(line)
    return bool(rules) and ("*" in rules or "D004" in rules)


def _direct_sources(project: Project, fn: FunctionInfo) -> Iterator[TaintSource]:
    """Every unsanctioned nondeterminism read inside one function."""
    config = project.config
    wallclock_ok = fn.ctx.in_package(config.wallclock_allow)
    hot_path = fn.ctx.in_package(config.engine_hot_paths)
    for call in iter_calls(fn):
        target = fn.ctx.resolve_call(call.func)
        if target is None:
            continue
        kind: str | None = None
        detail = f"{target}()"
        if target in WALLCLOCK_CALLS and not wallclock_ok:
            kind = "wall-clock"
        elif rng_violation(call, target) is not None:
            kind = "global-rng"
        elif target == "os.getenv" or target.startswith("os.environ."):
            kind = "environment"
        if kind is not None and not _pragma_blocks(fn, call.lineno):
            yield TaintSource(
                function=fn.qualname,
                kind=kind,
                line=call.lineno,
                col=call.col_offset + 1,
                detail=detail,
            )
    for node in _iter_region(fn):
        if isinstance(node, ast.Subscript):
            base = fn.ctx.resolve_call(node.value)
            if base == "os.environ" and not _pragma_blocks(
                fn, node.lineno
            ):
                yield TaintSource(
                    function=fn.qualname,
                    kind="environment",
                    line=node.lineno,
                    col=node.col_offset + 1,
                    detail="os.environ[...]",
                )
        if not hot_path:
            continue
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it) and not _pragma_blocks(fn, it.lineno):
                yield TaintSource(
                    function=fn.qualname,
                    kind="set-order",
                    line=it.lineno,
                    col=it.col_offset + 1,
                    detail="iteration over an unordered set",
                )


def _iter_region(fn: FunctionInfo) -> Iterator[ast.AST]:
    """All AST nodes belonging to ``fn`` (same region as its calls)."""
    if fn.name != MODULE_FUNC:
        yield from ast.walk(fn.node)
        return
    stack: list[ast.AST] = list(reversed(fn.node.body))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def analyze_taints(project: Project) -> dict[tuple[str, str], Taint]:
    """Fixed-point taint map: ``(function, kind) -> first witness``.

    Deterministic by construction: sources are collected in sorted
    function order, propagation is breadth-first, and the first
    witness to reach a function wins — so the reported chain is always
    the shortest (fewest hops), ties broken by qualname order.
    """
    table = project.symbols
    graph = callgraph_for(project)
    taints: dict[tuple[str, str], Taint] = {}
    queue: list[tuple[str, str]] = []
    for qualname in sorted(table.functions):
        for source in _direct_sources(project, table.functions[qualname]):
            key = (qualname, source.kind)
            if key not in taints:
                taints[key] = Taint(kind=source.kind, source=source)
                queue.append(key)
    head = 0
    while head < len(queue):
        callee, kind = queue[head]
        head += 1
        for site in graph.calls_to(callee):
            key = (site.caller, kind)
            if key in taints:
                continue
            caller = table.functions.get(site.caller)
            if caller is None or _pragma_blocks(caller, site.line):
                continue
            taints[key] = Taint(
                kind=kind, source=taints[(callee, kind)].source, via=site
            )
            queue.append(key)
    return taints


def taints_for(project: Project) -> dict[tuple[str, str], Taint]:
    """The project's taint map, built once and cached."""
    taints = project.cache.get("taints")
    if not isinstance(taints, dict):
        taints = analyze_taints(project)
        project.cache["taints"] = taints
    return taints


def render_chain(
    project: Project,
    qualname: str,
    taint: Taint,
    taints: dict[tuple[str, str], Taint],
) -> str:
    """The witness path as ``a (f:1) -> b (g:2) -> c (h:3: detail)``."""
    table = project.symbols
    hops: list[str] = []
    current, t = qualname, taint
    for _ in range(len(taints) + 1):
        fn = table.functions[current]
        if t.via is None:
            hops.append(
                f"{current} ({fn.ctx.display_path}:{t.source.line}: "
                f"{t.source.detail})"
            )
            break
        hops.append(f"{current} ({fn.ctx.display_path}:{t.via.line})")
        current = t.via.callee
        t = taints[(current, t.kind)]
    return " -> ".join(hops)


@register
class TransitiveNondeterminismRule(ProjectRule):
    """D004: no nondeterminism reachable from deterministic scope."""

    id = "D004"
    name = "transitive-nondeterminism"
    description = (
        "a deterministic-scope function transitively reaches a "
        "wall-clock/RNG/environ/set-order read; full call chain in "
        "the message"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        config = project.config
        taints = taints_for(project)
        for qualname, kind in sorted(
            taints, key=lambda k: (k[0], KINDS.index(k[1]))
        ):
            fn = project.symbols.functions[qualname]
            if not fn.ctx.in_package(config.deterministic_packages):
                continue
            if kind == "wall-clock" and fn.ctx.in_package(
                config.wallclock_allow
            ):
                continue
            taint = taints[(qualname, kind)]
            if taint.via is None:
                # Zero-hop reads are D001/D002/D003 territory; only
                # the environment kind has no per-file rule.
                if kind != "environment":
                    continue
                line, col = taint.source.line, taint.source.col
            else:
                line, col = taint.via.line, taint.via.col
            chain = render_chain(project, qualname, taint, taints)
            yield Finding(
                rule_id=self.id,
                path=fn.ctx.display_path,
                line=line,
                col=col,
                message=(
                    f"{kind} nondeterminism reaches deterministic-scope "
                    f"`{qualname}`: {chain}"
                ),
            )
