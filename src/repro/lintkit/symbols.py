"""Project-wide symbol table for the interprocedural rules.

Per-file rules resolve a call target through that file's import
aliases and stop there.  The whole-program pass needs one step more:
``repro.core.plan_grouping`` must resolve to the *definition* it names
even when the name is a re-export (``repro/core/__init__.py`` doing
``from repro.core.heuristics import plan_grouping``), and
``self.schedule(...)`` must resolve through the class hierarchy.  This
module builds that table once per lint run:

* :class:`FunctionInfo` — one module-level function or method, plus a
  ``<module>`` pseudo-function per file capturing top-level calls;
* :class:`ClassInfo` — one class with its base refs, method map, and
  the annotated types of its attributes (for ``self.backend.claim()``
  -style dispatch);
* :class:`SymbolTable` — lookup with re-export chasing and MRO walks;
* :class:`Project` — the table plus every parsed
  :class:`~repro.lintkit.framework.FileContext` and a cache shared by
  the call-graph and taint passes.

Only names *defined inside the checked file set* resolve; calls into
the stdlib or third-party code resolve to ``None`` and terminate call
chains, which keeps the analysis conservative and fast.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.lintkit.config import LintConfig
from repro.lintkit.framework import FileContext

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "MODULE_FUNC",
    "Project",
    "SymbolTable",
    "annotation_refs",
    "build_project",
]

#: Name of the per-module pseudo-function holding top-level calls.
MODULE_FUNC = "<module>"

#: How many re-export hops :meth:`SymbolTable.resolve` will chase.
_MAX_HOPS = 8

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]


@dataclass(frozen=True, eq=False)
class FunctionInfo:
    """One function-like definition the call graph can stand on."""

    #: Fully-qualified name: ``pkg.mod.func``, ``pkg.mod.Cls.meth``,
    #: or ``pkg.mod.<module>`` for top-level code.
    qualname: str
    #: Dotted module the definition lives in.
    module: str
    #: Bare name (``func``, ``meth``, or ``<module>``).
    name: str
    #: Qualname of the owning class, or ``None`` for plain functions.
    cls: str | None
    #: The definition's AST (the whole module for ``<module>``).
    node: FunctionNode
    #: The file the definition was parsed from.
    ctx: FileContext
    #: Parameter name -> candidate annotated type refs (alias-expanded
    #: dotted paths, unresolved — resolve through the table at use).
    param_types: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def anchor_line(self) -> int:
        """Line the definition starts on (1 for ``<module>``)."""
        return getattr(self.node, "lineno", 1)


@dataclass(frozen=True, eq=False)
class ClassInfo:
    """One class definition with enough shape for method dispatch."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Alias-expanded dotted refs of the listed bases, in order.
    bases: tuple[str, ...]
    #: Method name -> method qualname (this class only, no MRO).
    methods: dict[str, str] = field(default_factory=dict)
    #: Attribute name -> candidate annotated type refs, from class-body
    #: ``AnnAssign`` and ``self.x = param`` over annotated ``__init__``
    #: parameters.
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    ctx: FileContext | None = None


def annotation_refs(ctx: FileContext, node: ast.expr | None) -> tuple[str, ...]:
    """Candidate dotted type refs named by an annotation expression.

    Handles the shapes the codebase actually writes: bare names,
    dotted attributes, string annotations, ``X | None`` unions, and
    ``Optional[X]`` subscripts.  Unrecognized shapes contribute
    nothing — an unannotated or exotic parameter simply cannot
    dispatch, which errs on the quiet side.
    """
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return ()
        return annotation_refs(ctx, parsed.body)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return annotation_refs(ctx, node.left) + annotation_refs(
            ctx, node.right
        )
    if isinstance(node, ast.Subscript):
        target = ctx.resolve_call(node.value)
        if target is not None and target.rsplit(".", 1)[-1] == "Optional":
            return annotation_refs(ctx, node.slice)
        return ()
    if isinstance(node, (ast.Name, ast.Attribute)):
        ref = ctx.resolve_call(node)
        if ref is None or ref == "None":
            return ()
        return (ref,)
    return ()


class SymbolTable:
    """Lookup over every definition in the checked file set."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Dotted module name -> its parsed file.
        self.modules: dict[str, FileContext] = {}

    # -- construction ------------------------------------------------------

    def add_module(self, ctx: FileContext) -> None:
        """Index one parsed file: functions, classes, ``<module>``."""
        self.modules[ctx.module] = ctx
        self.functions[f"{ctx.module}.{MODULE_FUNC}"] = FunctionInfo(
            qualname=f"{ctx.module}.{MODULE_FUNC}",
            module=ctx.module,
            name=MODULE_FUNC,
            cls=None,
            node=ctx.tree,
            ctx=ctx,
        )
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(ctx, stmt)

    def _add_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        cls: str | None,
    ) -> FunctionInfo:
        owner = cls if cls is not None else ctx.module
        qualname = f"{owner}.{node.name}"
        params: dict[str, tuple[str, ...]] = {}
        args = node.args
        for arg in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ]:
            refs = annotation_refs(ctx, arg.annotation)
            if refs:
                params[arg.arg] = refs
        info = FunctionInfo(
            qualname=qualname,
            module=ctx.module,
            name=node.name,
            cls=cls,
            node=node,
            ctx=ctx,
            param_types=params,
        )
        self.functions[qualname] = info
        return info

    def _add_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        qualname = f"{ctx.module}.{node.name}"
        bases = tuple(
            ref
            for base in node.bases
            for ref in [ctx.resolve_call(base)]
            if ref is not None
        )
        methods: dict[str, str] = {}
        attr_types: dict[str, tuple[str, ...]] = {}
        init: ast.FunctionDef | ast.AsyncFunctionDef | None = None
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._add_function(ctx, stmt, cls=qualname)
                methods[stmt.name] = info.qualname
                if stmt.name == "__init__":
                    init = stmt
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                refs = annotation_refs(ctx, stmt.annotation)
                if refs:
                    attr_types[stmt.target.id] = refs
        if init is not None:
            self._init_attr_types(ctx, qualname, init, attr_types)
        self.classes[qualname] = ClassInfo(
            qualname=qualname,
            module=ctx.module,
            name=node.name,
            node=node,
            bases=bases,
            methods=methods,
            attr_types=attr_types,
            ctx=ctx,
        )

    def _init_attr_types(
        self,
        ctx: FileContext,
        cls_qualname: str,
        init: ast.FunctionDef | ast.AsyncFunctionDef,
        attr_types: dict[str, tuple[str, ...]],
    ) -> None:
        """Record ``self.x = param`` types from an annotated ``__init__``."""
        init_info = self.functions.get(f"{cls_qualname}.__init__")
        params = init_info.param_types if init_info is not None else {}
        for stmt in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                refs = annotation_refs(ctx, stmt.annotation)
                if (
                    refs
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr_types.setdefault(target.attr, refs)
                continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Name)
            ):
                continue
            refs = params.get(value.id, ())
            if refs:
                attr_types.setdefault(target.attr, refs)

    # -- lookup ------------------------------------------------------------

    def resolve(
        self, dotted: str | None
    ) -> FunctionInfo | ClassInfo | None:
        """Resolve a dotted ref to its definition, chasing re-exports.

        ``repro.core.plan_grouping`` resolves through the package
        ``__init__``'s ``from ... import`` alias map to the real
        ``repro.core.heuristics.plan_grouping`` definition.  Method
        refs (``pkg.mod.Cls.meth``) resolve through the class's MRO.
        Anything outside the checked file set returns ``None``.
        """
        for _ in range(_MAX_HOPS):
            if dotted is None:
                return None
            hit = self.functions.get(dotted) or self.classes.get(dotted)
            if hit is not None:
                return hit
            dotted = self._chase(dotted)
        return None

    def _chase(self, dotted: str) -> str | None:
        """One resolution hop: alias maps, then class-member lookup."""
        module, remainder = self._split_module(dotted)
        if module is None or not remainder:
            return None
        ctx = self.modules[module]
        head, *rest = remainder
        target = ctx.aliases.get(head)
        if target is not None:
            candidate = ".".join([target, *rest])
            if candidate != dotted:
                return candidate
        cls = self.classes.get(f"{module}.{head}")
        if cls is not None and len(rest) == 1:
            method = self.method_on(cls.qualname, rest[0])
            if method is not None:
                return method.qualname
        return None

    def _split_module(
        self, dotted: str
    ) -> tuple[str | None, list[str]]:
        """Longest known-module prefix of ``dotted`` plus the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, parts[cut:]
        return None, parts

    def mro(self, cls_qualname: str) -> Iterator[ClassInfo]:
        """Project-internal classes in BFS base order from ``cls``."""
        seen: set[str] = set()
        queue = [cls_qualname]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is None:
                resolved = self.resolve(name)
                cls = resolved if isinstance(resolved, ClassInfo) else None
            if cls is None:
                continue
            yield cls
            queue.extend(cls.bases)

    def method_on(
        self, cls_qualname: str, method: str
    ) -> FunctionInfo | None:
        """Resolve ``cls.method`` through the project-internal MRO."""
        for cls in self.mro(cls_qualname):
            qualname = cls.methods.get(method)
            if qualname is not None:
                return self.functions.get(qualname)
        return None

    def implementations_of(self, abc_qualname: str) -> list[ClassInfo]:
        """Every class whose base chain reaches ``abc_qualname``."""
        hits: list[ClassInfo] = []
        for qualname in sorted(self.classes):
            if qualname == abc_qualname:
                continue
            for base in self.mro(qualname):
                if base.qualname == abc_qualname:
                    hits.append(self.classes[qualname])
                    break
        return hits


@dataclass(eq=False)
class Project:
    """Everything the project-scope rules see: files, symbols, cache."""

    config: LintConfig
    #: Dotted module name -> parsed file, for every checked file.
    contexts: dict[str, FileContext]
    symbols: SymbolTable
    #: Shared memo for the call-graph and taint passes (keyed by pass).
    cache: dict[str, object] = field(default_factory=dict)

    def sorted_contexts(self) -> list[FileContext]:
        """The parsed files in deterministic module order."""
        return [self.contexts[m] for m in sorted(self.contexts)]


def build_project(
    contexts: list[FileContext], config: LintConfig
) -> Project:
    """Index every parsed file into one :class:`Project`."""
    table = SymbolTable()
    by_module: dict[str, FileContext] = {}
    for ctx in sorted(contexts, key=lambda c: c.module):
        if ctx.module in by_module:
            continue
        by_module[ctx.module] = ctx
        table.add_module(ctx)
    return Project(config=config, contexts=by_module, symbols=table)
