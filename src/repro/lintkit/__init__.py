"""repro.lintkit — the determinism & invariant checker (``reprolint``).

A self-contained AST lint framework plus a rule pack encoding this
repository's real invariants.  The headline guarantee of the repo —
bit-for-bit reproducibility of sweeps, fault traces, and campaign
recovery — rests on discipline that runtime tests can only sample:
nothing *stops* a future change from reading the wall clock inside the
simulation engine or minting a metric name the registry never declared.
``reprolint`` machine-checks that discipline before the tests run.

Layers:

* :mod:`repro.lintkit.framework` — rule registry, per-file AST visitor
  driver, ``# reprolint: ignore[RULE]`` pragmas;
* :mod:`repro.lintkit.config` — ``[tool.reprolint]`` in ``pyproject.toml``
  (deterministic packages, allowlists, per-rule severity);
* :mod:`repro.lintkit.rules` — the shipped rule pack (D001/D002/D003,
  M001, P001, A001);
* :mod:`repro.lintkit.baseline` — grandfathered-finding fingerprints;
* :mod:`repro.lintkit.reporters` — human-readable and JSON output.

Run it as ``repro-oa lint`` or ``python -m repro.lintkit src/repro``;
the CI gate fails on any non-baselined error-severity finding.
"""

from __future__ import annotations

from repro.lintkit.baseline import (
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lintkit.config import LintConfig, load_config
from repro.lintkit.framework import (
    Checker,
    FileContext,
    Finding,
    Rule,
    all_rules,
    get_rule,
    register,
)
from repro.lintkit.reporters import render_json, render_text

# Importing the rule pack populates the registry as a side effect.
from repro.lintkit import rules as _rules  # noqa: F401

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "LintConfig",
    "Rule",
    "all_rules",
    "fingerprint",
    "get_rule",
    "load_baseline",
    "load_config",
    "register",
    "render_json",
    "render_text",
    "write_baseline",
]
