"""repro.lintkit — the determinism & invariant checker (``reprolint``).

A self-contained AST lint framework plus a rule pack encoding this
repository's real invariants.  The headline guarantee of the repo —
bit-for-bit reproducibility of sweeps, fault traces, and campaign
recovery — rests on discipline that runtime tests can only sample:
nothing *stops* a future change from reading the wall clock inside the
simulation engine or minting a metric name the registry never declared.
``reprolint`` machine-checks that discipline before the tests run.

Layers:

* :mod:`repro.lintkit.framework` — rule registry, per-file AST visitor
  driver, project-rule driver, ``# reprolint: ignore[RULE]`` pragmas;
* :mod:`repro.lintkit.config` — ``[tool.reprolint]`` in ``pyproject.toml``
  (deterministic packages, allowlists, layer contracts, per-rule
  severity);
* :mod:`repro.lintkit.rules` — the per-file rule pack (D001/D002/D003,
  M001, P001, A001) plus the M002 dead-name project rule;
* :mod:`repro.lintkit.symbols` — project-wide symbol table over the
  checked file set (re-export chasing, MRO, annotated types);
* :mod:`repro.lintkit.callgraph` — static call graph, conservative on
  dynamic dispatch via the ``dispatch-abcs`` registry;
* :mod:`repro.lintkit.taint` — fixed-point nondeterminism-taint
  propagation and the D004 transitive rule;
* :mod:`repro.lintkit.layers` — architecture contracts (L001) and
  import-cycle detection (L002);
* :mod:`repro.lintkit.baseline` — grandfathered-finding fingerprints;
* :mod:`repro.lintkit.reporters` — human-readable and JSON output.

Run it as ``repro-oa lint`` or ``python -m repro.lintkit src/repro``;
the CI gate fails on any non-baselined error-severity finding.
"""

from __future__ import annotations

from repro.lintkit.baseline import (
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lintkit.config import LayerContract, LintConfig, load_config
from repro.lintkit.framework import (
    Checker,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
)
from repro.lintkit.reporters import render_json, render_text
from repro.lintkit.symbols import Project, SymbolTable, build_project

# Importing the rule packs populates the registry as a side effect.
from repro.lintkit import rules as _rules  # noqa: F401
from repro.lintkit import layers as _layers  # noqa: F401
from repro.lintkit import taint as _taint  # noqa: F401

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "LayerContract",
    "LintConfig",
    "Project",
    "ProjectRule",
    "Rule",
    "SymbolTable",
    "all_rules",
    "build_project",
    "fingerprint",
    "get_rule",
    "load_baseline",
    "load_config",
    "register",
    "render_json",
    "render_text",
    "write_baseline",
]
