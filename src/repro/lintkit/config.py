"""``[tool.reprolint]`` configuration loading.

The checker is configured from ``pyproject.toml`` so the invariants
live next to the build metadata::

    [tool.reprolint]
    deterministic-packages = ["repro.core", "repro.simulation", ...]
    wallclock-allow = ["repro.service.queue"]
    engine-hot-paths = ["repro.simulation.engine", ...]
    async-packages = ["repro.service"]
    dispatch-abcs = ["repro.schedulers.base.Scheduler", ...]
    names-module = "repro.obs.names"
    baseline = ".reprolint-baseline.json"
    disable = []

    [tool.reprolint.severity]
    D003 = "warning"

    [tool.reprolint.layers.deterministic-core]
    modules = ["repro.core", "repro.simulation"]
    forbid = ["repro.service", "repro.obs"]
    allow = ["repro.obs"]

Layer-contract names become part of the L001 diagnostics; keep them
dot-free so the 3.10 fallback parser (which splits section headers on
``.``) reads them identically to ``tomllib``.

``tomllib`` ships with Python 3.11+; on 3.10 (which this repo still
supports and CI exercises) a minimal fallback parser handles exactly
the subset the table above uses — string values, arrays of strings,
and nested ``[tool.reprolint.*]`` tables.  No third-party TOML
dependency is pulled in either way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "DEFAULTS",
    "LayerContract",
    "LintConfig",
    "find_pyproject",
    "load_config",
]

#: Built-in defaults mirroring this repository's layout; external
#: projects override them wholesale from their own pyproject.
DEFAULTS: dict[str, object] = {
    "deterministic-packages": [
        "repro.core",
        "repro.simulation",
        "repro.faults",
        "repro.experiments.sweep",
        "repro.service",
    ],
    "wallclock-allow": [],
    "engine-hot-paths": [
        "repro.core",
        "repro.simulation.engine",
        "repro.simulation.dag_engine",
    ],
    "async-packages": ["repro.service"],
    "dispatch-abcs": [
        "repro.schedulers.base.Scheduler",
        "repro.service.backends.base.StorageBackend",
    ],
    "names-module": "repro.obs.names",
    "baseline": ".reprolint-baseline.json",
}


@dataclass(frozen=True)
class LayerContract:
    """One ``[tool.reprolint.layers.<name>]`` architecture contract.

    Modules matching any prefix in ``modules`` must not import modules
    matching any prefix in ``forbid`` at module level, except exact
    modules listed in ``allow`` (the escape hatch for a sanctioned
    facade such as ``repro.obs``).
    """

    name: str
    modules: tuple[str, ...]
    forbid: tuple[str, ...]
    allow: tuple[str, ...] = ()

    def covers(self, module: str) -> bool:
        """Whether this contract constrains ``module``."""
        return any(
            module == p or module.startswith(p + ".")
            for p in self.modules
        )

    def forbids(self, imported: str) -> bool:
        """Whether importing ``imported`` violates this contract."""
        if imported in self.allow:
            return False
        return any(
            imported == p or imported.startswith(p + ".")
            for p in self.forbid
        )


@dataclass(frozen=True)
class LintConfig:
    """Resolved checker configuration (see module docstring)."""

    #: Packages whose modules must stay wall-clock- and global-RNG-free.
    deterministic_packages: tuple[str, ...] = tuple(
        DEFAULTS["deterministic-packages"]  # type: ignore[arg-type]
    )
    #: Modules inside deterministic packages that may read the clock.
    wallclock_allow: tuple[str, ...] = ()
    #: Modules where unordered-set iteration is a finding (D003).
    engine_hot_paths: tuple[str, ...] = tuple(
        DEFAULTS["engine-hot-paths"]  # type: ignore[arg-type]
    )
    #: Packages whose ``async def`` bodies must not block (A001).
    async_packages: tuple[str, ...] = tuple(
        DEFAULTS["async-packages"]  # type: ignore[arg-type]
    )
    #: ABC qualnames whose method calls fan out to every registered
    #: implementation in the call graph (conservative dynamic dispatch).
    dispatch_abcs: tuple[str, ...] = tuple(
        DEFAULTS["dispatch-abcs"]  # type: ignore[arg-type]
    )
    #: Module declaring METRIC_NAMES/SPAN_NAMES (M001/M002 registry).
    names_module: str = str(DEFAULTS["names-module"])
    #: Architecture contracts enforced by L001.
    layers: tuple[LayerContract, ...] = ()
    #: Baseline path, relative to the config file's directory.
    baseline: str = str(DEFAULTS["baseline"])
    #: Rule ids disabled outright.
    disabled_rules: tuple[str, ...] = ()
    #: Per-rule severity overrides.
    severity: dict[str, str] = field(default_factory=dict)
    #: Directory the config was loaded from (resolves the baseline).
    root: Path = field(default_factory=Path.cwd)

    def severity_for(self, rule_id: str, default: str) -> str:
        """Effective severity of one rule."""
        return self.severity.get(rule_id, default)

    def baseline_path(self) -> Path:
        """The baseline file, anchored at the config root."""
        path = Path(self.baseline)
        return path if path.is_absolute() else self.root / path


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in [node, *node.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: str | Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from a ``pyproject.toml``.

    ``pyproject`` may be a file path or ``None`` (search upward from
    the working directory).  A missing file or missing
    ``[tool.reprolint]`` table yields the built-in defaults.
    """
    path = (
        Path(pyproject)
        if pyproject is not None
        else find_pyproject(Path.cwd())
    )
    if path is None or not path.is_file():
        return LintConfig()
    table = _reprolint_table(path.read_text(encoding="utf-8"))
    severity_table = table.get("severity", {})
    severity = (
        {str(k): str(v) for k, v in severity_table.items()}
        if isinstance(severity_table, dict)
        else {}
    )
    return LintConfig(
        deterministic_packages=_strings(
            table, "deterministic-packages",
            DEFAULTS["deterministic-packages"],  # type: ignore[arg-type]
        ),
        wallclock_allow=_strings(table, "wallclock-allow", []),
        engine_hot_paths=_strings(
            table, "engine-hot-paths",
            DEFAULTS["engine-hot-paths"],  # type: ignore[arg-type]
        ),
        async_packages=_strings(
            table, "async-packages",
            DEFAULTS["async-packages"],  # type: ignore[arg-type]
        ),
        dispatch_abcs=_strings(
            table, "dispatch-abcs",
            DEFAULTS["dispatch-abcs"],  # type: ignore[arg-type]
        ),
        names_module=str(
            table.get("names-module", DEFAULTS["names-module"])
        ),
        layers=_layer_contracts(table.get("layers", {})),
        baseline=str(table.get("baseline", DEFAULTS["baseline"])),
        disabled_rules=_strings(table, "disable", []),
        severity=severity,
        root=path.parent,
    )


def _layer_contracts(raw: object) -> tuple[LayerContract, ...]:
    """``[tool.reprolint.layers.*]`` sections as frozen contracts.

    Malformed entries (non-table values, missing ``modules``/``forbid``)
    are dropped rather than raised on — lint configuration must never
    crash the checker on a foreign pyproject.
    """
    if not isinstance(raw, dict):
        return ()
    contracts: list[LayerContract] = []
    for name in sorted(raw):
        body = raw[name]
        if not isinstance(body, dict):
            continue
        modules = _strings(body, "modules", [])
        forbid = _strings(body, "forbid", [])
        if not modules or not forbid:
            continue
        contracts.append(
            LayerContract(
                name=str(name),
                modules=modules,
                forbid=forbid,
                allow=_strings(body, "allow", []),
            )
        )
    return tuple(contracts)


def _strings(
    table: dict[str, object], key: str, default: list[str]
) -> tuple[str, ...]:
    value = table.get(key, default)
    if not isinstance(value, list):
        return tuple(default)
    return tuple(str(item) for item in value)


def _reprolint_table(text: str) -> dict[str, object]:
    """The ``[tool.reprolint]`` table (nested tables folded in)."""
    if tomllib is not None:
        data = tomllib.loads(text)
    else:  # pragma: no cover - Python 3.10 fallback
        data = _parse_minimal_toml(text)
    tool = data.get("tool", {})
    if not isinstance(tool, dict):
        return {}
    table = tool.get("reprolint", {})
    return table if isinstance(table, dict) else {}


# -- 3.10 fallback parser ---------------------------------------------------

_SECTION = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEYVAL = re.compile(r"^(?P<key>[\w.-]+)\s*=\s*(?P<value>.+)$")


def _parse_minimal_toml(text: str) -> dict[str, object]:
    """Parse the tiny TOML subset ``[tool.reprolint]`` actually uses.

    Supports ``[dotted.section]`` headers, string values, numbers,
    booleans, and single-line arrays of strings.  Good enough for the
    reprolint table; anything fancier should run on 3.11+ where the
    stdlib parser takes over.
    """
    root: dict[str, object] = {}
    current = root
    pending = ""
    for raw in text.splitlines():
        line = raw.strip()
        if pending:
            line = pending + " " + line
            pending = ""
        if not line or line.startswith("#"):
            continue
        section = _SECTION.match(line)
        if section:
            current = root
            for part in section.group("name").strip().split("."):
                part = part.strip().strip('"').strip("'")
                current = current.setdefault(part, {})  # type: ignore[assignment]
            continue
        # Multi-line arrays: accumulate until brackets balance.
        if line.count("[") > line.count("]"):
            pending = line
            continue
        keyval = _KEYVAL.match(line)
        if not keyval:
            continue
        current[keyval.group("key").strip('"').strip("'")] = _parse_value(
            keyval.group("value").strip()
        )
    return root


def _parse_value(value: str) -> object:
    value = value.split("#")[0].strip() if not value.startswith(
        ("'", '"', "[")
    ) else value
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_value(item.strip())
            for item in _split_array(inner)
        ]
    if value.startswith(("'", '"')) and value.endswith(value[0]):
        return value[1:-1]
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        try:
            return float(value)
        except ValueError:
            return value


def _split_array(inner: str) -> list[str]:
    """Split a flat array body on commas outside quotes."""
    parts: list[str] = []
    buf: list[str] = []
    quote: str | None = None
    for ch in inner:
        if quote is not None:
            buf.append(ch)
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
            buf.append(ch)
        elif ch == ",":
            parts.append("".join(buf).strip())
            buf = []
        else:
            buf.append(ch)
    tail = "".join(buf).strip()
    if tail:
        parts.append(tail)
    return parts
