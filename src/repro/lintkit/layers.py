"""Architecture-layer contracts (L001) and import-cycle detection (L002).

Contracts are declared next to the build metadata::

    [tool.reprolint.layers.deterministic-core]
    modules = ["repro.core", "repro.simulation", "repro.knapsack"]
    forbid  = ["repro.service", "repro.obs"]
    allow   = ["repro.obs"]          # the facade module, exactly

``modules``/``forbid`` are dotted prefixes; ``allow`` lists *exact*
modules exempt from ``forbid`` — the sanctioned facade pattern
(``from repro import obs`` is fine, ``from repro.obs.metrics import
...`` is not).

Only **module-level** imports count.  A lazy import inside a function
body is the sanctioned way to cross a layer for a leaf feature, and
``if TYPE_CHECKING:`` blocks are skipped outright — the repo uses them
deliberately as cycle guards, and they cost nothing at runtime.

Import targets are canonicalized against the checked file set:
``from repro import obs`` resolves to the project module ``repro.obs``
(not the package hub ``repro``), and ``from repro.lintkit import
baseline`` to ``repro.lintkit.baseline`` — so L002's cycle detection
sees real module-to-module edges instead of false cycles through
package ``__init__`` re-export hubs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lintkit.framework import FileContext, Finding, ProjectRule, register
from repro.lintkit.symbols import Project

__all__ = [
    "ImportCycleRule",
    "LayerContractRule",
    "ModuleImport",
    "module_imports",
]


@dataclass(frozen=True)
class ModuleImport:
    """One module-level import edge, canonicalized and anchored."""

    module: str
    line: int
    col: int


def _is_type_checking(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``TYPE_CHECKING`` guard."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _module_level_imports(
    tree: ast.Module,
) -> Iterator[ast.Import | ast.ImportFrom]:
    """Import statements that execute at import time.

    Recurses into ``if``/``try``/``with`` at module level (conditional
    imports still run at import time) but not into function or class
    bodies, and skips ``if TYPE_CHECKING:`` bodies entirely.
    """
    stack: list[ast.stmt] = list(reversed(tree.body))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt
        elif isinstance(stmt, ast.If):
            if not _is_type_checking(stmt.test):
                stack.extend(reversed(stmt.body))
            stack.extend(reversed(stmt.orelse))
        elif isinstance(stmt, ast.Try):
            stack.extend(reversed(stmt.finalbody))
            stack.extend(reversed(stmt.orelse))
            for handler in reversed(stmt.handlers):
                stack.extend(reversed(handler.body))
            stack.extend(reversed(stmt.body))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            stack.extend(reversed(stmt.body))


def _relative_base(ctx: FileContext, level: int) -> str | None:
    """Absolute package a ``level``-dot relative import anchors at."""
    parts = ctx.module.split(".")
    if ctx.path.name != "__init__.py":
        parts = parts[:-1]
    up = level - 1
    if up > len(parts):
        return None
    if up:
        parts = parts[:-up]
    return ".".join(parts) or None


def module_imports(
    ctx: FileContext, project_modules: set[str]
) -> list[ModuleImport]:
    """Canonical module-level import edges of one file, in order."""
    edges: list[ModuleImport] = []
    for stmt in _module_level_imports(ctx.tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                edges.append(
                    ModuleImport(
                        module=alias.name,
                        line=stmt.lineno,
                        col=stmt.col_offset + 1,
                    )
                )
            continue
        base = stmt.module
        if stmt.level:
            anchor = _relative_base(ctx, stmt.level)
            if anchor is None:
                continue
            base = f"{anchor}.{stmt.module}" if stmt.module else anchor
        if base is None:
            continue
        for alias in stmt.names:
            candidate = f"{base}.{alias.name}"
            target = candidate if candidate in project_modules else base
            edges.append(
                ModuleImport(
                    module=target,
                    line=stmt.lineno,
                    col=stmt.col_offset + 1,
                )
            )
    return edges


def _project_imports(project: Project) -> dict[str, list[ModuleImport]]:
    """Per-module canonical import lists, built once and cached."""
    cached = project.cache.get("imports")
    if isinstance(cached, dict):
        return cached
    modules = set(project.contexts)
    imports = {
        ctx.module: module_imports(ctx, modules)
        for ctx in project.sorted_contexts()
    }
    project.cache["imports"] = imports
    return imports


@register
class LayerContractRule(ProjectRule):
    """L001: module-level imports must respect the declared layers."""

    id = "L001"
    name = "layer-contract"
    description = (
        "a module imported across a [tool.reprolint.layers] boundary; "
        "use the sanctioned facade or a lazy function-level import"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        imports = _project_imports(project)
        for contract in project.config.layers:
            for ctx in project.sorted_contexts():
                if not contract.covers(ctx.module):
                    continue
                for imp in imports[ctx.module]:
                    if not contract.forbids(imp.module):
                        continue
                    yield Finding(
                        rule_id=self.id,
                        path=ctx.display_path,
                        line=imp.line,
                        col=imp.col,
                        message=(
                            f"layer contract `{contract.name}` forbids "
                            f"{ctx.module} -> {imp.module}; import it "
                            f"lazily inside the function that needs it, "
                            f"or add an exact module to the contract's "
                            f"`allow` list"
                        ),
                    )


def _strongly_connected(
    nodes: list[str], edges: dict[str, list[str]]
) -> list[list[str]]:
    """Tarjan's SCC, iterative, deterministic in node/edge order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_i = work.pop()
            if edge_i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            descended = False
            succs = edges.get(node, [])
            for j in range(edge_i, len(succs)):
                succ = succs[j]
                if succ not in index:
                    work.append((node, j + 1))
                    work.append((succ, 0))
                    descended = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if descended:
                continue
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _shortest_cycle(
    start: str, members: set[str], edges: dict[str, list[str]]
) -> list[str]:
    """BFS a shortest ``start -> ... -> start`` path inside one SCC."""
    prev: dict[str, str] = {}
    queue = [start]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        for succ in edges.get(node, []):
            if succ not in members:
                continue
            if succ == start:
                path = [start]
                tail: list[str] = []
                current = node
                while current != start:
                    tail.append(current)
                    current = prev[current]
                path.extend(reversed(tail))
                path.append(start)
                return path
            if succ not in prev:
                prev[succ] = node
                queue.append(succ)
    return [start, start]


@register
class ImportCycleRule(ProjectRule):
    """L002: no cycles in the intra-package import graph."""

    id = "L002"
    name = "import-cycle"
    description = (
        "a module-level import cycle inside the checked package; "
        "break it with a lazy import or an interface module"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        imports = _project_imports(project)
        nodes = sorted(project.contexts)
        edges: dict[str, list[str]] = {}
        for module in nodes:
            seen: set[str] = set()
            for imp in imports[module]:
                target = imp.module
                if (
                    target in project.contexts
                    and target != module
                    and target not in seen
                ):
                    seen.add(target)
                    edges.setdefault(module, []).append(target)
        for scc in _strongly_connected(nodes, edges):
            if len(scc) < 2:
                continue
            members = set(scc)
            anchor_module = min(scc)
            cycle = _shortest_cycle(anchor_module, members, edges)
            ctx = project.contexts[anchor_module]
            anchor = next(
                (
                    imp
                    for imp in imports[anchor_module]
                    if imp.module == cycle[1]
                ),
                None,
            )
            line = anchor.line if anchor is not None else 1
            col = anchor.col if anchor is not None else 1
            yield Finding(
                rule_id=self.id,
                path=ctx.display_path,
                line=line,
                col=col,
                message=(
                    "module-level import cycle: "
                    + " -> ".join(cycle)
                    + "; break it with a lazy (function-level) import "
                    + "or by extracting the shared interface"
                ),
            )
