"""The lint framework: findings, rules, pragmas, and the file driver.

A :class:`Rule` inspects one parsed file (:class:`FileContext`) and
yields :class:`Finding` objects.  A :class:`ProjectRule` instead
inspects the *whole program* at once — every parsed file plus the
project symbol table, call graph, and taint results built by
:mod:`repro.lintkit.symbols` — which is how the interprocedural rules
(D004 transitive nondeterminism, L001/L002 architecture contracts,
M002 dead registry names) see across module boundaries.  Rules of both
scopes register themselves in a global registry via the
:func:`register` decorator, so the CLI and the tests discover the
shipped pack without hand-maintained lists.

Suppression happens at two layers:

* an inline pragma on the reported line —
  ``# reprolint: ignore[D001]`` (several ids comma-separated) or a bare
  ``# reprolint: ignore`` for every rule;
* the baseline file (:mod:`repro.lintkit.baseline`), which grandfathers
  existing findings without touching the source.

The driver (:class:`Checker`) walks the requested paths, parses each
``.py`` file once, runs every enabled per-file rule over the shared
context, then builds one project context over all parsed files and
runs the project-scope rules.  Findings come back pragma-filtered and
sorted by location either way.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field, replace
from io import StringIO
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.lintkit.config import LintConfig

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle guard)
    from repro.lintkit.symbols import Project

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
]

#: Severities a finding may carry; only ``error`` gates the exit code.
SEVERITIES: tuple[str, ...] = ("error", "warning")

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def location(self) -> str:
        """``path:line:col`` — the clickable anchor of the finding."""
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> dict[str, object]:
        """JSON-reporter projection."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


class Rule:
    """Base class of every lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``check`` receives the parsed file and yields findings; it must not
    mutate the context (one context is shared by the whole pack).
    """

    #: Stable identifier, e.g. ``"D001"`` — pragma and baseline key.
    id: str = ""
    #: Short kebab-case name shown next to the id in reports.
    name: str = ""
    #: One-line description for the rule catalogue.
    description: str = ""
    #: Severity unless overridden by ``[tool.reprolint.severity]``.
    default_severity: str = "error"
    #: ``"file"`` rules see one parsed file at a time; ``"project"``
    #: rules (see :class:`ProjectRule`) run once over all of them.
    scope: str = "file"

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one file; override in subclasses."""
        raise NotImplementedError

    def finding(
        self, ctx: "FileContext", node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``."""
        return Finding(
            rule_id=self.id,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Base class of whole-program rules (D004, L001, L002, M002).

    Project rules run once per lint invocation, after every file has
    been parsed, against the :class:`repro.lintkit.symbols.Project`
    built over the full file set.  ``check`` is inert — the driver
    calls :meth:`check_project` instead — so a project rule mixed into
    the per-file loop yields nothing rather than crashing.
    """

    scope: str = "project"

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Project rules produce nothing per-file."""
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        """Yield findings over the whole project; override in subclasses."""
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    if cls.default_severity not in SEVERITIES:
        raise ValueError(
            f"rule {cls.id}: severity must be one of {SEVERITIES}, "
            f"got {cls.default_severity!r}"
        )
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """The registry as ``{rule_id: rule_class}`` (copy; sorted by id)."""
    return dict(sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> type[Rule]:
    """Look one rule up by id; raises ``KeyError`` for unknown ids."""
    return _REGISTRY[rule_id]


@dataclass
class FileContext:
    """One parsed source file, shared by every rule.

    ``module`` is the dotted import path derived from the package
    layout (``__init__.py`` presence walking up from the file), so
    rules can scope themselves to configured package prefixes even when
    the checker is invoked on an arbitrary directory.
    """

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    config: LintConfig
    #: line -> rule ids suppressed there (``{"*"}`` suppresses all).
    ignores: dict[int, set[str]] = field(default_factory=dict)
    #: import alias map: local name -> dotted module path.
    aliases: dict[str, str] = field(default_factory=dict)

    def in_package(self, prefixes: Iterable[str]) -> bool:
        """Whether this module falls under any dotted prefix."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )

    def resolve_call(self, node: ast.AST) -> str | None:
        """Dotted path of a call target, through import aliases.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when the
        file did ``import numpy as np``; ``now()`` resolves to
        ``datetime.datetime.now`` after ``from datetime import datetime``
        only for the attribute form — bare-name resolution covers
        ``from time import time``-style direct imports.  Returns
        ``None`` for targets that are not a name/attribute chain.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline pragma covers this finding's line."""
        rules = self.ignores.get(finding.line)
        return bool(rules) and ("*" in rules or finding.rule_id in rules)


def _collect_pragmas(source: str) -> dict[int, set[str]]:
    """Map line numbers to the rule ids ignored there.

    Tokenizes so pragmas inside string literals don't count.  A pragma
    on the *last* line of a multi-line statement also covers the
    statement's first line (where AST nodes anchor), handled by the
    caller via logical-line expansion in :func:`_expand_pragmas`.
    """
    ignores: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(tok.string)
            if match is None:
                continue
            listed = match.group("rules")
            rules = (
                {"*"}
                if listed is None
                else {r.strip() for r in listed.split(",") if r.strip()}
            )
            ignores.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return ignores


def _expand_pragmas(
    tree: ast.Module, ignores: dict[int, set[str]]
) -> dict[int, set[str]]:
    """Spread statement-end pragmas back to the statement's anchor line.

    A multi-line call reported at its first line can carry the pragma
    on any physical line of the statement — matching how humans write
    ``# reprolint: ignore[...]`` next to the offending argument.
    """
    if not ignores:
        return ignores
    expanded = {line: set(rules) for line, rules in ignores.items()}
    for node in ast.walk(tree):
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is None or end is None or end <= lineno:
            continue
        for line in range(lineno, end + 1):
            if line in ignores:
                expanded.setdefault(lineno, set()).update(ignores[line])
    return expanded


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted module path, from top-of-file imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def module_name_for(path: Path) -> str:
    """Dotted module path inferred from ``__init__.py`` package markers."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


class Checker:
    """Run the enabled rule pack over files and directories."""

    def __init__(
        self,
        config: LintConfig,
        *,
        select: Iterable[str] | None = None,
    ) -> None:
        self.config = config
        wanted = set(select) if select is not None else None
        self.rules: list[Rule] = []
        for rule_id, cls in all_rules().items():
            if wanted is not None and rule_id not in wanted:
                continue
            if rule_id in config.disabled_rules:
                continue
            self.rules.append(cls())
        if wanted is not None:
            unknown = wanted - set(all_rules())
            if unknown:
                raise KeyError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))}"
                )

    # -- discovery ---------------------------------------------------------

    @staticmethod
    def iter_files(paths: Iterable[str | Path]) -> Iterator[Path]:
        """Every ``.py`` file under the given files/directories, sorted."""
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            candidates = (
                sorted(path.rglob("*.py")) if path.is_dir() else [path]
            )
            for candidate in candidates:
                if candidate.suffix != ".py":
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    yield candidate

    def parse(self, path: Path) -> FileContext | None:
        """Parse one file into a shared rule context (``None`` on errors).

        Syntax errors are not lint findings — the interpreter and the
        test suite report those better — so unparsable files are
        skipped with a ``None``.
        """
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError):
            return None
        ignores = _expand_pragmas(tree, _collect_pragmas(source))
        try:
            display = str(path.resolve().relative_to(Path.cwd()))
        except ValueError:
            display = str(path)
        return FileContext(
            path=path,
            display_path=display,
            module=module_name_for(path),
            source=source,
            tree=tree,
            config=self.config,
            ignores=ignores,
            aliases=_collect_aliases(tree),
        )

    # -- execution ---------------------------------------------------------

    def check_file(self, ctx: FileContext) -> list[Finding]:
        """Run every enabled per-file rule over one parsed file."""
        findings: list[Finding] = []
        for rule in self.rules:
            if rule.scope != "file":
                continue
            severity = self.config.severity_for(
                rule.id, rule.default_severity
            )
            for finding in rule.check(ctx):
                if ctx.suppressed(finding):
                    continue
                findings.append(replace(finding, severity=severity))
        return findings

    def check_project(self, contexts: list[FileContext]) -> list[Finding]:
        """Run the project-scope rules once over all parsed files.

        Pragma suppression still applies: a finding anchored on a line
        carrying ``# reprolint: ignore[...]`` in its own file is
        dropped, exactly as for per-file rules.
        """
        project_rules = [
            r for r in self.rules if isinstance(r, ProjectRule)
        ]
        if not project_rules or not contexts:
            return []
        # Imported lazily: symbols imports this module for FileContext.
        from repro.lintkit.symbols import build_project

        project = build_project(contexts, self.config)
        by_path = {ctx.display_path: ctx for ctx in contexts}
        findings: list[Finding] = []
        for rule in project_rules:
            severity = self.config.severity_for(
                rule.id, rule.default_severity
            )
            for finding in rule.check_project(project):
                ctx = by_path.get(finding.path)
                if ctx is not None and ctx.suppressed(finding):
                    continue
                findings.append(replace(finding, severity=severity))
        return findings

    def run(
        self,
        paths: Iterable[str | Path],
        *,
        on_file: Callable[[Path], None] | None = None,
    ) -> list[Finding]:
        """Check all files under ``paths``; findings sorted by location.

        Per-file rules run as each file parses; once the whole file set
        is in hand, the project-scope rules run over the combined
        symbol table / call graph / import graph.
        """
        findings: list[Finding] = []
        contexts: list[FileContext] = []
        for path in self.iter_files(paths):
            if on_file is not None:
                on_file(path)
            ctx = self.parse(path)
            if ctx is None:
                continue
            contexts.append(ctx)
            findings.extend(self.check_file(ctx))
        findings.extend(self.check_project(contexts))
        findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.rule_id)
        )
        return findings
