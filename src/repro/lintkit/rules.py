"""The shipped rule pack — this repository's invariants, machine-checked.

Determinism rules (scoped by ``deterministic-packages``):

* **D001 no-wallclock** — ``time.time``/``time.monotonic``/
  ``datetime.now`` and friends must not be *called* inside
  deterministic packages; simulated time comes from the engine and
  profiling uses ``perf_counter`` behind the obs switch.  Passing
  ``time.time`` as an injectable default (``clock=time.time``) is
  fine — only calls are flagged.  ``wallclock-allow`` exempts modules
  that legitimately schedule against the real clock (the queue's
  backoff deadlines).
* **D002 no-global-rng** — module-level ``random.*`` functions, bare
  ``random.Random()``, and legacy ``numpy.random`` module state all
  draw from hidden global seeds; every stream must be constructed from
  an explicit seed (``random.Random(seed)``,
  ``numpy.random.default_rng(seed)``).
* **D003 unordered-iteration** — iterating a ``set`` expression in an
  engine hot path feeds hash order (randomized per process for
  strings) into order-sensitive accumulation; wrap it in
  ``sorted(...)``.  Dicts are insertion-ordered in Python and are not
  flagged.

Registry rules:

* **M001 undeclared-metric** — every literal metric/span name passed
  to ``obs.inc``/``obs.observe``/``obs.set_gauge``/``obs.span``/
  ``obs.add_span`` must be declared in :mod:`repro.obs.names`; a
  typo'd name silently forks a new series that no dashboard reads.
* **P001 unknown-error-code** — ``ServiceError(..., code=...)`` must
  use a member of the closed protocol set
  (:data:`repro.service.protocol.ERROR_CODES`); anything else reaches
  the wire as ``internal`` and clients lose the ability to branch.

Async rules (scoped by ``async-packages``):

* **A001 blocking-in-async** — ``time.sleep``/``sqlite3.connect`` (and
  other known blockers) called directly inside an ``async def`` body
  stall the event loop; use ``await asyncio.sleep`` or push the work
  onto an executor.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lintkit.framework import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    register,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.lintkit.symbols import Project

__all__ = [
    "AsyncBlockingRule",
    "DeadNameRule",
    "ErrorCodeRule",
    "GlobalRngRule",
    "MetricNameRule",
    "UnorderedIterationRule",
    "WallClockRule",
    "rng_violation",
]

# -- D001 -------------------------------------------------------------------

#: Wall-clock reads banned from deterministic packages.  Deliberately
#: excludes ``time.perf_counter`` — duration profiling behind the obs
#: switch never feeds scheduling decisions.
WALLCLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """D001: no wall-clock reads inside deterministic packages."""

    id = "D001"
    name = "no-wallclock"
    description = (
        "time.time/monotonic/datetime.now calls are banned in "
        "deterministic packages; inject a clock instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(ctx.config.deterministic_packages):
            return
        if ctx.in_package(ctx.config.wallclock_allow):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target in WALLCLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read `{target}()` in deterministic "
                    f"module {ctx.module}; inject a clock "
                    f"(`clock: Callable[[], float]`) or move the read "
                    f"outside the deterministic core",
                )


# -- D002 -------------------------------------------------------------------

#: ``random``-module functions that consume the hidden global stream.
GLOBAL_RANDOM_FUNCS: frozenset[str] = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "triangular", "betavariate",
        "expovariate", "gammavariate", "gauss", "lognormvariate",
        "normalvariate", "vonmisesvariate", "paretovariate",
        "weibullvariate", "getrandbits", "randbytes", "seed",
    }
)

#: ``numpy.random`` attributes that are *not* legacy global state.
NUMPY_RANDOM_OK: frozenset[str] = frozenset(
    {
        "Generator", "BitGenerator", "SeedSequence", "default_rng",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    }
)


def rng_violation(node: ast.Call, target: str) -> str | None:
    """Why one resolved call is a hidden-global-RNG read, or ``None``.

    Shared by the per-file D002 rule and the D004 taint pass so both
    honor the same sanctioned patterns (seeded ``random.Random(seed)``,
    ``numpy.random.default_rng(seed)``, the Generator API).
    """
    parts = target.split(".")
    if parts[0] == "random" and len(parts) == 2:
        if parts[1] in GLOBAL_RANDOM_FUNCS:
            return (
                f"`{target}()` draws from the hidden module-global "
                f"RNG; construct `random.Random(seed)` and pass it "
                f"explicitly"
            )
        if parts[1] == "Random" and not node.args and not node.keywords:
            return (
                "bare `random.Random()` seeds from the OS; pass an "
                "explicit seed so the stream replays"
            )
    if parts[:2] == ["numpy", "random"] and len(parts) == 3:
        attr = parts[2]
        if attr == "default_rng" and not node.args and not node.keywords:
            return (
                "`numpy.random.default_rng()` without a seed is "
                "OS-entropy-seeded; pass an explicit seed"
            )
        if attr not in NUMPY_RANDOM_OK:
            return (
                f"legacy `{target}()` mutates numpy's module-global "
                f"RNG state; use `numpy.random.default_rng(seed)`"
            )
    return None


@register
class GlobalRngRule(Rule):
    """D002: no unseeded or hidden-global RNG in deterministic packages."""

    id = "D002"
    name = "no-global-rng"
    description = (
        "module-level random.* calls, bare random.Random(), and legacy "
        "numpy.random global state are banned; seed explicit generators"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(ctx.config.deterministic_packages):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target is None:
                continue
            message = rng_violation(node, target)
            if message is not None:
                yield self.finding(ctx, node, message)


# -- D003 -------------------------------------------------------------------

_SET_METHODS: frozenset[str] = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _is_set_expr(node: ast.AST) -> bool:
    """Whether an expression statically evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class UnorderedIterationRule(Rule):
    """D003: no direct set iteration in engine hot paths."""

    id = "D003"
    name = "unordered-iteration"
    description = (
        "iterating a set expression in an engine hot path feeds hash "
        "order into accumulation; wrap it in sorted(...)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(ctx.config.engine_hot_paths):
            return
        for node in ast.walk(ctx.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        ctx,
                        it,
                        "iteration order of this set expression depends "
                        "on hash seeds; wrap it in sorted(...) so the "
                        "schedule replays bit-for-bit",
                    )


# -- M001 -------------------------------------------------------------------

_METRIC_HELPERS: frozenset[str] = frozenset({"inc", "observe", "set_gauge"})
_SPAN_HELPERS: frozenset[str] = frozenset({"span", "add_span"})


@register
class MetricNameRule(Rule):
    """M001: obs metric/span names must be declared in the registry."""

    id = "M001"
    name = "undeclared-metric"
    description = (
        "literal names passed to obs.inc/observe/set_gauge/span must "
        "appear in repro.obs.names; typos silently fork a new series"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        declared = self._declared_names()
        if declared is None:
            return
        metric_names, span_names = declared
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "obs"
            ):
                continue
            if func.attr in _METRIC_HELPERS:
                universe, kind = metric_names, "metric"
            elif func.attr in _SPAN_HELPERS:
                universe, kind = span_names, "span"
            else:
                continue
            finding = self._check_name(
                ctx, node, node.args[0], universe, kind
            )
            if finding is not None:
                yield finding

    def _check_name(
        self,
        ctx: FileContext,
        call: ast.Call,
        arg: ast.expr,
        universe: frozenset[str],
        kind: str,
    ) -> Finding | None:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in universe:
                return self.finding(
                    ctx,
                    call,
                    f"{kind} name {arg.value!r} is not declared in "
                    f"repro.obs.names; declare it or fix the typo",
                )
            return None
        if isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            if isinstance(head, ast.Constant) and isinstance(
                head.value, str
            ):
                prefix = head.value
                if not any(name.startswith(prefix) for name in universe):
                    return self.finding(
                        ctx,
                        call,
                        f"dynamic {kind} name starts with {prefix!r}, "
                        f"which matches no declared name in "
                        f"repro.obs.names",
                    )
        return None

    @staticmethod
    def _declared_names() -> tuple[frozenset[str], frozenset[str]] | None:
        try:
            from repro.obs import names
        except ImportError:  # pragma: no cover - registry missing
            return None
        return names.METRIC_NAMES, names.SPAN_NAMES


# -- M002 -------------------------------------------------------------------

#: Registry assignments M002 reads in the names module.
_NAME_REGISTRIES: frozenset[str] = frozenset({"METRIC_NAMES", "SPAN_NAMES"})


@register
class DeadNameRule(ProjectRule):
    """M002: declared metric/span names must be emitted somewhere.

    The reverse direction of M001: a name declared in the registry
    module (``names-module``, default :mod:`repro.obs.names`) that no
    checked file ever emits is dead weight — usually a leftover from a
    renamed series.  A name counts as emitted when a literal obs-helper
    call uses it, when an f-string obs-helper prefix covers it, or when
    the exact literal appears anywhere else in the checked files (a
    report querying stored series by name is a legitimate use).

    When the registry module is outside the checked path set the rule
    stays silent — a partial scan cannot prove a name dead.
    """

    id = "M002"
    name = "dead-metric-name"
    description = (
        "a name declared in repro.obs.names is never emitted or "
        "referenced in the checked files; delete it or emit it"
    )

    def check_project(self, project: "Project") -> Iterator[Finding]:
        names_ctx = project.contexts.get(project.config.names_module)
        if names_ctx is None:
            return
        declared = self._declared(names_ctx)
        if not declared:
            return
        literals, prefixes = self._uses(project, names_ctx)
        for value, node in declared:
            if value in literals:
                continue
            if any(p and value.startswith(p) for p in prefixes):
                continue
            yield Finding(
                rule_id=self.id,
                path=names_ctx.display_path,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"declared name {value!r} is never emitted or "
                    f"referenced anywhere in the checked files; remove "
                    f"the declaration or wire up the emission"
                ),
            )

    @staticmethod
    def _declared(ctx: FileContext) -> list[tuple[str, ast.Constant]]:
        """(name, declaration node) pairs from the registry assignments."""
        declared: list[tuple[str, ast.Constant]] = []
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not any(
                isinstance(t, ast.Name) and t.id in _NAME_REGISTRIES
                for t in targets
            ):
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    declared.append((node.value, node))
        return declared

    @staticmethod
    def _uses(
        project: "Project", names_ctx: FileContext
    ) -> tuple[set[str], set[str]]:
        """Exact literals and obs-helper f-string prefixes in use."""
        helpers = _METRIC_HELPERS | _SPAN_HELPERS
        literals: set[str] = set()
        prefixes: set[str] = set()
        for ctx in project.sorted_contexts():
            if ctx.module == names_ctx.module:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    literals.add(node.value)
                if not (
                    isinstance(node, ast.Call)
                    and node.args
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "obs"
                    and node.func.attr in helpers
                ):
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.JoinedStr) and arg.values:
                    head = arg.values[0]
                    if isinstance(head, ast.Constant) and isinstance(
                        head.value, str
                    ):
                        prefixes.add(head.value)
        return literals, prefixes


# -- P001 -------------------------------------------------------------------


@register
class ErrorCodeRule(Rule):
    """P001: ServiceError codes must belong to the protocol's closed set."""

    id = "P001"
    name = "unknown-error-code"
    description = (
        "ServiceError(..., code=...) must use a member of "
        "repro.service.protocol.ERROR_CODES"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        codes = self._error_codes()
        if codes is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "ServiceError":
                continue
            for keyword in node.keywords:
                if keyword.arg != "code":
                    continue
                value = keyword.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    if value.value not in codes:
                        yield self.finding(
                            ctx,
                            node,
                            f"error code {value.value!r} is outside the "
                            f"closed protocol set; add it to "
                            f"repro.service.protocol.ERROR_CODES or use "
                            f"an existing code",
                        )

    @staticmethod
    def _error_codes() -> frozenset[str] | None:
        try:
            from repro.service.protocol import ERROR_CODES
        except ImportError:  # pragma: no cover - protocol missing
            return None
        return frozenset(ERROR_CODES)


# -- A001 -------------------------------------------------------------------

#: Calls that block the event loop when made from a coroutine.
BLOCKING_CALLS: frozenset[str] = frozenset(
    {
        "time.sleep",
        "sqlite3.connect",
        "subprocess.run",
        "subprocess.check_output",
        "subprocess.check_call",
        "subprocess.call",
        "urllib.request.urlopen",
    }
)


@register
class AsyncBlockingRule(Rule):
    """A001: no blocking calls directly inside ``async def`` bodies."""

    id = "A001"
    name = "blocking-in-async"
    description = (
        "time.sleep / sync sqlite / subprocess calls inside async def "
        "stall the event loop; await or use an executor"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(ctx.config.async_packages):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node)

    def _check_coroutine(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # Walk the coroutine body but stop at nested function
        # definitions: a nested sync helper has its own call sites, and
        # a nested coroutine is visited by the outer ast.walk pass.
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                target = ctx.resolve_call(node.func)
                if target in BLOCKING_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"blocking call `{target}()` inside "
                        f"`async def {func.name}`; use `await "
                        f"asyncio.sleep` or run it in an executor",
                    )
            stack.extend(ast.iter_child_nodes(node))
