"""Static call graph over the checked file set.

Edges are :class:`CallSite` records — *who* calls *whom* from *where*
— resolved through the project symbol table.  Resolution is
deliberately conservative:

* only targets defined inside the checked files become edges; calls
  into the stdlib or third-party code terminate chains;
* ``self.meth()`` resolves through the caller's class MRO;
* ``self.attr.meth()`` and ``param.meth()`` resolve through annotated
  attribute/parameter types;
* when the annotated type is one of the registered dispatch ABCs
  (``dispatch-abcs`` in ``[tool.reprolint]`` — the ``Scheduler`` and
  ``StorageBackend`` plugin points), the call fans out to *every*
  project implementation of that method, which is the sound
  over-approximation for registry-driven dynamic dispatch;
* constructor calls (``SomeClass(...)``) edge into ``__init__``.

Top-level module code is modelled as a ``<module>`` pseudo-function,
so an import-time call chain is as visible as a runtime one.  Nested
``def``\\ s are attributed to their enclosing top-level function:
reprolint cannot prove a closure is never invoked, so its calls count
against the function that created it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lintkit.symbols import (
    MODULE_FUNC,
    ClassInfo,
    FunctionInfo,
    Project,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "build_callgraph",
    "callgraph_for",
    "iter_calls",
    "resolve_call_target",
]


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee``."""

    caller: str
    callee: str
    line: int
    col: int


class CallGraph:
    """Adjacency over :class:`CallSite` edges, both directions."""

    def __init__(self, sites: list[CallSite]) -> None:
        self.sites: tuple[CallSite, ...] = tuple(sites)
        outgoing: dict[str, list[CallSite]] = {}
        incoming: dict[str, list[CallSite]] = {}
        for site in sites:
            outgoing.setdefault(site.caller, []).append(site)
            incoming.setdefault(site.callee, []).append(site)
        self.outgoing: dict[str, tuple[CallSite, ...]] = {
            k: tuple(v) for k, v in outgoing.items()
        }
        self.incoming: dict[str, tuple[CallSite, ...]] = {
            k: tuple(v) for k, v in incoming.items()
        }

    def calls_from(self, qualname: str) -> tuple[CallSite, ...]:
        """Edges leaving ``qualname``."""
        return self.outgoing.get(qualname, ())

    def calls_to(self, qualname: str) -> tuple[CallSite, ...]:
        """Edges arriving at ``qualname``."""
        return self.incoming.get(qualname, ())


def iter_calls(fn: FunctionInfo) -> Iterator[ast.Call]:
    """Every ``ast.Call`` belonging to ``fn``, in deterministic order.

    For a real function the whole subtree counts (nested defs have no
    FunctionInfo of their own).  For the ``<module>`` pseudo-function
    the walk skips function and method bodies — those belong to their
    own nodes — but keeps class-body top-level code, which runs at
    import time.
    """
    if fn.name != MODULE_FUNC:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield node
        return
    stack: list[ast.AST] = list(reversed(fn.node.body))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _receiver_types(
    project: Project, fn: FunctionInfo, func: ast.Attribute
) -> tuple[str, ...]:
    """Candidate type refs of the receiver of ``<recv>.meth(...)``."""
    table = project.symbols
    recv = func.value
    # param.meth(...) — annotated parameter of the enclosing function.
    if isinstance(recv, ast.Name):
        return fn.param_types.get(recv.id, ())
    # self.attr.meth(...) — annotated attribute through the class MRO.
    if (
        isinstance(recv, ast.Attribute)
        and isinstance(recv.value, ast.Name)
        and recv.value.id == "self"
        and fn.cls is not None
    ):
        for cls in table.mro(fn.cls):
            refs = cls.attr_types.get(recv.attr)
            if refs:
                return refs
    return ()


def _dispatch_targets(
    project: Project, class_ref: str, method: str
) -> list[FunctionInfo]:
    """Methods a call on a ``class_ref``-typed receiver may reach."""
    table = project.symbols
    resolved = table.resolve(class_ref)
    if not isinstance(resolved, ClassInfo):
        return []
    targets: list[FunctionInfo] = []
    own = table.method_on(resolved.qualname, method)
    if own is not None:
        targets.append(own)
    if resolved.qualname in project.config.dispatch_abcs:
        for impl in table.implementations_of(resolved.qualname):
            hit = table.method_on(impl.qualname, method)
            if hit is not None and hit not in targets:
                targets.append(hit)
    return targets


def resolve_call_target(
    project: Project, fn: FunctionInfo, call: ast.Call
) -> list[FunctionInfo]:
    """Project-internal definitions one call may reach (possibly [])."""
    table = project.symbols
    func = call.func
    # self.meth(...) through the caller's own MRO.
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and fn.cls is not None
    ):
        hit = table.method_on(fn.cls, func.attr)
        return [hit] if hit is not None else []
    # Typed-receiver dispatch: param.meth(...) / self.attr.meth(...).
    if isinstance(func, ast.Attribute):
        targets: list[FunctionInfo] = []
        for ref in _receiver_types(project, fn, func):
            for hit in _dispatch_targets(project, ref, func.attr):
                if hit not in targets:
                    targets.append(hit)
        if targets:
            return targets
    # Plain dotted resolution through aliases and re-exports.
    dotted = fn.ctx.resolve_call(func)
    if dotted is None:
        return []
    resolved = None
    if "." not in dotted:
        resolved = table.resolve(f"{fn.module}.{dotted}")
    if resolved is None:
        resolved = table.resolve(dotted)
    if isinstance(resolved, FunctionInfo):
        return [resolved]
    if isinstance(resolved, ClassInfo):
        init = table.method_on(resolved.qualname, "__init__")
        return [init] if init is not None else []
    return []


def build_callgraph(project: Project) -> CallGraph:
    """Resolve every call in every function into a :class:`CallGraph`."""
    sites: list[CallSite] = []
    table = project.symbols
    for qualname in sorted(table.functions):
        fn = table.functions[qualname]
        for call in iter_calls(fn):
            for target in resolve_call_target(project, fn, call):
                sites.append(
                    CallSite(
                        caller=fn.qualname,
                        callee=target.qualname,
                        line=call.lineno,
                        col=call.col_offset + 1,
                    )
                )
    return CallGraph(sites)


def callgraph_for(project: Project) -> CallGraph:
    """The project's call graph, built once and cached."""
    graph = project.cache.get("callgraph")
    if not isinstance(graph, CallGraph):
        graph = build_callgraph(project)
        project.cache["callgraph"] = graph
    return graph
