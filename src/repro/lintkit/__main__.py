"""``python -m repro.lintkit`` — the CI gate entry point."""

import sys

from repro.lintkit.cli import main

if __name__ == "__main__":
    sys.exit(main())
