"""The reprolint command line — ``python -m repro.lintkit`` / ``repro-oa lint``.

Exit codes follow the CI contract:

* ``0`` — no non-baselined error-severity findings;
* ``1`` — at least one gating finding (the CI gate trips);
* ``2`` — usage or configuration error.

``--write-baseline`` records the current findings as grandfathered and
exits 0 — the adoption workflow for a new rule.  ``--strict`` promotes
warning-severity findings to gating.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.lintkit import baseline as baseline_mod
from repro.lintkit.config import find_pyproject, load_config
from repro.lintkit.framework import Checker, all_rules
from repro.lintkit.reporters import render_json, render_text

__all__ = ["add_lint_arguments", "build_parser", "main", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the reprolint options (shared with ``repro-oa lint``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], metavar="PATH",
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT", default=None,
        help=(
            "pyproject.toml carrying [tool.reprolint] "
            "(default: nearest one above the first PATH)"
        ),
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline file (default: [tool.reprolint].baseline)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as grandfathered and exit 0",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file (report everything)",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids to run (default: all enabled)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings also gate the exit code",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    """The standalone ``python -m repro.lintkit`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based determinism & invariant checker for the repro "
            "codebase: per-file rules D001-D003, M001, P001, A001 plus "
            "the whole-program pass (D004 transitive nondeterminism, "
            "L001/L002 layer contracts and import cycles, M002 dead "
            "registry names)"
        ),
    )
    add_lint_arguments(parser)
    return parser


def _rule_catalogue() -> str:
    lines = []
    for rule_id, cls in all_rules().items():
        lines.append(
            f"{rule_id}  {cls.name:<22} {cls.default_severity:<7} "
            f"{cls.description}"
        )
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        print(_rule_catalogue())
        return 0

    config_path = args.config
    if config_path is None:
        first = Path(args.paths[0]) if args.paths else Path.cwd()
        found = find_pyproject(first)
        config_path = str(found) if found is not None else None
    config = load_config(config_path)

    select = (
        [r.strip() for r in args.select.split(",") if r.strip()]
        if args.select
        else None
    )
    try:
        checker = Checker(config, select=select)
    except KeyError as exc:
        print(f"reprolint: {exc.args[0]}", file=sys.stderr)
        return 2

    checked = 0

    def _count(_path: Path) -> None:
        nonlocal checked
        checked += 1

    findings = checker.run(args.paths, on_file=_count)
    if checked == 0:
        print(
            f"reprolint: no Python files under {args.paths!r}",
            file=sys.stderr,
        )
        return 2

    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else config.baseline_path()
    )
    if args.write_baseline:
        count = baseline_mod.write_baseline(baseline_path, findings)
        print(
            f"reprolint: wrote {count} fingerprint(s) to {baseline_path}"
        )
        return 0

    baselined_prints: set[str] = set()
    if not args.no_baseline:
        baselined_prints = baseline_mod.load_baseline(baseline_path)
    fresh, grandfathered = baseline_mod.partition(
        findings, baselined_prints
    )

    renderer = render_json if args.format == "json" else render_text
    print(
        renderer(
            fresh, baselined=len(grandfathered), checked_files=checked
        )
    )
    gating = [
        f
        for f in fresh
        if f.severity == "error" or args.strict
    ]
    return 1 if gating else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return run_lint(args)
    except ConfigurationError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
