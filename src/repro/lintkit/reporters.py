"""Finding reporters — human-readable text and machine-readable JSON.

The text form mirrors compiler diagnostics (``path:line:col``) so
editors and CI annotations pick the locations up; the JSON form is the
stable interface for tooling (schema stamped with ``version``).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.lintkit.framework import Finding

__all__ = ["render_json", "render_text"]

#: Schema stamp of the JSON report document.
REPORT_VERSION = 1


def render_text(
    findings: Sequence[Finding],
    *,
    baselined: int = 0,
    checked_files: int | None = None,
) -> str:
    """Compiler-style report: one line per finding plus a summary."""
    lines = [
        f"{f.location()}: {f.rule_id} {f.severity}: {f.message}"
        for f in findings
    ]
    by_rule = Counter(f.rule_id for f in findings)
    summary_bits = []
    if checked_files is not None:
        summary_bits.append(
            f"{checked_files} file{'s' if checked_files != 1 else ''} checked"
        )
    if findings:
        per_rule = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        summary_bits.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"({per_rule})"
        )
    else:
        summary_bits.append("no findings")
    if baselined:
        summary_bits.append(f"{baselined} baselined")
    lines.append("reprolint: " + ", ".join(summary_bits))
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    baselined: int = 0,
    checked_files: int | None = None,
) -> str:
    """The stable machine-readable report."""
    document = {
        "version": REPORT_VERSION,
        "tool": "reprolint",
        "checked_files": checked_files,
        "baselined": baselined,
        "counts": dict(
            sorted(Counter(f.rule_id for f in findings).items())
        ),
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)
