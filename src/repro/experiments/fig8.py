"""Figure 8 — gains of Improvements 1–3 on a single cluster.

"Gains on the makespan obtained with the 3 possible improvements
presented with respect to the first version of scheduling are plotted in
Figure 8.  These results come from 5 simulations done on clusters with
different computing powers.  The figure shows the average of the gains,
and also the standard deviation."  (NS = 10; R swept over 11–120.)

Expected shape: the knapsack representation (gain 3) "yields to the
bests results with low resources"; gains shrink with more resources and
can dip slightly negative; at large R all heuristics converge to NS
groups of 11 and every gain is 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.gains import gains_over_baseline
from repro.analysis.plotting import ascii_plot
from repro.analysis.stats import SeriesStats, summarize
from repro.analysis.tables import format_table
from repro.core.heuristics import HeuristicName
from repro.experiments.runner import (
    ALL_HEURISTICS,
    IMPROVEMENT_LABELS,
    makespans_by_heuristic,
    parallel_map,
    resource_sweep,
)
from repro.platform.benchmarks import benchmark_clusters
from repro.platform.cluster import ClusterSpec
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["Fig8Result", "run", "render", "main"]


@dataclass(frozen=True)
class Fig8Result:
    """Per-improvement gain statistics over the resource sweep.

    ``raw_gains[heuristic][j][i]`` is the gain (%) of ``heuristic`` on
    cluster ``j`` at ``resources[i]``; ``stats[heuristic][i]`` aggregates
    across clusters at each point.
    """

    resources: tuple[int, ...]
    cluster_names: tuple[str, ...]
    raw_gains: dict[str, tuple[tuple[float, ...], ...]]
    stats: dict[str, tuple[SeriesStats, ...]]
    scenarios: int
    months: int

    def mean_series(self) -> dict[str, list[float]]:
        """Mean gain of each improvement at each resource count."""
        return {
            name: [s.mean for s in per_point]
            for name, per_point in self.stats.items()
        }

    def max_gain(self, heuristic: str) -> float:
        """The headline number: best mean gain over the sweep."""
        return max(s.mean for s in self.stats[heuristic])


def _sweep_point(
    args: tuple[int, int, int, tuple[ClusterSpec, ...]],
) -> list[dict[str, float]]:
    """One resource count of the sweep: gains per cluster.

    Module-level (picklable) so :func:`~repro.experiments.runner.parallel_map`
    can fan points out across processes.
    """
    r, scenarios, months, base_clusters = args
    spec = EnsembleSpec(scenarios, months)
    point: list[dict[str, float]] = []
    for proto in base_clusters:
        cluster = proto.with_resources(r)
        point.append(gains_over_baseline(makespans_by_heuristic(cluster, spec)))
    return point


def run(
    *,
    scenarios: int = 10,
    months: int = 60,
    r_min: int = 11,
    r_max: int = 120,
    step: int = 1,
    clusters: list[ClusterSpec] | None = None,
    workers: int | None = None,
) -> Fig8Result:
    """Run the homogeneous-cluster gain sweep.

    ``clusters`` defaults to the five synthetic benchmark clusters (their
    resource counts are overridden point by point).  ``months`` defaults
    to 60 — gains are driven by wave-level structure and are insensitive
    to NM (verified by the NM ablation), while the paper's 1800 months
    would multiply the runtime 30x for identical curves.  ``workers > 1``
    distributes resource points over processes; results are identical to
    the serial run.
    """
    base_clusters = tuple(
        clusters if clusters is not None else benchmark_clusters(r_min)
    )
    resources = resource_sweep(r_min, r_max, step)
    improvements = [h for h in ALL_HEURISTICS if h is not HeuristicName.BASIC]

    points = parallel_map(
        _sweep_point,
        [(r, scenarios, months, base_clusters) for r in resources],
        workers=workers,
    )
    per_heuristic: dict[str, list[list[float]]] = {
        h.value: [[] for _ in base_clusters] for h in improvements
    }
    for point in points:
        for j, gains in enumerate(point):
            for h in improvements:
                per_heuristic[h.value][j].append(gains[h.value])

    raw: dict[str, tuple[tuple[float, ...], ...]] = {}
    stats: dict[str, tuple[SeriesStats, ...]] = {}
    for name, per_cluster in per_heuristic.items():
        raw[name] = tuple(tuple(g) for g in per_cluster)
        stats[name] = tuple(
            summarize([per_cluster[j][i] for j in range(len(base_clusters))])
            for i in range(len(resources))
        )
    return Fig8Result(
        resources=tuple(resources),
        cluster_names=tuple(c.name for c in base_clusters),
        raw_gains=raw,
        stats=stats,
        scenarios=scenarios,
        months=months,
    )


def render(result: Fig8Result, *, plot: bool = True) -> str:
    """Three gain panels (like the paper's stacked plot) plus a table."""
    xs = [float(r) for r in result.resources]
    parts: list[str] = []
    if plot:
        for heuristic, label in (
            (h.value, lbl) for h, lbl in IMPROVEMENT_LABELS.items()
        ):
            means = [s.mean for s in result.stats[heuristic]]
            stds = [s.std for s in result.stats[heuristic]]
            parts.append(
                ascii_plot(
                    xs,
                    {
                        "mean": means,
                        "mean+std": [m + s for m, s in zip(means, stds, strict=True)],
                        "mean-std": [m - s for m, s in zip(means, stds, strict=True)],
                    },
                    x_label="resources (processors)",
                    y_label="gain (%)",
                    title=f"Figure 8 panel: {label}",
                    height=12,
                )
            )
    headers = ["R", *(f"{name} mean±std" for name in result.stats)]
    rows = []
    for i, r in enumerate(result.resources):
        row: list[object] = [r]
        for name in result.stats:
            s = result.stats[name][i]
            row.append(f"{s.mean:+.2f}±{s.std:.2f}")
        rows.append(row)
    parts.append(format_table(headers, rows))
    summary = ", ".join(
        f"{name}: max mean gain {result.max_gain(name):+.1f}%"
        for name in result.stats
    )
    parts.append(f"summary: {summary}")
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - thin CLI shim
    """Regenerate and print the figure at default parameters."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
