"""Shared helpers for the experiment drivers."""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro import obs
from repro.core.heuristics import HeuristicName, plan_grouping
from repro.exceptions import ConfigurationError, SchedulingError
from repro.platform.cluster import ClusterSpec
from repro.simulation.engine import simulate
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = [
    "ALL_HEURISTICS",
    "IMPROVEMENT_LABELS",
    "simulated_makespan",
    "makespans_by_heuristic",
    "run_cluster_simulation",
    "resource_sweep",
    "parallel_map",
]

#: Every heuristic, baseline first (the order figures report them in).
ALL_HEURISTICS: tuple[HeuristicName, ...] = (
    HeuristicName.BASIC,
    HeuristicName.REDISTRIBUTE,
    HeuristicName.ALLPOST_END,
    HeuristicName.KNAPSACK,
)

#: The paper's names for the improvement curves.
IMPROVEMENT_LABELS: dict[HeuristicName, str] = {
    HeuristicName.REDISTRIBUTE: "gain1 (redistribute idle)",
    HeuristicName.ALLPOST_END: "gain2 (all posts at end)",
    HeuristicName.KNAPSACK: "gain3 (knapsack)",
}


def simulated_makespan(
    cluster: ClusterSpec, spec: EnsembleSpec, heuristic: HeuristicName | str
) -> float:
    """Plan with ``heuristic`` and simulate; the figures' atomic step."""
    if obs.enabled():
        obs.inc(
            "experiment.simulations",
            heuristic=HeuristicName(heuristic).value,
            cluster=cluster.name,
        )
    grouping = plan_grouping(cluster, spec, heuristic)
    return simulate(
        grouping, spec, cluster.timing, cluster_name=cluster.name
    ).makespan


def makespans_by_heuristic(
    cluster: ClusterSpec,
    spec: EnsembleSpec,
    heuristics: Sequence[HeuristicName] = ALL_HEURISTICS,
) -> dict[str, float]:
    """Simulated makespan of every heuristic on one cluster.

    Heuristics that cannot produce a grouping on this cluster (too few
    processors) are skipped — Figure sweeps start at R=11 where all of
    them fit, but callers may probe smaller machines.
    """
    result: dict[str, float] = {}
    for heuristic in heuristics:
        try:
            result[heuristic.value] = simulated_makespan(cluster, spec, heuristic)
        except SchedulingError:
            continue
    if not result:
        raise SchedulingError(
            f"no heuristic can schedule on cluster {cluster.name!r} "
            f"({cluster.resources} processors)"
        )
    return result


def run_cluster_simulation(
    cluster_name: str,
    resources: int,
    spec: EnsembleSpec,
    heuristic: HeuristicName | str,
    *,
    record_trace: bool = False,
):
    """Plan and simulate one ensemble on a named benchmark cluster.

    The single-cluster job callable: module-level (hence picklable for
    worker processes) and parameterized by plain values, it is the path
    both ``repro-oa simulate`` and the campaign service's ``simulate``
    job kind go through.  Returns the full
    :class:`~repro.simulation.engine.SimulationResult`.
    """
    from repro.platform.benchmarks import benchmark_cluster
    from repro.simulation.engine import simulate_on_cluster

    with obs.span(
        "runner.simulate",
        cluster=cluster_name,
        resources=resources,
        heuristic=HeuristicName(heuristic).value,
    ):
        cluster = benchmark_cluster(cluster_name, resources)
        grouping = plan_grouping(cluster, spec, heuristic)
        return simulate_on_cluster(
            cluster, grouping, spec, record_trace=record_trace
        )


def resource_sweep(
    r_min: int, r_max: int, step: int = 1
) -> list[int]:
    """The resource counts of a figure sweep, bounds validated."""
    if r_min < 1 or r_max < r_min or step < 1:
        raise ConfigurationError(
            f"invalid sweep: r_min={r_min!r}, r_max={r_max!r}, step={step!r}"
        )
    return list(range(r_min, r_max + 1, step))


def parallel_map(fn, items, *, workers: int | None = None) -> list:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``workers in (None, 0, 1)`` runs serially — the default, because the
    figure sweeps are seconds-scale and fork overhead often loses.  With
    ``workers > 1`` a :class:`~concurrent.futures.ProcessPoolExecutor`
    fans the points out; ``fn`` and each item must be picklable (use
    module-level functions).  Results keep item order either way, so a
    parallel sweep is bit-identical to a serial one — determinism is not
    negotiable (the tests compare the two directly).
    """
    if workers is not None and workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers!r}")
    items = list(items)
    if workers in (None, 0, 1) or len(items) <= 1:
        if not obs.enabled():
            return [fn(item) for item in items]
        results = []
        for item in items:
            started = time.perf_counter()
            results.append(fn(item))
            obs.observe(
                "runner.item_seconds", time.perf_counter() - started,
                mode="serial",
            )
        obs.inc("runner.items", len(items), mode="serial")
        return results
    from concurrent.futures import ProcessPoolExecutor
    from functools import partial

    if not obs.enabled():
        with ProcessPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(fn, items))
    # Timed wrapper: each worker reports its busy seconds back with the
    # result, so the parent can account pool utilization without any
    # cross-process metrics plumbing.  Values and order are unchanged.
    started = time.perf_counter()
    with ProcessPoolExecutor(max_workers=workers) as executor:
        timed = list(executor.map(partial(_timed_call, fn), items))
    wall = time.perf_counter() - started
    results = [result for result, _ in timed]
    busy = sum(seconds for _, seconds in timed)
    for _, seconds in timed:
        obs.observe("runner.item_seconds", seconds, mode="process")
    obs.inc("runner.items", len(items), mode="process")
    obs.set_gauge("runner.workers", workers, mode="process")
    if wall > 0:
        obs.set_gauge(
            "runner.utilization", busy / (workers * wall), mode="process"
        )
    return results


def _timed_call(fn, item) -> tuple:
    """Run ``fn(item)`` and return ``(result, busy_seconds)`` (picklable)."""
    started = time.perf_counter()
    result = fn(item)
    return result, time.perf_counter() - started


def cycle_names(names: Iterable[str], count: int) -> list[str]:
    """Repeat a name list to ``count`` entries (Figure 10's speed cycling)."""
    pool = list(names)
    if not pool:
        raise ConfigurationError("need at least one name to cycle")
    return [pool[i % len(pool)] for i in range(count)]
