"""Resilience study — makespan degradation vs failure rate (MTBF).

The paper's heuristics are compared on fault-free platforms; this
experiment asks how their campaigns degrade when the grid misbehaves.
For each MTBF point, seeded outage-only fault traces
(:func:`repro.faults.trace.generate_trace` with
:meth:`~repro.faults.trace.FaultProfile.outages_only` — every cluster
eventually returns, so campaigns always complete) are replayed through
the multi-failure replanner
(:func:`repro.middleware.recovery.run_campaign_with_faults`), and the
relative makespan degradation is averaged over trials.  The *same*
traces are applied to every heuristic, so differences measure the
schedules, not the luck of the draw.

Expected shape: degradation decays towards zero as MTBF grows past the
campaign length, and the heuristics whose repartitions concentrate work
on fewer clusters degrade harder (a single outage interrupts more
scenarios).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.analysis.plotting import ascii_plot
from repro.analysis.tables import series_table
from repro.core.heuristics import HeuristicName
from repro.exceptions import ConfigurationError
from repro.faults.trace import FaultProfile, FaultTrace, generate_trace
from repro.middleware.recovery import run_campaign_with_faults
from repro.platform.benchmarks import benchmark_grid

__all__ = ["ResilienceResult", "run", "render", "main"]


@dataclass(frozen=True)
class ResilienceResult:
    """Mean makespan degradation per heuristic across MTBF points."""

    mtbf_hours: tuple[float, ...]
    heuristics: tuple[str, ...]
    #: heuristic -> fault-free makespan (seconds).
    baseline: dict[str, float]
    #: heuristic -> mean makespan (seconds) per MTBF point.
    makespan: dict[str, tuple[float, ...]]
    #: heuristic -> mean relative degradation per MTBF point.
    degradation: dict[str, tuple[float, ...]]
    #: mean fault events per trace, per MTBF point.
    events_per_trace: tuple[float, ...]
    scenarios: int
    months: int
    trials: int
    seed: int

    def as_series(self) -> dict[str, tuple[float, ...]]:
        """Degradation percent per heuristic — the figure's series."""
        return {
            name: tuple(100.0 * d for d in self.degradation[name])
            for name in self.heuristics
        }


def run(
    *,
    scenarios: int = 9,
    months: int = 24,
    clusters: int = 3,
    resources: int = 30,
    mtbf_hours: tuple[float, ...] = (2.0, 4.0, 8.0, 16.0, 32.0),
    mttr_hours: float = 1.0,
    trials: int = 3,
    seed: int = 0,
    heuristics: tuple[HeuristicName | str, ...] = (
        HeuristicName.BASIC,
        HeuristicName.KNAPSACK,
    ),
) -> ResilienceResult:
    """Sweep MTBF; replay shared seeded outage traces per heuristic.

    Trace horizons use the *largest* fault-free makespan across the
    compared heuristics, so every schedule is exposed to the same
    failure window.  Deterministic: identical arguments reproduce every
    trace, plan, and mean bit-for-bit.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials!r}")
    if not mtbf_hours or any(m <= 0 for m in mtbf_hours):
        raise ConfigurationError(
            f"mtbf_hours must be positive values, got {mtbf_hours!r}"
        )
    names = tuple(HeuristicName(h).value for h in heuristics)
    with obs.span(
        "resilience.run",
        clusters=clusters,
        resources=resources,
        mtbf_points=len(mtbf_hours),
        trials=trials,
        seed=seed,
    ):
        grid = benchmark_grid(clusters, resources)
        baseline: dict[str, float] = {}
        for name in names:
            report = run_campaign_with_faults(
                grid, scenarios, months, FaultTrace(), heuristic=name
            )
            baseline[name] = report.makespan
        horizon = max(baseline.values())

        makespan: dict[str, list[float]] = {name: [] for name in names}
        degradation: dict[str, list[float]] = {name: [] for name in names}
        events_per_trace: list[float] = []
        for i, mtbf in enumerate(mtbf_hours):
            profile = FaultProfile.outages_only(
                mtbf * 3600.0, mttr_hours * 3600.0
            )
            traces = [
                generate_trace(
                    {name: profile for name in grid.names},
                    horizon,
                    seed * 1_000_003 + i * 1_009 + trial,
                )
                for trial in range(trials)
            ]
            events_per_trace.append(
                sum(len(trace) for trace in traces) / trials
            )
            for name in names:
                totals = 0.0
                for trace in traces:
                    report = run_campaign_with_faults(
                        grid, scenarios, months, trace, heuristic=name
                    )
                    totals += report.makespan
                mean = totals / trials
                makespan[name].append(mean)
                degradation[name].append(
                    (mean - baseline[name]) / baseline[name]
                )
        return ResilienceResult(
            mtbf_hours=tuple(mtbf_hours),
            heuristics=names,
            baseline=baseline,
            makespan={name: tuple(makespan[name]) for name in names},
            degradation={name: tuple(degradation[name]) for name in names},
            events_per_trace=tuple(events_per_trace),
            scenarios=scenarios,
            months=months,
            trials=trials,
            seed=seed,
        )


def render(result: ResilienceResult, *, plot: bool = True) -> str:
    """The study as an ASCII chart plus the underlying table."""
    xs = list(result.mtbf_hours)
    series = {
        name: list(values) for name, values in result.as_series().items()
    }
    parts: list[str] = []
    if plot:
        parts.append(
            ascii_plot(
                xs,
                series,
                x_label="MTBF (hours)",
                y_label="degradation (%)",
                title=(
                    f"Resilience: makespan degradation under outages "
                    f"({result.scenarios} scenarios x {result.months} "
                    f"months, {result.trials} trial(s))"
                ),
            )
        )
    columns = {
        f"{name} (+%)": list(series[name]) for name in result.heuristics
    }
    columns["events/trace"] = list(result.events_per_trace)
    parts.append(
        series_table(
            "MTBF (h)",
            xs,
            columns,
            float_format="{:.2f}",
        )
    )
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - thin CLI shim
    """Regenerate and print the study at default parameters."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
