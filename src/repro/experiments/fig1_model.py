"""Figures 1 & 2 — the application model itself.

Not a measurement, but the paper's Figure 1 (task chain with benchmark
durations) and Figure 2 (fused model) are reproducible artifacts too:
this driver builds both DAGs, checks the fusion round-trip, and prints
the chain with the same durations the paper annotates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.analysis.tables import format_table
from repro.workflow.dag import DAG
from repro.workflow.fusion import fuse_ocean_atmosphere
from repro.workflow.ocean_atmosphere import (
    fused_scenario_dag,
    scenario_dag,
)

__all__ = ["Fig1Result", "run", "render", "main"]


@dataclass(frozen=True)
class Fig1Result:
    """The two-month chain of Figure 1 and its fused form."""

    fine: DAG
    fused: DAG
    fused_direct: DAG
    critical_path_seconds: float
    critical_path: tuple[str, ...]

    @property
    def fusion_matches_direct(self) -> bool:
        """Fusing Figure 1 must yield exactly the Figure 2 builder's DAG."""
        if set(self.fused.task_ids()) != set(self.fused_direct.task_ids()):
            return False
        for tid in self.fused.task_ids():
            if self.fused.task(tid) != self.fused_direct.task(tid):
                return False
            if set(self.fused.successors(tid)) != set(
                self.fused_direct.successors(tid)
            ):
                return False
        return True


def run(*, months: int = 2) -> Fig1Result:
    """Build the ``months``-month chain (paper draws 2) both ways."""
    fine = scenario_dag(months)
    fused = fuse_ocean_atmosphere(fine)
    direct = fused_scenario_dag(months)
    length, path = fine.critical_path()
    return Fig1Result(fine, fused, direct, length, tuple(path))


def render(result: Fig1Result) -> str:
    """Task table (Figure 1's annotations) plus structural checks."""
    rows = [
        ["caif", "pre", constants.CAIF_SECONDS],
        ["mp", "pre", constants.MP_SECONDS],
        ["pcr", "main", constants.PCR_SECONDS],
        ["cof", "post", constants.COF_SECONDS],
        ["emi", "post", constants.EMI_SECONDS],
        ["cd", "post", constants.CD_SECONDS],
    ]
    parts = [
        "Figure 1 task durations (reference machine, seconds):",
        format_table(["task", "phase", "seconds"], rows, float_format="{:.0f}"),
        "",
        f"fine DAG: {len(result.fine)} tasks, {result.fine.edge_count()} edges",
        f"fused DAG: {len(result.fused)} tasks, {result.fused.edge_count()} edges",
        f"fusion round-trip matches Figure 2 builder: "
        f"{result.fusion_matches_direct}",
        f"critical path ({result.critical_path_seconds:.0f}s): "
        + " -> ".join(result.critical_path),
    ]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - thin CLI shim
    """Regenerate and print the figure at default parameters."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
