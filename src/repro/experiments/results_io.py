"""JSON persistence for figure and campaign results.

Reproduction runs are artifacts worth archiving: serializing a figure's
result object lets a run be stored next to the paper PDF, diffed against
future library versions, or re-rendered without re-simulating.  Each
codec round-trips exactly (tested), and every payload carries a
``figure`` tag plus the library version that produced it.

Beyond the dedicated figure codecs, :class:`GenericResult` provides the
escape hatch for every other job kind — fig9 protocol traces, ablation
tables, campaign summaries from the :mod:`repro.service` run store —
any JSON-representable payload tagged with a ``kind``.  Third parties
can also plug their own result classes in with :func:`register_codec`,
so one serializer (:func:`dump_result`/:func:`load_result`) covers
every job the service can run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro._version import __version__
from repro.analysis.stats import SeriesStats
from repro.exceptions import ConfigurationError
from repro.experiments.fig7 import Fig7Result
from repro.experiments.fig8 import Fig8Result
from repro.experiments.fig10 import Fig10Result

__all__ = [
    "GenericResult",
    "dump_result",
    "load_result",
    "register_codec",
    "registered_tags",
]


@dataclass(frozen=True)
class GenericResult:
    """A tagged, JSON-representable result payload.

    The one-size-fits-all envelope for job kinds without a dedicated
    result dataclass: ``kind`` names the producer (``"fig9"``,
    ``"ablations"``, ``"campaign"``, ...) and ``data`` holds anything
    :func:`json.dumps` accepts.  Construction validates the payload is
    actually serializable so a bad result fails at the producer, not in
    the run store.
    """

    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ConfigurationError(
                f"GenericResult kind must be a non-empty string, "
                f"got {self.kind!r}"
            )
        if not isinstance(self.data, dict):
            raise ConfigurationError(
                f"GenericResult data must be a dict, "
                f"got {type(self.data).__name__}"
            )
        try:
            json.dumps(self.data)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"GenericResult data is not JSON-representable: {exc}"
            ) from exc


def _stats_to_dict(stats: SeriesStats) -> dict[str, float]:
    return {
        "mean": stats.mean,
        "std": stats.std,
        "minimum": stats.minimum,
        "maximum": stats.maximum,
        "count": stats.count,
    }


def _stats_from_dict(raw: dict[str, Any]) -> SeriesStats:
    return SeriesStats(
        mean=float(raw["mean"]),
        std=float(raw["std"]),
        minimum=float(raw["minimum"]),
        maximum=float(raw["maximum"]),
        count=int(raw["count"]),
    )


def _fig7_payload(result: Fig7Result) -> dict[str, Any]:
    return {
        "resources": list(result.resources),
        "best_group": list(result.best_group),
        "scenarios": result.scenarios,
        "months": result.months,
    }


def _fig7_restore(raw: dict[str, Any]) -> Fig7Result:
    return Fig7Result(
        tuple(int(r) for r in raw["resources"]),
        tuple(int(g) for g in raw["best_group"]),
        int(raw["scenarios"]),
        int(raw["months"]),
    )


def _fig8_payload(result: Fig8Result) -> dict[str, Any]:
    return {
        "resources": list(result.resources),
        "cluster_names": list(result.cluster_names),
        "raw_gains": {
            name: [list(row) for row in rows]
            for name, rows in result.raw_gains.items()
        },
        "stats": {
            name: [_stats_to_dict(s) for s in series]
            for name, series in result.stats.items()
        },
        "scenarios": result.scenarios,
        "months": result.months,
    }


def _fig8_restore(raw: dict[str, Any]) -> Fig8Result:
    return Fig8Result(
        resources=tuple(int(r) for r in raw["resources"]),
        cluster_names=tuple(raw["cluster_names"]),
        raw_gains={
            name: tuple(tuple(float(v) for v in row) for row in rows)
            for name, rows in raw["raw_gains"].items()
        },
        stats={
            name: tuple(_stats_from_dict(s) for s in series)
            for name, series in raw["stats"].items()
        },
        scenarios=int(raw["scenarios"]),
        months=int(raw["months"]),
    )


def _fig10_payload(result: Fig10Result) -> dict[str, Any]:
    return {
        "configurations": [list(c) for c in result.configurations],
        "x_axis": list(result.x_axis),
        "makespans": {k: list(v) for k, v in result.makespans.items()},
        "gains": {k: list(v) for k, v in result.gains.items()},
        "scenarios": result.scenarios,
        "months": result.months,
    }


def _fig10_restore(raw: dict[str, Any]) -> Fig10Result:
    return Fig10Result(
        configurations=tuple(
            (int(n), int(r)) for n, r in raw["configurations"]
        ),
        x_axis=tuple(float(x) for x in raw["x_axis"]),
        makespans={
            k: tuple(float(v) for v in vs)
            for k, vs in raw["makespans"].items()
        },
        gains={
            k: tuple(float(v) for v in vs) for k, vs in raw["gains"].items()
        },
        scenarios=int(raw["scenarios"]),
        months=int(raw["months"]),
    )


def _generic_payload(result: GenericResult) -> dict[str, Any]:
    return {"kind": result.kind, "data": result.data}


def _generic_restore(raw: dict[str, Any]) -> GenericResult:
    data = raw["data"]
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"generic payload data must be a dict, got {type(data).__name__}"
        )
    return GenericResult(kind=str(raw["kind"]), data=data)


_CODECS: dict[str, tuple[type, Callable, Callable]] = {
    "fig7": (Fig7Result, _fig7_payload, _fig7_restore),
    "fig8": (Fig8Result, _fig8_payload, _fig8_restore),
    "fig10": (Fig10Result, _fig10_payload, _fig10_restore),
    "generic": (GenericResult, _generic_payload, _generic_restore),
}

#: Any result object a codec can round-trip.
ResultObject = Any


def register_codec(
    tag: str,
    cls: type,
    encode: Callable[[Any], dict[str, Any]],
    decode: Callable[[dict[str, Any]], Any],
) -> None:
    """Plug a new result class into :func:`dump_result`/:func:`load_result`.

    ``encode`` must produce a JSON-representable dict and ``decode``
    must invert it exactly.  Registering an already-taken tag with a
    different class is an error; re-registering the same class is a
    no-op (idempotent imports).
    """
    existing = _CODECS.get(tag)
    if existing is not None and existing[0] is not cls:
        raise ConfigurationError(
            f"result tag {tag!r} is already registered "
            f"for {existing[0].__name__}"
        )
    _CODECS[tag] = (cls, encode, decode)


def registered_tags() -> tuple[str, ...]:
    """Every result tag :func:`load_result` currently understands."""
    return tuple(_CODECS)


def dump_result(result: ResultObject) -> str:
    """Serialize a registered result object to a JSON string."""
    for figure, (cls, encode, _decode) in _CODECS.items():
        if isinstance(result, cls):
            return json.dumps(
                {
                    "figure": figure,
                    "library_version": __version__,
                    "data": encode(result),
                }
            )
    raise ConfigurationError(
        f"cannot serialize result of type {type(result).__name__}"
    )


def load_result(text: str) -> ResultObject:
    """Deserialize a result object from :func:`dump_result` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "figure" not in payload:
        raise ConfigurationError("payload is not a figure-result envelope")
    figure = payload["figure"]
    if figure == "sweep" and figure not in _CODECS:
        # The sweep codec registers on import; load lazily so reading a
        # sweep result does not require the producer to have run first.
        import repro.experiments.sweep  # noqa: F401
    if figure == "arena" and figure not in _CODECS:
        # Same lazy contract for arena race results.
        import repro.schedulers.arena  # noqa: F401

    if figure not in _CODECS:
        raise ConfigurationError(f"unknown figure tag {figure!r}")
    _cls, _encode, decode = _CODECS[figure]
    try:
        return decode(payload["data"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed {figure} payload: {exc}") from exc
