"""Experiment drivers — one module per paper figure, plus ablations.

Each module exposes ``run(...)`` returning a structured result object,
``render(result)`` producing the textual table/plot, and a ``main()``
entry point so every figure regenerates from the command line::

    python -m repro.experiments.fig7
    python -m repro.experiments.fig8
    python -m repro.experiments.fig10
    python -m repro.experiments.fig1_model
    python -m repro.experiments.ablations

The benchmark harness (``benchmarks/``) calls the same ``run``
functions, so the timed path and the documented path cannot drift apart.
"""

# Submodules are imported lazily by callers (``python -m`` execution of a
# submodule would otherwise re-import it through this package and trigger
# runpy's double-import warning).
__all__ = [
    "fig1_model",
    "fig3to6",
    "fig7",
    "fig8",
    "fig9_protocol",
    "fig10",
    "ablations",
    "resilience",
    "results_io",
    "runner",
]
