"""Declarative, resumable parameter sweeps over the benchmark clusters.

The paper's figures are all sweeps over ``R × NS × heuristic``; this
module generalizes them into one engine: a :class:`SweepGrid` names the
axes declaratively, :func:`run_sweep` chunks the cartesian product
deterministically across a :class:`~concurrent.futures.ProcessPoolExecutor`,
and every completed chunk is appended to an NDJSON journal via the
:mod:`~repro.experiments.results_io` envelope — so an interrupted sweep
resumes exactly where it stopped, and an interrupted-then-resumed sweep
equals a single uninterrupted one row for row (tested).

Each point runs through the memoized kernels of
:mod:`repro.core.makespan` and the bookkeeping-free fast path of
:mod:`repro.simulation.engine`; the heuristic axis iterates innermost so
the points sharing a ``(cluster, R, NS, NM)`` kernel land in the same
chunk — and therefore the same worker-process cache.  When no cell
needs a trace or per-plan metrics (observability disabled), planning
runs through the vectorized kernels of :mod:`repro.core.batch` instead,
one array evaluation per ``(cluster, NS, NM, heuristic)`` group per
chunk — bit-identical rows, same journal, same resume semantics (see
``run_sweep``'s ``batch`` parameter).

Journal format (one envelope per line)::

    {"figure": "generic", ..., "data": {"kind": "sweep-grid", "data": {...}}}
    {"figure": "generic", ..., "data": {"kind": "sweep-rows", "data": {...}}}
    ...

The first line pins the grid; resuming against a journal written for a
different grid is a :class:`~repro.exceptions.ConfigurationError`.  A
torn final line (the process died mid-write) is discarded on resume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro import obs
from repro.core.heuristics import HeuristicName, plan_grouping
from repro.core.makespan import (
    cached_simulated_makespan,
    makespan_cache_stats,
    set_makespan_cache_enabled,
)
from repro.exceptions import ConfigurationError, SchedulingError
from repro.experiments.results_io import (
    GenericResult,
    dump_result,
    load_result,
    register_codec,
)
from repro.experiments.runner import ALL_HEURISTICS, resource_sweep
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "SweepGrid",
    "SweepPoint",
    "SweepResult",
    "SweepRow",
    "run_sweep",
]

#: Points per chunk when the caller does not choose.  A multiple of the
#: heuristic-axis length keeps every ``(cluster, R, NS, NM)`` kernel's
#: heuristics inside one chunk (one worker cache), and 32 points is a
#: few hundred milliseconds of work — fine-grained enough to journal and
#: to keep an 8-worker pool busy on figure-scale grids.
DEFAULT_CHUNK_SIZE = 32

_HEURISTIC_NAMES = tuple(h.value for h in ALL_HEURISTICS)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid: a cluster/ensemble/heuristic combination."""

    cluster: str
    resources: int
    scenarios: int
    months: int
    heuristic: str

    def key(self) -> tuple[str, int, int, int, str]:
        """The point's identity — what journals and resume match on."""
        return (
            self.cluster,
            self.resources,
            self.scenarios,
            self.months,
            self.heuristic,
        )


@dataclass(frozen=True)
class SweepGrid:
    """A declarative parameter grid: the cartesian product of five axes.

    Axes are tuples so grids hash and compare structurally; use
    :meth:`from_ranges` for the common ``r_min..r_max`` form.  Points
    enumerate in axis order with ``heuristic`` innermost.
    """

    clusters: tuple[str, ...]
    resources: tuple[int, ...]
    scenarios: tuple[int, ...]
    months: tuple[int, ...]
    heuristics: tuple[str, ...]

    def __post_init__(self) -> None:
        for axis in ("clusters", "resources", "scenarios", "months", "heuristics"):
            if not getattr(self, axis):
                raise ConfigurationError(f"sweep grid axis {axis!r} is empty")
        for axis in ("resources", "scenarios", "months"):
            for value in getattr(self, axis):
                if not isinstance(value, int) or value < 1:
                    raise ConfigurationError(
                        f"sweep grid axis {axis!r} needs integers >= 1, "
                        f"got {value!r}"
                    )
        for name in self.heuristics:
            try:
                HeuristicName(name)
            except ValueError:
                raise ConfigurationError(
                    f"unknown heuristic {name!r}; expected one of "
                    f"{_HEURISTIC_NAMES}"
                ) from None

    @classmethod
    def from_ranges(
        cls,
        *,
        clusters: Sequence[str] = ("sagittaire",),
        r_min: int = 11,
        r_max: int = 120,
        step: int = 1,
        scenarios: Sequence[int] = (10,),
        months: Sequence[int] = (12,),
        heuristics: Sequence[str] | None = None,
    ) -> "SweepGrid":
        """Build a grid from a figure-style resource range."""
        return cls(
            clusters=tuple(clusters),
            resources=tuple(resource_sweep(r_min, r_max, step)),
            scenarios=tuple(int(s) for s in scenarios),
            months=tuple(int(m) for m in months),
            heuristics=(
                _HEURISTIC_NAMES if heuristics is None else tuple(heuristics)
            ),
        )

    @property
    def size(self) -> int:
        """Total number of points in the grid."""
        return (
            len(self.clusters)
            * len(self.resources)
            * len(self.scenarios)
            * len(self.months)
            * len(self.heuristics)
        )

    def points(self) -> list[SweepPoint]:
        """Every point, in deterministic order (heuristic innermost)."""
        return [
            SweepPoint(cluster, r, ns, nm, heuristic)
            for cluster in self.clusters
            for r in self.resources
            for ns in self.scenarios
            for nm in self.months
            for heuristic in self.heuristics
        ]

    def as_dict(self) -> dict[str, Any]:
        """JSON form — also the journal's grid-identity line."""
        return {
            "clusters": list(self.clusters),
            "resources": list(self.resources),
            "scenarios": list(self.scenarios),
            "months": list(self.months),
            "heuristics": list(self.heuristics),
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "SweepGrid":
        """Inverse of :meth:`as_dict`."""
        return cls(
            clusters=tuple(str(c) for c in raw["clusters"]),
            resources=tuple(int(r) for r in raw["resources"]),
            scenarios=tuple(int(s) for s in raw["scenarios"]),
            months=tuple(int(m) for m in raw["months"]),
            heuristics=tuple(str(h) for h in raw["heuristics"]),
        )


@dataclass(frozen=True)
class SweepRow:
    """One evaluated point: its simulated makespan and chosen grouping.

    ``makespan is None`` marks an infeasible point — the heuristic could
    not produce a grouping there (e.g. knapsack on too few processors);
    recording the miss keeps resumes from retrying it forever.
    """

    point: SweepPoint
    makespan: float | None
    grouping: str

    def as_dict(self) -> dict[str, Any]:
        """JSON form used by the journal and the ``sweep`` codec."""
        return {
            "cluster": self.point.cluster,
            "resources": self.point.resources,
            "scenarios": self.point.scenarios,
            "months": self.point.months,
            "heuristic": self.point.heuristic,
            "makespan": self.makespan,
            "grouping": self.grouping,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "SweepRow":
        """Inverse of :meth:`as_dict`."""
        makespan = raw["makespan"]
        return cls(
            point=SweepPoint(
                cluster=str(raw["cluster"]),
                resources=int(raw["resources"]),
                scenarios=int(raw["scenarios"]),
                months=int(raw["months"]),
                heuristic=str(raw["heuristic"]),
            ),
            makespan=None if makespan is None else float(makespan),
            grouping=str(raw["grouping"]),
        )


@dataclass(frozen=True)
class SweepResult:
    """A sweep's evaluated rows, in grid order.

    Carries no timings or environment details on purpose: a resumed
    sweep must compare equal to an uninterrupted one.
    """

    grid: SweepGrid
    rows: tuple[SweepRow, ...]

    @property
    def complete(self) -> bool:
        """Whether every grid point has a row."""
        return len(self.rows) == self.grid.size

    def makespan_of(self, point: SweepPoint) -> float | None:
        """The makespan recorded for one point (KeyError if absent)."""
        for row in self.rows:
            if row.point == point:
                return row.makespan
        raise KeyError(point)

    def summary(self) -> dict[str, Any]:
        """Aggregate counts plus per-heuristic wins (JSON-friendly).

        A heuristic *wins* a ``(cluster, R, NS, NM)`` cell when it has
        the strictly smallest makespan there; exact ties award every
        tied heuristic.
        """
        evaluated = [row for row in self.rows if row.makespan is not None]
        wins: dict[str, int] = {h: 0 for h in self.grid.heuristics}
        cells: dict[tuple, list[SweepRow]] = {}
        for row in evaluated:
            cell = row.point.key()[:4]
            cells.setdefault(cell, []).append(row)
        for cell_rows in cells.values():
            best = min(row.makespan for row in cell_rows)
            for row in cell_rows:
                if row.makespan == best:
                    wins[row.point.heuristic] += 1
        return {
            "points": self.grid.size,
            "evaluated": len(self.rows),
            "feasible": len(evaluated),
            "infeasible": len(self.rows) - len(evaluated),
            "wins": wins,
        }


def _sweep_payload(result: SweepResult) -> dict[str, Any]:
    return {
        "grid": result.grid.as_dict(),
        "rows": [row.as_dict() for row in result.rows],
    }


def _sweep_restore(raw: dict[str, Any]) -> SweepResult:
    return SweepResult(
        grid=SweepGrid.from_dict(raw["grid"]),
        rows=tuple(SweepRow.from_dict(row) for row in raw["rows"]),
    )


register_codec("sweep", SweepResult, _sweep_payload, _sweep_restore)


# ---------------------------------------------------------------------------
# Evaluation (module-level: these run in worker processes).
# ---------------------------------------------------------------------------


def _eval_point(point: SweepPoint) -> SweepRow:
    """Plan and simulate one grid point through the cached kernels."""
    from repro.platform.benchmarks import benchmark_cluster

    cluster = benchmark_cluster(point.cluster, point.resources)
    spec = EnsembleSpec(point.scenarios, point.months)
    try:
        grouping = plan_grouping(cluster, spec, point.heuristic)
    except SchedulingError:
        return SweepRow(point, None, "")
    makespan = cached_simulated_makespan(grouping, spec, cluster.timing)
    return SweepRow(point, makespan, grouping.describe())


def _eval_chunk_batch(chunk: tuple[SweepPoint, ...]) -> tuple[SweepRow, ...]:
    """Evaluate one chunk with the batch planning kernels.

    Points are grouped by their shared ``(cluster, NS, NM, heuristic)``
    kernel and planned together over the resource axis via
    :func:`repro.core.batch.batch_plan_groupings`; simulation still runs
    through the scalar cached kernel, so every row is bit-identical to
    :func:`_eval_point`'s (the golden-parity suite asserts this).
    """
    from repro.core.batch import batch_plan_groupings
    from repro.platform.benchmarks import benchmark_timing

    by_kernel: dict[tuple[str, int, int, str], list[int]] = {}
    for position, point in enumerate(chunk):
        key = (point.cluster, point.scenarios, point.months, point.heuristic)
        by_kernel.setdefault(key, []).append(position)

    rows: list[SweepRow | None] = [None] * len(chunk)
    for (cluster_name, ns, nm, heuristic), positions in by_kernel.items():
        timing = benchmark_timing(cluster_name)
        spec = EnsembleSpec(ns, nm)
        groupings = batch_plan_groupings(
            timing, [chunk[p].resources for p in positions], spec, heuristic
        )
        for position, grouping in zip(positions, groupings, strict=True):
            point = chunk[position]
            if grouping is None:
                rows[position] = SweepRow(point, None, "")
            else:
                makespan = cached_simulated_makespan(grouping, spec, timing)
                rows[position] = SweepRow(point, makespan, grouping.describe())
    return tuple(row for row in rows if row is not None)


def _eval_chunk(
    chunk: tuple[SweepPoint, ...], use_cache: bool = True, batch: bool = False
) -> tuple[SweepRow, ...]:
    """Evaluate one chunk (the unit shipped to worker processes)."""
    previous = set_makespan_cache_enabled(use_cache)
    try:
        if batch:
            return _eval_chunk_batch(chunk)
        return tuple(_eval_point(point) for point in chunk)
    finally:
        set_makespan_cache_enabled(previous)


def _evaluate(
    chunks: list[tuple[SweepPoint, ...]],
    workers: int | None,
    use_cache: bool,
    batch: bool,
) -> Iterator[tuple[SweepRow, ...]]:
    """Yield chunk results in order, serially or across a process pool.

    Mirrors :func:`repro.experiments.runner.parallel_map`'s contract —
    ``workers in (None, 0, 1)`` is serial, order is preserved, parallel
    output is bit-identical to serial — but yields incrementally so the
    caller can journal each chunk the moment it completes.
    """
    if workers is not None and workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers!r}")
    if workers in (None, 0, 1) or len(chunks) <= 1:
        for chunk in chunks:
            yield _eval_chunk(chunk, use_cache, batch)
        return
    from concurrent.futures import ProcessPoolExecutor
    from functools import partial

    with ProcessPoolExecutor(max_workers=workers) as executor:
        yield from executor.map(
            partial(_eval_chunk, use_cache=use_cache, batch=batch), chunks
        )


# ---------------------------------------------------------------------------
# Journal.
# ---------------------------------------------------------------------------


def _grid_line(grid: SweepGrid) -> str:
    return dump_result(GenericResult(kind="sweep-grid", data={"grid": grid.as_dict()}))


def _rows_line(rows: Iterable[SweepRow]) -> str:
    return dump_result(
        GenericResult(
            kind="sweep-rows", data={"rows": [row.as_dict() for row in rows]}
        )
    )


def _load_journal(path: Path, grid: SweepGrid) -> dict[tuple, SweepRow] | None:
    """Rows already journaled for ``grid``, keyed by point identity.

    Returns ``None`` when the journal holds nothing usable (empty file,
    or a torn first line from a sweep killed mid-write) — the caller
    starts fresh.  A journal written for a *different* grid, or corrupt
    anywhere before its final line, raises
    :class:`~repro.exceptions.ConfigurationError`; only the final line
    may be torn, because every earlier line was flushed whole.
    """
    lines = path.read_text().splitlines()
    done: dict[tuple, SweepRow] = {}
    grid_seen = False
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        last = index == len(lines) - 1
        try:
            envelope = load_result(line)
        except ConfigurationError:
            if last:
                break  # torn trailing write — discard and re-evaluate
            raise ConfigurationError(
                f"corrupt sweep journal {path} at line {index + 1}"
            ) from None
        if not isinstance(envelope, GenericResult):
            raise ConfigurationError(
                f"sweep journal {path} line {index + 1} holds "
                f"{type(envelope).__name__}, not a sweep envelope"
            )
        if not grid_seen:
            if envelope.kind != "sweep-grid":
                raise ConfigurationError(
                    f"sweep journal {path} does not start with a grid line"
                )
            if envelope.data.get("grid") != grid.as_dict():
                raise ConfigurationError(
                    f"sweep journal {path} was written for a different grid; "
                    f"pass resume=False (or a fresh path) to overwrite it"
                )
            grid_seen = True
            continue
        if envelope.kind != "sweep-rows":
            raise ConfigurationError(
                f"sweep journal {path} line {index + 1} has unexpected "
                f"kind {envelope.kind!r}"
            )
        for raw in envelope.data.get("rows", ()):
            try:
                row = SweepRow.from_dict(raw)
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"sweep journal {path} line {index + 1} holds a "
                    f"malformed row: {exc}"
                ) from exc
            done[row.point.key()] = row
    return done if grid_seen else None


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def run_sweep(
    grid: SweepGrid,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    journal_path: str | Path | None = None,
    resume: bool = True,
    max_chunks: int | None = None,
    use_cache: bool = True,
    batch: bool | None = None,
) -> SweepResult:
    """Evaluate a grid, journaling each chunk so the sweep is resumable.

    Parameters
    ----------
    workers:
        ``None``/``0``/``1`` evaluates serially; larger values fan the
        chunks out over a process pool.  Parallel results are
        bit-identical to serial ones.
    chunk_size:
        Points per chunk (default :data:`DEFAULT_CHUNK_SIZE`).  The
        journal advances one chunk at a time, so smaller chunks lose
        less work to an interruption.
    journal_path:
        NDJSON file to append completed chunks to.  When it already
        holds rows for this grid and ``resume`` is true, those points
        are skipped; set ``resume=False`` to overwrite.  ``None``
        disables journaling.
    max_chunks:
        Stop after this many chunks — a work budget.  The returned
        result is then partial (``result.complete`` is false) and a
        later call with the same journal finishes the remainder.
    use_cache:
        Route evaluation through the memoized kernels of
        :mod:`repro.core.makespan` (on by default; off recomputes every
        point, which the benchmarks use as the baseline).
    batch:
        Plan each chunk through the vectorized kernels of
        :mod:`repro.core.batch` instead of point-by-point scalar calls.
        ``None`` (the default) auto-selects: batch when observability is
        disabled (no cell needs a trace or per-plan metrics), scalar
        otherwise.  ``False`` forces the scalar oracle path; ``True``
        forces batch even with observability on (rows are identical
        either way — only the per-plan spans/metrics differ).

    Returns the rows evaluated so far — journaled history plus this
    call's work — ordered by grid position.
    """
    use_batch = (not obs.enabled()) if batch is None else bool(batch)
    points = grid.points()
    journal = Path(journal_path) if journal_path is not None else None
    done: dict[tuple, SweepRow] = {}
    fresh_journal = journal is not None
    if journal is not None and resume and journal.exists():
        loaded = _load_journal(journal, grid)
        if loaded is not None:
            done = loaded
            fresh_journal = False

    pending = [point for point in points if point.key() not in done]
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    elif chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size!r}")
    chunks = [
        tuple(pending[i : i + chunk_size])
        for i in range(0, len(pending), chunk_size)
    ]
    if max_chunks is not None:
        if max_chunks < 0:
            raise ConfigurationError(f"max_chunks must be >= 0, got {max_chunks!r}")
        chunks = chunks[:max_chunks]

    handle = None
    if journal is not None:
        handle = journal.open("w" if fresh_journal else "a")
        if fresh_journal:
            handle.write(_grid_line(grid) + "\n")
            handle.flush()

    started = time.perf_counter()
    evaluated = 0
    try:
        with obs.span(
            "sweep.run", points=grid.size, pending=len(pending), chunks=len(chunks)
        ):
            for rows in _evaluate(chunks, workers, use_cache, use_batch):
                for row in rows:
                    done[row.point.key()] = row
                evaluated += len(rows)
                if handle is not None:
                    handle.write(_rows_line(rows) + "\n")
                    handle.flush()
                obs.inc("sweep.points", len(rows))
                obs.inc("sweep.chunks")
    finally:
        if handle is not None:
            handle.close()

    if obs.enabled():
        obs.observe("sweep.seconds", time.perf_counter() - started)
        obs.inc("sweep.runs")
        stats = makespan_cache_stats()
        for kind, counters in stats.items():
            obs.set_gauge(
                "makespan.cache_size", counters["size"], kind=kind
            )
        obs.set_gauge("sweep.resumed_points", len(done) - evaluated)

    rows = tuple(done[point.key()] for point in points if point.key() in done)
    return SweepResult(grid=grid, rows=rows)
