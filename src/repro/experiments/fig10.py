"""Figure 10 — grid gains with DAG repartition (Algorithm 1).

"Figure 10 shows the gains obtained by the different heuristics [...]
compared to the basic heuristic.  Clusters have all the same number of
resources.  The X axis represents the number of clusters and the number
of resources per cluster, hence 2.25 represents the results for two
clusters with 25 resources each."  Clusters take their speeds from the
five benchmarked ones (cycled); 2 to 5 clusters, 11 to 99 processors
each; NS = 10.

Expected shape: best gains around 12 %; flat zero-gain plateaus where
the slowest cluster pins the global makespan and every heuristic picks
the same grouping there; gains shrink as clusters are added (more
aggregate resources make the basic heuristic good enough).

For each grid configuration and each heuristic, every cluster's
performance vector (makespan of 1..NS scenarios under *that* heuristic)
feeds Algorithm 1; the configuration's makespan is the slowest assigned
cluster's.  Performance vectors are memoized across configurations —
cluster speed × resources × heuristic repeats many times in the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.gains import gain_percent
from repro.analysis.plotting import ascii_plot
from repro.analysis.tables import series_table
from repro.core.heuristics import HeuristicName
from repro.core.performance_vector import performance_vector
from repro.core.repartition import repartition_dags
from repro.experiments.runner import ALL_HEURISTICS, cycle_names, resource_sweep
from repro.platform.benchmarks import benchmark_cluster
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["Fig10Result", "grid_makespan", "run", "render", "main"]


@dataclass(frozen=True)
class Fig10Result:
    """Gains per grid configuration.

    ``x_axis`` uses the paper's encoding ``n_clusters + resources/100``;
    ``gains[heuristic][i]`` is the gain (%) at configuration ``i``.
    """

    configurations: tuple[tuple[int, int], ...]  # (n_clusters, resources)
    x_axis: tuple[float, ...]
    makespans: dict[str, tuple[float, ...]]
    gains: dict[str, tuple[float, ...]]
    scenarios: int
    months: int

    def max_gain(self, heuristic: str) -> float:
        """Best gain of one heuristic over the whole sweep."""
        return max(self.gains[heuristic])


class _VectorCache:
    """Memo for performance vectors keyed by (speed, R, heuristic)."""

    def __init__(self, spec: EnsembleSpec) -> None:
        self.spec = spec
        self._store: dict[tuple[str, int, str], list[float]] = {}

    def get(self, speed_name: str, resources: int, heuristic: HeuristicName) -> list[float]:
        key = (speed_name, resources, heuristic.value)
        if key not in self._store:
            cluster = replace(
                benchmark_cluster(speed_name, resources), name=speed_name
            )
            self._store[key] = performance_vector(cluster, self.spec, heuristic)
        return self._store[key]


def grid_makespan(
    speed_names: list[str],
    resources: int,
    heuristic: HeuristicName,
    cache: _VectorCache,
) -> float:
    """Makespan of one grid configuration under one heuristic."""
    performance = [
        cache.get(name, resources, heuristic) for name in speed_names
    ]
    return repartition_dags(performance, cache.spec.scenarios).makespan


def run(
    *,
    scenarios: int = 10,
    months: int = 60,
    cluster_counts: tuple[int, ...] = (2, 3, 4, 5),
    r_min: int = 11,
    r_max: int = 99,
    step: int = 4,
) -> Fig10Result:
    """Run the grid gain sweep.

    ``step`` sub-samples the per-cluster resource axis (the paper plots a
    dense curve; step=4 keeps the default run under a minute while
    preserving the plateaus — pass step=1 for the full sweep).
    """
    spec = EnsembleSpec(scenarios, months)
    cache = _VectorCache(spec)
    resources_list = resource_sweep(r_min, r_max, step)

    configurations: list[tuple[int, int]] = []
    xs: list[float] = []
    makespans: dict[str, list[float]] = {h.value: [] for h in ALL_HEURISTICS}
    from repro.platform.benchmarks import REFERENCE_CLUSTER_SPEEDS

    for n in cluster_counts:
        speed_names = cycle_names(REFERENCE_CLUSTER_SPEEDS, n)
        for r in resources_list:
            configurations.append((n, r))
            xs.append(n + r / 100.0)
            for heuristic in ALL_HEURISTICS:
                makespans[heuristic.value].append(
                    grid_makespan(speed_names, r, heuristic, cache)
                )

    gains: dict[str, tuple[float, ...]] = {}
    base = makespans[HeuristicName.BASIC.value]
    for heuristic in ALL_HEURISTICS:
        if heuristic is HeuristicName.BASIC:
            continue
        gains[heuristic.value] = tuple(
            gain_percent(b, m)
            for b, m in zip(base, makespans[heuristic.value], strict=True)
        )
    return Fig10Result(
        configurations=tuple(configurations),
        x_axis=tuple(xs),
        makespans={k: tuple(v) for k, v in makespans.items()},
        gains=gains,
        scenarios=scenarios,
        months=months,
    )


def render(result: Fig10Result, *, plot: bool = True) -> str:
    """The figure's gain curves plus the underlying table."""
    parts: list[str] = []
    xs = list(result.x_axis)
    series = {name: list(values) for name, values in result.gains.items()}
    if plot:
        parts.append(
            ascii_plot(
                xs,
                series,
                x_label="clusters + resources/100",
                y_label="gain (%)",
                title=(
                    f"Figure 10: gains with DAG repartition on "
                    f"{min(c for c, _ in result.configurations)}-"
                    f"{max(c for c, _ in result.configurations)} clusters"
                ),
            )
        )
    parts.append(series_table("n.RR", xs, series))
    summary = ", ".join(
        f"{name}: max gain {result.max_gain(name):+.1f}%"
        for name in result.gains
    )
    parts.append(f"summary: {summary}")
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - thin CLI shim
    """Regenerate and print the figure at default parameters."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
