"""Figures 3–6 — the schedule-shape illustrations, detected structurally.

The paper's Figures 3–6 illustrate three qualitative phenomena of the
basic schedule; this driver *constructs* a configuration for each,
simulates it, and verifies the phenomenon is actually present in the
trace (not just drawn):

* **Figure 3** — ``R2 = 0``: every post task starts after the last main
  of the whole schedule (no processor was ever free earlier).
* **Figure 4** — undersized post pool: some post task *overpasses*,
  i.e. starts after a later wave of mains has already begun.
* **Figures 5–6** — incomplete final wave: post tasks execute on
  processors of retired groups (``Rleft``) while the final wave's mains
  are still running.

Each detection returns the witnessing task, and ``render`` prints the
Gantt chart next to it — the figure plus its proof.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.grouping import Grouping
from repro.platform.benchmarks import benchmark_cluster
from repro.platform.cluster import ClusterSpec
from repro.simulation.engine import simulate_on_cluster
from repro.simulation.events import SimulationResult
from repro.simulation.groups import proc_ranges
from repro.simulation.trace import render_gantt
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["ShapeCase", "run", "render", "main"]


@dataclass(frozen=True)
class ShapeCase:
    """One illustrated phenomenon, with its witness."""

    figure: str
    description: str
    result: SimulationResult
    phenomenon_present: bool
    witness: str


def _detect_all_posts_trail(result: SimulationResult) -> tuple[bool, str]:
    """Figure 3: every post starts at/after the main phase's end."""
    posts = result.records_of_kind("post")
    earliest = min(posts, key=lambda r: r.start)
    ok = earliest.start >= result.main_makespan - 1e-9
    return ok, (
        f"earliest post (s{earliest.scenario},m{earliest.month}) starts at "
        f"{earliest.start:.0f}s vs mains ending {result.main_makespan:.0f}s"
    )


def _detect_overpass(result: SimulationResult) -> tuple[bool, str]:
    """Figure 4: some post starts after a strictly later main started."""
    mains = result.records_of_kind("main")
    posts = result.records_of_kind("post")
    for post in posts:
        its_main = result.record_for("main", post.scenario, post.month)
        later_mains = [m for m in mains if m.start > its_main.end + 1e-9]
        if any(post.start > m.start + 1e-9 for m in later_mains):
            return True, (
                f"post (s{post.scenario},m{post.month}) starts at "
                f"{post.start:.0f}s, after later main waves began"
            )
    return False, "no overpassing post found"


def _detect_rleft_reuse(result: SimulationResult) -> tuple[bool, str]:
    """Figures 5-6: a post runs on a group processor before mains all end."""
    group_procs = {
        proc for rng in proc_ranges(result.grouping) for proc in rng
    }
    for post in result.records_of_kind("post"):
        if (
            post.procs_start in group_procs
            and post.start < result.main_makespan - 1e-9
        ):
            return True, (
                f"post (s{post.scenario},m{post.month}) ran on retired group "
                f"processor {post.procs_start} at {post.start:.0f}s, while "
                f"mains ran until {result.main_makespan:.0f}s"
            )
    return False, "no Rleft reuse found"


def run(*, cluster: ClusterSpec | None = None) -> list[ShapeCase]:
    """Build, simulate, and verify the three illustrated phenomena."""
    cluster = cluster if cluster is not None else benchmark_cluster("sagittaire", 22)
    cases: list[ShapeCase] = []

    # Figure 3: R2 = 0 — two full-width groups, posts must trail.
    result = simulate_on_cluster(
        cluster,
        Grouping((11, 11), 0, cluster.resources),
        EnsembleSpec(4, 6),
        record_trace=True,
    )
    present, witness = _detect_all_posts_trail(result)
    cases.append(
        ShapeCase("Figure 3", "no post pool (R2 = 0)", result, present, witness)
    )

    # Figure 4: starved pool.  Overpassing needs waves that produce
    # posts faster than the pool drains them: with the real 1177+ s
    # mains one pool processor digests 6+ posts per wave, so we shorten
    # the mains (a very fast hypothetical machine, TG ≈ 2.2·TP) exactly
    # as the paper's illustration does.
    from repro.platform.timing import TableTimingModel

    fast = ClusterSpec(
        "illustration",
        21,
        TableTimingModel({g: 400.0 for g in range(4, 12)}, post_seconds=180.0),
    )
    # 4 posts per 400-s wave vs one pool processor draining ~2.2: the
    # backlog grows every wave and spills past later waves.
    result = simulate_on_cluster(
        fast,
        Grouping((5, 5, 5, 5), 1, fast.resources),
        EnsembleSpec(8, 6),
        record_trace=True,
    )
    present, witness = _detect_overpass(result)
    cases.append(
        ShapeCase(
            "Figure 4", "post tasks overpassing a starved pool", result,
            present, witness,
        )
    )

    # Figures 5-6: incomplete final wave -> Rleft reuse.
    result = simulate_on_cluster(
        cluster,
        Grouping((5, 5, 5, 5), 2, cluster.resources),
        EnsembleSpec(5, 5),
        record_trace=True,
    )
    present, witness = _detect_rleft_reuse(result)
    cases.append(
        ShapeCase(
            "Figures 5-6", "final incomplete wave, Rleft absorbs posts",
            result, present, witness,
        )
    )
    return cases


def render(cases: list[ShapeCase], *, gantt: bool = True) -> str:
    """Each case's verdict, witness, and (optionally) Gantt chart."""
    parts: list[str] = []
    for case in cases:
        status = "PRESENT" if case.phenomenon_present else "ABSENT"
        parts.append(
            f"{case.figure}: {case.description} — {status}\n  {case.witness}"
        )
        if gantt:
            parts.append(render_gantt(case.result, width=90, max_rows=22))
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - thin CLI shim
    """Regenerate and print the schedule-shape figures."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
