"""Figure 9 — the execution-steps protocol, rendered from a live run.

Figure 9 is a diagram, not a measurement: the six protocol steps
between client and clusters.  This driver *executes* the protocol on a
small grid through the middleware and renders the resulting message log
as an ASCII sequence diagram — the figure regenerated from behaviour
rather than drawn by hand, so it can never drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.middleware.client import CampaignResult
from repro.middleware.deployment import deploy
from repro.middleware.network import MessageLogEntry
from repro.platform.benchmarks import benchmark_grid
from repro.platform.grid import GridSpec

__all__ = ["Fig9Result", "run", "render", "main"]

#: The paper's step numbering by message kind and direction.
_STEP_OF_KIND = {
    "ServiceRequest": 1,
    "PerformanceReply": 3,
    "PerformanceReplies": 3,
    "ExecutionOrder": 5,
    "ExecutionReport": 6,
}


@dataclass(frozen=True)
class Fig9Result:
    """A campaign plus the protocol exchange that produced it."""

    campaign: CampaignResult
    log: tuple[MessageLogEntry, ...]
    participants: tuple[str, ...]

    def kinds_in_order(self) -> list[str]:
        """Message kinds in transmission order."""
        return [entry.kind for entry in self.log]


def run(
    *,
    grid: GridSpec | None = None,
    scenarios: int = 4,
    months: int = 6,
    heuristic: str = "knapsack",
) -> Fig9Result:
    """Execute the 6-step protocol and capture the exchange."""
    grid = grid if grid is not None else benchmark_grid(2, 25)
    client, agent, _seds = deploy(grid)
    campaign = client.run_campaign(scenarios, months, heuristic)
    participants = (client.name, agent.name, *grid.names)
    return Fig9Result(campaign, agent.network.log, participants)


def render(result: Fig9Result) -> str:
    """The exchange as an ASCII sequence diagram with paper step labels."""
    participants = list(result.participants)
    col_width = max(14, max(len(p) for p in participants) + 4)
    positions = {p: i * col_width + col_width // 2 for i, p in enumerate(participants)}
    total_width = col_width * len(participants)

    def lifeline_row() -> str:
        row = [" "] * total_width
        for p in participants:
            row[positions[p]] = "|"
        return "".join(row)

    lines: list[str] = ["Figure 9: execution steps (live protocol trace)", ""]
    header = [" "] * total_width
    for p in participants:
        start = positions[p] - len(p) // 2
        header[start : start + len(p)] = p
    lines.append("".join(header))
    lines.append(lifeline_row())

    for entry in result.log:
        src, dst = positions[entry.sender], positions[entry.receiver]
        row = [" "] * total_width
        for p in participants:
            row[positions[p]] = "|"
        lo, hi = min(src, dst), max(src, dst)
        for i in range(lo + 1, hi):
            row[i] = "-"
        row[dst] = ">" if dst > src else "<"
        step = _STEP_OF_KIND.get(entry.kind, "?")
        label = f" ({step}) {entry.kind} [{entry.nbytes} B]"
        lines.append("".join(row) + label)
        lines.append(lifeline_row())

    lines.append("")
    lines.append(
        "steps: (1) request  (2) per-cluster knapsack performance vectors"
    )
    lines.append(
        "       (3) replies  (4) Algorithm 1 on the client  (5) orders  "
        "(6) execution"
    )
    lines.append("")
    lines.append(result.campaign.describe())
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - thin CLI shim
    """Regenerate and print the protocol diagram at default parameters."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
