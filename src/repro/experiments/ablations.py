"""Ablation studies backing the design decisions in DESIGN.md.

Four studies, each with its own ``run_*`` function:

``run_analytic_vs_simulated``
    How tight are Equations 1–5 against the event simulator?  The basic
    heuristic *selects* G analytically; if the formulas mis-ranked
    groupings badly, the whole Figure 8 baseline would be suspect.

``run_solver_comparison``
    Exact DP vs greedy knapsack: objective gap and the resulting
    makespan gap.  Quantifies what the paper's exact formulation buys
    over the obvious cheap heuristic.

``run_months_sensitivity``
    Gains vs NM.  Justifies running the figures at NM=60 instead of the
    paper's 1800 (a 30x saving) by showing the gain curves stabilize.

``run_serial_fraction_sensitivity``
    The calibration study behind ``DEFAULT_SERIAL_FRACTION = 0.5`` (see
    :mod:`repro.platform.benchmarks`): how the optimal-grouping
    staircase responds to the Amdahl serial fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.gains import gains_over_baseline
from repro.analysis.tables import format_table
from repro.core.basic import best_uniform_group
from repro.core.grouping import Grouping
from repro.core.knapsack_grouping import knapsack_grouping, knapsack_problem_for
from repro.core.makespan import analytic_breakdown
from repro.experiments.runner import makespans_by_heuristic
from repro.knapsack.dp import solve_dp
from repro.knapsack.greedy import solve_greedy
from repro.platform.benchmarks import benchmark_cluster
from repro.platform.cluster import ClusterSpec
from repro.platform.timing import AmdahlTimingModel, reference_timing
from repro.simulation.engine import simulate
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = [
    "AnalyticGap",
    "run_analytic_vs_simulated",
    "run_solver_comparison",
    "run_months_sensitivity",
    "run_serial_fraction_sensitivity",
    "run_optimality_gap",
    "run_online_vs_static",
    "run_cpa_comparison",
    "run_scenarios_sensitivity",
    "main",
]


@dataclass(frozen=True)
class AnalyticGap:
    """One (R, G) comparison of formula vs simulator."""

    resources: int
    group_size: int
    case: str
    analytic: float
    simulated: float

    @property
    def relative_error(self) -> float:
        """``(analytic − simulated) / simulated``; positive = formula high."""
        return (self.analytic - self.simulated) / self.simulated


def run_analytic_vs_simulated(
    *,
    scenarios: int = 10,
    months: int = 60,
    r_min: int = 11,
    r_max: int = 120,
    step: int = 1,
) -> list[AnalyticGap]:
    """Compare Equations 1–5 with the simulator over every (R, G)."""
    timing = reference_timing()
    spec = EnsembleSpec(scenarios, months)
    gaps: list[AnalyticGap] = []
    for r in range(r_min, r_max + 1, step):
        for g in timing.group_sizes:
            if r // g == 0:
                continue
            breakdown = analytic_breakdown(
                r, g, scenarios, months, timing.main_time(g), timing.post_time()
            )
            nbmax = min(scenarios, r // g)
            grouping = Grouping.uniform(g, nbmax, r)
            simulated = simulate(grouping, spec, timing).makespan
            gaps.append(
                AnalyticGap(r, g, breakdown.case, breakdown.makespan, simulated)
            )
    return gaps


def run_solver_comparison(
    *,
    scenarios: int = 10,
    months: int = 60,
    r_min: int = 11,
    r_max: int = 120,
    step: int = 1,
    cluster_name: str = "sagittaire",
) -> list[dict[str, float]]:
    """DP vs greedy knapsack: objective value and makespan per R."""
    spec = EnsembleSpec(scenarios, months)
    rows: list[dict[str, float]] = []
    for r in range(r_min, r_max + 1, step):
        cluster = benchmark_cluster(cluster_name, r)
        problem = knapsack_problem_for(cluster, spec)
        dp = solve_dp(problem)
        greedy = solve_greedy(problem)
        ms_dp = simulate(
            knapsack_grouping(cluster, spec, solver=solve_dp), spec, cluster.timing
        ).makespan
        ms_greedy = simulate(
            knapsack_grouping(cluster, spec, solver=solve_greedy),
            spec,
            cluster.timing,
        ).makespan
        rows.append(
            {
                "R": float(r),
                "dp_value": dp.value,
                "greedy_value": greedy.value,
                "value_gap_pct": (dp.value - greedy.value) / dp.value * 100.0,
                "dp_makespan": ms_dp,
                "greedy_makespan": ms_greedy,
                "makespan_gap_pct": (ms_greedy - ms_dp) / ms_dp * 100.0,
            }
        )
    return rows


def run_months_sensitivity(
    *,
    scenarios: int = 10,
    months_values: tuple[int, ...] = (12, 30, 60, 180, 600),
    resources: tuple[int, ...] = (15, 30, 53, 75, 100),
    cluster_name: str = "chti",
) -> dict[int, dict[int, dict[str, float]]]:
    """Gains per (NM, R): ``result[months][R][heuristic] = gain%``."""
    out: dict[int, dict[int, dict[str, float]]] = {}
    for months in months_values:
        spec = EnsembleSpec(scenarios, months)
        out[months] = {}
        for r in resources:
            cluster = benchmark_cluster(cluster_name, r)
            makespans = makespans_by_heuristic(cluster, spec)
            out[months][r] = gains_over_baseline(makespans)
    return out


def run_serial_fraction_sensitivity(
    *,
    scenarios: int = 10,
    months: int = 60,
    fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 0.6),
    r_min: int = 11,
    r_max: int = 120,
) -> dict[float, list[int]]:
    """Optimal-grouping staircase per Amdahl serial fraction."""
    spec = EnsembleSpec(scenarios, months)
    out: dict[float, list[int]] = {}
    for fraction in fractions:
        timing = AmdahlTimingModel.calibrated(1262.0, serial_fraction=fraction)
        out[fraction] = [
            best_uniform_group(ClusterSpec("ref", r, timing), spec)
            for r in range(r_min, r_max + 1)
        ]
    return out


def run_optimality_gap(
    *,
    scenarios: int = 6,
    months: int = 12,
    resources: tuple[int, ...] = (11, 15, 19, 23, 27, 31, 35),
    cluster_name: str = "grelon",
    limit: int = 200_000,
) -> list[dict[str, float]]:
    """Heuristics vs the simulated-optimal grouping (exhaustive search).

    For each resource count: enumerate every feasible group multiset,
    simulate all of them, and report each heuristic's relative gap to
    the best.  Moderate dimensions only — the candidate count grows
    combinatorially (hence the smaller default NS than the figures).
    """
    from repro.core.exhaustive import exhaustive_grouping

    spec = EnsembleSpec(scenarios, months)
    rows: list[dict[str, float]] = []
    for r in resources:
        cluster = benchmark_cluster(cluster_name, r)
        optimum = exhaustive_grouping(cluster, spec, limit=limit)
        row: dict[str, float] = {
            "R": float(r),
            "candidates": float(optimum.candidates),
            "optimal_makespan": optimum.best_makespan,
        }
        for heuristic, makespan in makespans_by_heuristic(
            cluster, spec
        ).items():
            row[f"{heuristic}_gap_pct"] = optimum.gap_of(makespan)
        rows.append(row)
    return rows


def run_online_vs_static(
    *,
    scenarios: int = 10,
    months: int = 60,
    resources: tuple[int, ...] = (15, 22, 30, 40, 53, 70, 90, 110),
    cluster_name: str = "sagittaire",
) -> list[dict[str, float]]:
    """Static groups vs the online no-groups baseline.

    Tests the paper's core structural commitment: do pre-computed
    disjoint groups beat a pool with per-task allocation?  Two online
    policies are compared (see :mod:`repro.simulation.online`); the
    knapsack-aware one is expected to collapse onto the static knapsack
    solution, showing that the knapsack *structure* — not adaptivity —
    carries the gains.
    """
    from repro.simulation.online import simulate_online

    spec = EnsembleSpec(scenarios, months)
    rows: list[dict[str, float]] = []
    for r in resources:
        cluster = benchmark_cluster(cluster_name, r)
        static_knap = simulate(
            knapsack_grouping(cluster, spec), spec, cluster.timing
        ).makespan
        greedy = simulate_online(
            spec, cluster.timing, r, policy="greedy-max"
        ).makespan
        aware = simulate_online(
            spec, cluster.timing, r, policy="knapsack-aware"
        ).makespan
        rows.append(
            {
                "R": float(r),
                "static_knapsack": static_knap,
                "online_greedy_max": greedy,
                "online_knapsack_aware": aware,
                "greedy_penalty_pct": (greedy - static_knap) / static_knap * 100.0,
                "aware_penalty_pct": (aware - static_knap) / static_knap * 100.0,
            }
        )
    return rows


def run_cpa_comparison(
    *,
    scenarios: int = 10,
    months: int = 60,
    resources: tuple[int, ...] = (15, 22, 30, 40, 53, 70, 90, 110),
    cluster_name: str = "sagittaire",
) -> list[dict[str, float]]:
    """The related-work baseline (CPA, §3.2) measured against the paper.

    The paper argues CPA does not apply to ensembles ("no single
    critical path"); this quantifies the claim: CPA's width rule ignores
    how groups tile R, so at awkward resource counts it strands whole
    groups' worth of processors.
    """
    from repro.core.cpa import cpa_grouping

    spec = EnsembleSpec(scenarios, months)
    rows: list[dict[str, float]] = []
    for r in resources:
        cluster = benchmark_cluster(cluster_name, r)
        ms_cpa = simulate(
            cpa_grouping(cluster, spec), spec, cluster.timing
        ).makespan
        ms = makespans_by_heuristic(cluster, spec)
        rows.append(
            {
                "R": float(r),
                "cpa": ms_cpa,
                "basic": ms["basic"],
                "knapsack": ms["knapsack"],
                "cpa_vs_basic_pct": (ms_cpa - ms["basic"]) / ms["basic"] * 100.0,
                "cpa_vs_knapsack_pct": (
                    (ms_cpa - ms["knapsack"]) / ms["knapsack"] * 100.0
                ),
            }
        )
    return rows


def run_scenarios_sensitivity(
    *,
    scenarios_values: tuple[int, ...] = (2, 5, 10, 15, 20),
    months: int = 60,
    resources: tuple[int, ...] = (30, 53, 90),
    cluster_name: str = "grelon",
) -> dict[int, dict[int, dict[str, float]]]:
    """Gains per (NS, R): how ensemble size moves the curves.

    The paper fixes NS = 10 ("the number of simulations is going to be
    around 10"); this sweep answers the natural reviewer question of
    whether the knapsack's advantage is an artifact of that choice.
    ``result[scenarios][R][heuristic] = gain%``.
    """
    out: dict[int, dict[int, dict[str, float]]] = {}
    for scenarios in scenarios_values:
        spec = EnsembleSpec(scenarios, months)
        out[scenarios] = {}
        for r in resources:
            cluster = benchmark_cluster(cluster_name, r)
            out[scenarios][r] = gains_over_baseline(
                makespans_by_heuristic(cluster, spec)
            )
    return out


def main() -> None:  # pragma: no cover - thin CLI shim
    """Run all ablation studies at reduced resolution and print digests."""
    gaps = run_analytic_vs_simulated(step=4)
    errors = [abs(g.relative_error) for g in gaps]
    print(
        f"analytic vs simulated over {len(gaps)} (R,G) points: "
        f"mean |err| {sum(errors) / len(errors) * 100:.2f}%, "
        f"max |err| {max(errors) * 100:.2f}%"
    )

    rows = run_solver_comparison(step=8)
    print("\nknapsack DP vs greedy:")
    print(
        format_table(
            ["R", "value gap %", "makespan gap %"],
            [[r["R"], r["value_gap_pct"], r["makespan_gap_pct"]] for r in rows],
        )
    )

    sens = run_months_sensitivity(months_values=(12, 60, 180))
    print("\ngain3 (knapsack) vs NM:")
    months_values = sorted(sens)
    resources = sorted(next(iter(sens.values())))
    print(
        format_table(
            ["R", *(f"NM={m}" for m in months_values)],
            [
                [r, *(sens[m][r]["knapsack"] for m in months_values)]
                for r in resources
            ],
        )
    )

    online_rows = run_online_vs_static(months=12)
    print("\nstatic groups vs online no-groups baseline (penalty %):")
    print(
        format_table(
            ["R", "greedy-max", "knapsack-aware"],
            [
                [row["R"], row["greedy_penalty_pct"], row["aware_penalty_pct"]]
                for row in online_rows
            ],
        )
    )

    cpa_rows = run_cpa_comparison(months=12)
    print("\nCPA baseline (related work, §3.2) vs the paper's heuristics (%):")
    print(
        format_table(
            ["R", "CPA vs basic", "CPA vs knapsack"],
            [
                [row["R"], row["cpa_vs_basic_pct"], row["cpa_vs_knapsack_pct"]]
                for row in cpa_rows
            ],
        )
    )

    gaps_rows = run_optimality_gap()
    print("\noptimality gap vs exhaustive search (%):")
    heuristics = ["basic", "redistribute", "allpost_end", "knapsack"]
    print(
        format_table(
            ["R", "candidates", *heuristics],
            [
                [
                    row["R"],
                    int(row["candidates"]),
                    *(row[f"{h}_gap_pct"] for h in heuristics),
                ]
                for row in gaps_rows
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
