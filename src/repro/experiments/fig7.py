"""Figure 7 — optimal uniform grouping vs resource count.

"All the 8 possibilities for the parameter G (4 → 11) are tested and the
one yielding the smallest makespan is chosen.  The optimal grouping for
various number of resources (11 → 120) is plotted in Figure 7."
(NS = 10 scenario simulations.)

Expected shape: an oscillating staircase — small resource counts favour
mid-size groups that tile R with few leftovers, and from
``R ≥ NS × 11 = 110`` every scenario gets a full 11-processor group, so
the curve pins at 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.plotting import ascii_plot
from repro.analysis.tables import series_table
from repro.core.basic import best_uniform_group
from repro.experiments.runner import resource_sweep
from repro.platform.cluster import ClusterSpec
from repro.platform.timing import TimingModel, reference_timing
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["Fig7Result", "run", "render", "main"]


@dataclass(frozen=True)
class Fig7Result:
    """Optimal grouping per resource count."""

    resources: tuple[int, ...]
    best_group: tuple[int, ...]
    scenarios: int
    months: int

    def as_series(self) -> dict[str, tuple[int, ...]]:
        """The figure's single series."""
        return {"best grouping G*": self.best_group}

    def group_at(self, resources: int) -> int:
        """The optimal ``G`` at one resource count."""
        return self.best_group[self.resources.index(resources)]


def run(
    *,
    scenarios: int = 10,
    months: int = 60,
    r_min: int = 11,
    r_max: int = 120,
    step: int = 1,
    timing: TimingModel | None = None,
) -> Fig7Result:
    """Compute the optimal grouping staircase.

    ``months`` defaults to 60 rather than the paper's 1800 — the chosen
    ``G`` depends on wave counts, which scale linearly with NM, so the
    staircase is insensitive to it (the ablation suite verifies this);
    60 keeps the CLI run instant.
    """
    timing = timing if timing is not None else reference_timing()
    spec = EnsembleSpec(scenarios, months)
    resources = resource_sweep(r_min, r_max, step)
    best = [
        best_uniform_group(ClusterSpec("reference", r, timing), spec)
        for r in resources
    ]
    return Fig7Result(tuple(resources), tuple(best), scenarios, months)


def render(result: Fig7Result, *, plot: bool = True) -> str:
    """The figure as an ASCII chart plus the underlying table."""
    xs = [float(r) for r in result.resources]
    series = {
        name: [float(v) for v in values]
        for name, values in result.as_series().items()
    }
    parts: list[str] = []
    if plot:
        parts.append(
            ascii_plot(
                xs,
                series,
                x_label="resources (processors)",
                y_label="best grouping",
                title=(
                    f"Figure 7: optimal groupings for {result.scenarios} "
                    f"scenario simulations"
                ),
            )
        )
    parts.append(
        series_table(
            "R",
            list(result.resources),
            {"G*": list(result.best_group)},
            float_format="{:.0f}",
        )
    )
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - thin CLI shim
    """Regenerate and print the figure at default parameters."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
