"""Global observability state: one switch, one registry, one tracer.

Instrumentation sites throughout the library call the module-level
helpers (:func:`inc`, :func:`set_gauge`, :func:`observe`, :func:`span`,
:func:`add_span`).  All of them fast-path to a no-op while observability
is disabled — the default — so the figure sweeps and benchmarks pay one
attribute read and branch per call site, nothing more.  Hot loops hoist
even that with ``if enabled():``.

:func:`session` is the scoped way to turn collection on: it resets the
registry and tracer, enables collection for the ``with`` body, and
restores the previous switch state afterwards — the CLI wraps every
``--metrics-out`` / ``--trace-out`` run in one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "enabled",
    "enable",
    "disable",
    "reset",
    "registry",
    "tracer",
    "session",
    "inc",
    "set_gauge",
    "observe",
    "span",
    "add_span",
]

_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()


class _NullSpan:
    """Shared, stateless no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def enabled() -> bool:
    """Whether observability collection is currently on."""
    return _enabled


def enable() -> None:
    """Turn collection on (metrics and spans start recording)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn collection off (instrumentation reverts to no-ops)."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Discard all collected metrics and spans (fresh registry + tracer)."""
    global _registry, _tracer
    _registry = MetricsRegistry()
    _tracer = Tracer()


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def tracer() -> Tracer:
    """The process-global span tracer."""
    return _tracer


@contextmanager
def session(*, fresh: bool = True) -> Iterator[tuple[MetricsRegistry, Tracer]]:
    """Enable collection for a scoped block; restore the switch after.

    Yields ``(registry, tracer)`` for export at the end of the block.
    ``fresh`` (default) resets both first so the dump covers exactly
    this session.
    """
    global _enabled
    previous = _enabled
    if fresh:
        reset()
    _enabled = True
    try:
        yield _registry, _tracer
    finally:
        _enabled = previous


def inc(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a counter series; no-op while disabled."""
    if _enabled:
        _registry.counter(name, **labels).inc(amount)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge series; no-op while disabled."""
    if _enabled:
        _registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: object) -> None:
    """Record a histogram sample; no-op while disabled."""
    if _enabled:
        _registry.histogram(name, **labels).observe(value)


def span(name: str, **args: object):
    """A wall-clock span context manager; shared no-op while disabled."""
    if _enabled:
        return _tracer.span(name, **args)
    return _NULL_SPAN


def add_span(
    name: str,
    *,
    ts: float,
    dur: float,
    pid: int = 1,
    tid: int = 0,
    **args: object,
) -> None:
    """Record an already-timed span; no-op while disabled."""
    if _enabled:
        _tracer.add_complete_span(
            name, ts=ts, dur=dur, pid=pid, tid=tid, **args
        )
