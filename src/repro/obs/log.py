"""Structured logging on top of the standard library.

Every library log line is an *event*: a short dotted name plus a flat
payload of fields.  :func:`log_event` carries the payload through
stdlib logging's ``extra`` mechanism and :class:`JsonFormatter` renders
one JSON object per line, so ``REPRO_LOG=info repro-oa recover ...``
produces machine-readable logs with zero dependencies.

Nothing is emitted unless logging is configured — either by the host
application in the usual stdlib ways, or by :func:`configure_logging`,
which reads the ``REPRO_LOG`` environment variable (a level name such
as ``debug`` or ``info``) and installs a JSON handler on the ``repro``
logger namespace.  The CLI's ``--log LEVEL`` switch calls the same
function.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import IO

from repro.exceptions import ConfigurationError

__all__ = [
    "JsonFormatter",
    "get_logger",
    "log_event",
    "configure_logging",
]

#: Environment variable consulted by :func:`configure_logging`.
ENV_VAR = "REPRO_LOG"

#: Root of the library's logger namespace.
ROOT_LOGGER = "repro"

#: Marker attribute identifying handlers installed by this module.
_HANDLER_TAG = "_repro_obs_handler"


class JsonFormatter(logging.Formatter):
    """Format each record as one JSON object per line.

    The object carries ``ts`` (epoch seconds), ``level``, ``logger``,
    ``event`` (the log message), the structured fields attached by
    :func:`log_event`, and — when present — ``exc`` with the formatted
    traceback.  Non-serializable field values degrade to ``str``.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                if key not in payload:
                    payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=False)


def get_logger(name: str) -> logging.Logger:
    """A logger inside the ``repro`` namespace.

    ``get_logger("middleware.recovery")`` and
    ``get_logger("repro.middleware.recovery")`` name the same logger.
    """
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """Emit one structured event with a flat field payload.

    The ``isEnabledFor`` guard keeps disabled-by-default logging cheap
    on the paths that call this often.
    """
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})


def configure_logging(
    spec: str | None = None, *, stream: IO[str] | None = None
) -> logging.Handler | None:
    """Install a JSON handler on the ``repro`` logger namespace.

    ``spec`` is a level name (``debug``, ``info``, ``warning``,
    ``error``); when ``None`` the ``REPRO_LOG`` environment variable is
    consulted, and when that is unset/empty nothing happens and ``None``
    is returned.  Re-configuration replaces the previously installed
    handler, so the function is idempotent.  Returns the installed
    handler (tests use it to capture output via ``stream``).
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR, "")
    spec = spec.strip()
    if not spec:
        return None
    level = logging.getLevelName(spec.upper())
    if not isinstance(level, int):
        raise ConfigurationError(
            f"unknown log level {spec!r}; use debug/info/warning/error"
        )
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    setattr(handler, _HANDLER_TAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    # JSON lines are self-contained; don't also feed the stdlib root logger.
    root.propagate = False
    return handler
