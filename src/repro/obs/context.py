"""Cross-process trace context: one trace id across client, queue, worker.

A campaign submitted through the service touches at least three
processes — the submitting client, the server's asyncio dispatcher,
and a :class:`~concurrent.futures.ProcessPoolExecutor` worker (more
after retries).  Each of them keeps its own :class:`~repro.obs.tracing.Tracer`
with its own span-id namespace, so span ids alone cannot stitch a
campaign back together.  The :class:`TraceContext` is the envelope that
can: a ``trace_id`` minted once at submit time, carried through the
NDJSON protocol, persisted on the run's store row, and re-hydrated
inside every worker attempt, so every span of one campaign — client
submit, queue dispatch, chaos injections, retries, the worker-side
simulation spans — shares one ``trace_id`` in its args.

The context travels as a plain dict (:meth:`TraceContext.to_wire` /
:meth:`TraceContext.from_wire`) because everything it crosses — the
TCP protocol, the SQLite row, the executor's pickled call — only
speaks plain values.

Process-local propagation mirrors the tracer's span stack: a single
module-level slot, scoped with :func:`use_trace`::

    with use_trace(mint_trace()):
        client.submit("campaign", {...})   # submit picks up the context
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Iterator, Mapping

from repro.exceptions import ServiceError

__all__ = [
    "TraceContext",
    "current_trace",
    "mint_trace",
    "set_current_trace",
    "use_trace",
]


@dataclass(frozen=True)
class TraceContext:
    """The identity a trace carries across process boundaries.

    ``trace_id`` names the whole campaign trace; ``parent_span_id`` is
    the span (in the *sender's* tracer) under which the receiver's
    spans logically nest; ``run_id`` binds the context to a store row
    once the submission is accepted.
    """

    trace_id: str
    parent_span_id: int | None = None
    run_id: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.trace_id, str) or not self.trace_id:
            raise ServiceError(
                f"trace_id must be a non-empty string, "
                f"got {self.trace_id!r}",
                code="bad-request",
            )

    def with_run(self, run_id: str) -> "TraceContext":
        """The same trace bound to a store run id."""
        return replace(self, run_id=run_id)

    def with_parent(self, parent_span_id: int | None) -> "TraceContext":
        """The same trace re-parented under another span."""
        return replace(self, parent_span_id=parent_span_id)

    def tag_args(self) -> dict[str, Any]:
        """Span-args projection: the keys traces are joined on."""
        tags: dict[str, Any] = {"trace_id": self.trace_id}
        if self.run_id is not None:
            tags["run_id"] = self.run_id
        return tags

    def to_wire(self) -> dict[str, Any]:
        """The plain-dict form shipped over pickles and protocols."""
        wire: dict[str, Any] = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            wire["parent_span_id"] = self.parent_span_id
        if self.run_id is not None:
            wire["run_id"] = self.run_id
        return wire

    @classmethod
    def from_wire(cls, raw: Mapping[str, Any]) -> "TraceContext":
        """Validate and rebuild a context from :meth:`to_wire` output."""
        if not isinstance(raw, Mapping):
            raise ServiceError(
                f"trace context must be an object, "
                f"got {type(raw).__name__}",
                code="bad-request",
            )
        trace_id = raw.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ServiceError(
                f"trace context needs a non-empty 'trace_id' string, "
                f"got {trace_id!r}",
                code="bad-request",
            )
        parent = raw.get("parent_span_id")
        if parent is not None and not isinstance(parent, int):
            raise ServiceError(
                f"trace parent_span_id must be an integer, got {parent!r}",
                code="bad-request",
            )
        run_id = raw.get("run_id")
        if run_id is not None and not isinstance(run_id, str):
            raise ServiceError(
                f"trace run_id must be a string, got {run_id!r}",
                code="bad-request",
            )
        return cls(trace_id=trace_id, parent_span_id=parent, run_id=run_id)


def mint_trace(run_id: str | None = None) -> TraceContext:
    """A fresh context with a random 16-hex-digit trace id."""
    return TraceContext(trace_id=uuid.uuid4().hex[:16], run_id=run_id)


_current: TraceContext | None = None


def current_trace() -> TraceContext | None:
    """The process-locally active context, if any."""
    return _current


def set_current_trace(context: TraceContext | None) -> None:
    """Install (or clear) the process-local context unconditionally.

    Prefer the scoped :func:`use_trace`; this unscoped setter exists
    for worker entry points whose whole process lifetime is one job.
    """
    global _current
    _current = context


@contextmanager
def use_trace(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``context`` current for the ``with`` body; restore after."""
    global _current
    previous = _current
    _current = context
    try:
        yield context
    finally:
        _current = previous
