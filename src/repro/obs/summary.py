"""Human-readable digests of metrics dumps and trace files.

Backs the ``repro-oa obs`` CLI family: ``obs summary`` renders a
``--metrics-out`` JSON dump as aligned tables (or converts it to
Prometheus text), and ``obs trace`` digests a ``--trace-out`` file —
Chrome Trace Event JSON or JSONL — into per-name span statistics.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.exceptions import ConfigurationError

__all__ = [
    "load_trace_events",
    "render_metrics_summary",
    "render_trace_summary",
]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _labels_text(labels: Mapping[str, object]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def render_metrics_summary(dump: Mapping[str, object]) -> str:
    """Render a ``MetricsRegistry.as_dict`` document as text tables."""
    for section in ("counters", "gauges", "histograms"):
        if section not in dump:
            raise ConfigurationError(
                f"not a metrics dump: missing {section!r} section"
            )
    parts: list[str] = []
    for section in ("counters", "gauges"):
        table: Mapping[str, list] = dump[section]  # type: ignore[assignment]
        rows = [
            [name, _labels_text(entry.get("labels", {})), _fmt(entry["value"])]
            for name, series in sorted(table.items())
            for entry in series
        ]
        if rows:
            parts.append(
                f"{section}:\n" + _table(["name", "labels", "value"], rows)
            )
    histograms: Mapping[str, list] = dump["histograms"]  # type: ignore[assignment]
    rows = [
        [
            name,
            _labels_text(entry.get("labels", {})),
            _fmt(entry.get("count", 0)),
            _fmt(entry.get("mean", 0.0)),
            _fmt(entry.get("p50", 0.0)),
            _fmt(entry.get("p95", 0.0)),
            _fmt(entry.get("p99", 0.0)),
            _fmt(entry.get("max", 0.0)),
        ]
        for name, series in sorted(histograms.items())
        for entry in series
    ]
    if rows:
        parts.append(
            "histograms:\n"
            + _table(
                ["name", "labels", "count", "mean", "p50", "p95", "p99", "max"],
                rows,
            )
        )
    if not parts:
        return "(empty metrics dump)"
    return "\n\n".join(parts)


def load_trace_events(text: str) -> list[dict[str, object]]:
    """Parse trace text — Chrome JSON or JSONL — into a list of events."""
    stripped = text.strip()
    if not stripped:
        return []
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        payload = json.loads(stripped)
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ConfigurationError(
                "trace JSON has no 'traceEvents' list"
            )
        return events
    events = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace line {lineno} is not valid JSON: {exc}"
            ) from None
    return events


def render_trace_summary(events: list[dict[str, object]]) -> str:
    """Aggregate complete ("X") spans by name: count, total and max duration."""
    stats: dict[str, list[float]] = {}
    lanes: set[tuple[object, object]] = set()
    for event in events:
        if event.get("ph") != "X":
            continue
        name = str(event.get("name", "?"))
        stats.setdefault(name, []).append(float(event.get("dur", 0.0)))
        lanes.add((event.get("pid"), event.get("tid")))
    if not stats:
        return "(no complete spans in trace)"
    rows = []
    for name, durs in sorted(
        stats.items(), key=lambda item: -sum(item[1])
    ):
        rows.append(
            [
                name,
                str(len(durs)),
                _fmt(sum(durs)),
                _fmt(sum(durs) / len(durs)),
                _fmt(max(durs)),
            ]
        )
    total_spans = sum(len(d) for d in stats.values())
    header = (
        f"{total_spans} span(s) across {len(lanes)} lane(s); "
        f"durations in trace microseconds"
    )
    return header + "\n" + _table(
        ["name", "count", "total_dur", "mean_dur", "max_dur"], rows
    )
