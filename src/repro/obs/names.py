"""The declared metric and span name registry.

Every literal name passed to :func:`repro.obs.inc`,
:func:`repro.obs.observe`, :func:`repro.obs.set_gauge`,
:func:`repro.obs.span`, and :func:`repro.obs.add_span` must appear
here.  The registry is the contract between the instrumentation sites
and everything downstream of a ``--metrics-out`` dump — summaries,
dashboards, the throughput benchmarks: a typo'd name at a call site
would otherwise fork a new series that nothing reads and no test
notices.  ``reprolint`` rule M001 checks call sites against this
module statically, so the registry *is* enforced, not advisory.

Adding an instrument is a two-line change: the call site and the
declaration here.  Dynamic names (f-strings) are checked by their
literal prefix — ``obs.span(f"figure.{name}")`` passes because
``figure.``-prefixed spans are declared below.

Grouped by subsystem; keep each group sorted.
"""

from __future__ import annotations

__all__ = ["ALL_NAMES", "METRIC_NAMES", "SPAN_NAMES"]

#: Counter / gauge / histogram series names (``obs.inc`` /
#: ``obs.set_gauge`` / ``obs.observe`` first arguments).
METRIC_NAMES: frozenset[str] = frozenset(
    {
        # middleware campaign
        "campaign.makespan_seconds",
        "campaign.predicted_makespan_seconds",
        "campaign.runs",
        "middleware.deployments",
        "middleware.execution_makespan_seconds",
        "middleware.requests",
        "middleware.submissions",
        # fault injection & chaos
        "chaos.injected",
        "faults.engine_injections",
        "faults.events_generated",
        "faults.months_lost",
        "faults.replans",
        # simulation engines
        "engine.events_dispatched",
        "engine.idle_seconds",
        "engine.waves",
        "simulation.dag_main_makespan_seconds",
        "simulation.dag_makespan_seconds",
        "simulation.dag_runs",
        "simulation.dag_tasks",
        "simulation.main_makespan_seconds",
        "simulation.makespan_seconds",
        "simulation.runs",
        "simulation.tasks",
        # scheduling heuristics & memoized/batched kernels
        "batch.plans",
        "heuristic.candidate_evaluations",
        "heuristic.chosen_group",
        "heuristic.plan_seconds",
        "heuristic.plans",
        "heuristic.rejections",
        "makespan.cache",
        "makespan.cache_size",
        # scheduler arena
        "arena.chunks",
        "arena.points",
        "arena.races",
        "arena.resumed_points",
        "arena.seconds",
        "scheduler.decide_seconds",
        "scheduler.decisions",
        # experiment drivers
        "experiment.simulations",
        "figure.seconds",
        "runner.item_seconds",
        "runner.items",
        "runner.utilization",
        "runner.workers",
        "sweep.chunks",
        "sweep.points",
        "sweep.resumed_points",
        "sweep.runs",
        "sweep.seconds",
        # failure recovery
        "recovery.delay_seconds",
        "recovery.failures_detected",
        "recovery.makespan_seconds",
        "recovery.resubmission_latency_seconds",
        "recovery.resubmissions",
        # campaign service
        "service.active_jobs",
        "service.cancellations",
        "service.connections",
        "service.job_seconds",
        "service.jobs",
        "service.jobs_done",
        "service.jobs_failed",
        "service.jobs_retried",
        "service.queue_depth",
        "service.queue_wait_seconds",
        "service.requests",
        "service.submissions",
        "service.worker_spans",
        # worker fleet & leases
        "service.fleet_claims",
        "service.fleet_heartbeats",
        "service.fleet_jobs_done",
        "service.lease_age_seconds",
        "service.lease_expired",
        "service.lease_lost",
        "service.lease_reassignments",
        "service.leases_live",
    }
)

#: Wall-clock span names (``obs.span`` / ``obs.add_span`` first
#: arguments).  ``figure.<command>`` spans cover the dynamic
#: ``f"figure.{name}"`` site in the CLI.
SPAN_NAMES: frozenset[str] = frozenset(
    {
        "arena.cli",
        "arena.race",
        "campaign",
        "faults",
        "faults.replan_loop",
        "figure.ablations",
        "figure.fig1",
        "figure.fig10",
        "figure.fig3to6",
        "figure.fig7",
        "figure.fig8",
        "figure.fig9",
        "plan_grouping",
        "recover",
        "resilience.run",
        "runner.simulate",
        "scheduler.decide",
        "sed.execute",
        "sed.handle_request",
        "service.client.submit",
        "service.fleet.job",
        "service.job",
        "service.lease",
        "service.worker",
        "simulate",
        "sweep.cli",
        "sweep.run",
    }
)

#: Every declared name, metric and span alike.
ALL_NAMES: frozenset[str] = METRIC_NAMES | SPAN_NAMES
