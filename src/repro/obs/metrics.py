"""Zero-dependency metrics primitives and the labeled registry.

Three instrument kinds, mirroring the Prometheus data model at the
smallest scale that serves the experiments:

* :class:`Counter` — monotonically increasing totals (heuristic
  evaluations, simulated tasks, middleware submissions);
* :class:`Gauge` — last-write-wins values (makespans, chosen group
  sizes, worker utilization);
* :class:`Histogram` — full-sample distributions with p50/p95/p99
  summaries (planning latencies, per-point sweep timings).

Every instrument is identified by a name plus a label set, so one
logical metric fans out into series per heuristic, cluster, or figure.
:class:`MetricsRegistry` owns the instruments and renders them as a
JSON document (the ``--metrics-out`` dump) or Prometheus text
exposition format.

The registry is deliberately not thread-safe: the simulator is
single-process, and the parallel experiment path aggregates in the
parent only.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Mapping

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prometheus_from_dump",
]

#: The summary quantiles every histogram reports.
QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelItems:
    """Normalize a label mapping into a hashable, sorted key."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; cannot add {amount!r}"
            )
        self.value += amount


class Gauge:
    """A value that can go up and down; reads report the last write."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """A distribution of observed samples with quantile summaries.

    Samples are kept in full — experiment runs observe at most tens of
    thousands of values, so exact quantiles are affordable and simpler
    than a streaming sketch.  Quantiles use the nearest-rank definition:
    ``q`` of ``n`` sorted samples is element ``ceil(q * n) - 1``.
    """

    __slots__ = ("_samples", "_sorted")

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return len(self._samples)

    @property
    def sum(self) -> float:
        """Sum of all samples."""
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.sum / len(self._samples) if self._samples else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the observed samples.

        The edges follow the nearest-rank convention: ``q=0`` is the
        minimum, ``q=1`` the maximum, and a single observation is every
        quantile of itself.  Raises
        :class:`~repro.exceptions.ConfigurationError` for ``q`` outside
        ``[0, 1]``, and — explicitly, rather than inventing a value —
        when no samples were observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
        if not self._samples:
            raise ConfigurationError("quantile of an empty histogram")
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(math.ceil(q * len(self._samples)) - 1, 0)
        return self._samples[rank]

    def summary(self) -> dict[str, float]:
        """Count, sum, min/max/mean, and the standard quantiles."""
        if not self._samples:
            return {"count": 0, "sum": 0.0}
        out: dict[str, float] = {
            "count": self.count,
            "sum": self.sum,
            "min": min(self._samples),
            "max": max(self._samples),
            "mean": self.mean,
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out


class MetricsRegistry:
    """Get-or-create home of every (name, labels) instrument series."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelItems], Counter] = {}
        self._gauges: dict[tuple[str, LabelItems], Gauge] = {}
        self._histograms: dict[tuple[str, LabelItems], Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter series for ``name`` + ``labels`` (created on first use)."""
        return self._counters.setdefault((name, _label_key(labels)), Counter())

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge series for ``name`` + ``labels`` (created on first use)."""
        return self._gauges.setdefault((name, _label_key(labels)), Gauge())

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram series for ``name`` + ``labels`` (created on first use)."""
        return self._histograms.setdefault(
            (name, _label_key(labels)), Histogram()
        )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    @staticmethod
    def _grouped(
        table: Mapping[tuple[str, LabelItems], object],
    ) -> dict[str, list[tuple[LabelItems, object]]]:
        grouped: dict[str, list[tuple[LabelItems, object]]] = {}
        for (name, labels), instrument in sorted(table.items()):
            grouped.setdefault(name, []).append((labels, instrument))
        return grouped

    def as_dict(self) -> dict[str, object]:
        """The whole registry as a plain-JSON-serializable document.

        This is the ``--metrics-out`` schema: three top-level maps
        (``counters`` / ``gauges`` / ``histograms``), each from metric
        name to a list of ``{"labels": {...}, ...}`` series entries.
        """
        counters = {
            name: [
                {"labels": dict(labels), "value": c.value}
                for labels, c in series
            ]
            for name, series in self._grouped(self._counters).items()
        }
        gauges = {
            name: [
                {"labels": dict(labels), "value": g.value}
                for labels, g in series
            ]
            for name, series in self._grouped(self._gauges).items()
        }
        histograms = {
            name: [
                {"labels": dict(labels), **h.summary()}
                for labels, h in series
            ]
            for name, series in self._grouped(self._histograms).items()
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The registry dump as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self, *, prefix: str = "repro_") -> str:
        """Render the registry in Prometheus text exposition format.

        Metric names are sanitized (dots become underscores), counters
        gain the conventional ``_total`` suffix, and histograms render
        as summaries: one ``{quantile="..."}`` sample per standard
        quantile plus ``_sum`` and ``_count``.
        """
        return prometheus_from_dump(self.as_dict(), prefix=prefix)


def _prom_name(prefix: str, name: str) -> str:
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return prefix + sanitized


def _prom_labels(labels: Mapping[str, object], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_from_dump(
    dump: Mapping[str, object], *, prefix: str = "repro_"
) -> str:
    """Render a registry dump (``MetricsRegistry.as_dict``) as Prometheus text.

    Working off the dump rather than a live registry lets the CLI
    convert a ``--metrics-out`` file written by an earlier run.
    """
    lines: list[str] = []

    def _series(section: str) -> Iterable[tuple[str, list]]:
        table = dump.get(section, {})
        if not isinstance(table, Mapping):
            raise ConfigurationError(
                f"metrics dump section {section!r} is not a mapping"
            )
        return sorted(table.items())

    for name, series in _series("counters"):
        metric = _prom_name(prefix, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        for entry in series:
            lines.append(
                f"{metric}{_prom_labels(entry.get('labels', {}))} "
                f"{_prom_number(entry['value'])}"
            )
    for name, series in _series("gauges"):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        for entry in series:
            lines.append(
                f"{metric}{_prom_labels(entry.get('labels', {}))} "
                f"{_prom_number(entry['value'])}"
            )
    for name, series in _series("histograms"):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} summary")
        for entry in series:
            labels = entry.get("labels", {})
            for q in QUANTILES:
                key = f"p{int(q * 100)}"
                if key in entry:
                    qlabel = f'quantile="{q}"'
                    lines.append(
                        f"{metric}{_prom_labels(labels, qlabel)} "
                        f"{_prom_number(entry[key])}"
                    )
            lines.append(
                f"{metric}_sum{_prom_labels(labels)} "
                f"{_prom_number(entry.get('sum', 0.0))}"
            )
            lines.append(
                f"{metric}_count{_prom_labels(labels)} "
                f"{_prom_number(entry.get('count', 0))}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
