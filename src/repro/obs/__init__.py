"""repro.obs — the instrumentation subsystem.

Three layers, all dependency-free:

* **metrics** — a labeled registry of counters, gauges, and histograms
  (p50/p95/p99), exported as JSON or Prometheus text
  (:mod:`repro.obs.metrics`);
* **tracing** — nested wall-clock spans plus simulated-schedule slices,
  exported as Chrome ``chrome://tracing`` JSON or JSONL
  (:mod:`repro.obs.tracing`);
* **structured logging** — stdlib logging with a JSON formatter and the
  ``REPRO_LOG`` switch (:mod:`repro.obs.log`).

Collection is **off by default** and every instrumentation helper
no-ops against a global null sink, so the instrumented hot paths cost
one branch when disabled.  Turn it on for a scoped block::

    from repro import obs

    with obs.session() as (registry, tracer):
        result = simulate_on_cluster(cluster, grouping, spec)
        print(registry.to_json())
        print(tracer.to_chrome_json())

or via the CLI: ``repro-oa simulate --metrics-out m.json --trace-out
t.json`` then ``repro-oa obs summary m.json``.
"""

from __future__ import annotations

from repro.obs.context import (
    TraceContext,
    current_trace,
    mint_trace,
    set_current_trace,
    use_trace,
)
from repro.obs.log import (
    JsonFormatter,
    configure_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_from_dump,
)
from repro.obs.names import ALL_NAMES, METRIC_NAMES, SPAN_NAMES
from repro.obs.runtime import (
    add_span,
    disable,
    enable,
    enabled,
    inc,
    observe,
    registry,
    reset,
    session,
    set_gauge,
    span,
    tracer,
)
from repro.obs.summary import (
    load_trace_events,
    render_metrics_summary,
    render_trace_summary,
)
from repro.obs.tracing import SIM_PID, WALL_PID, WORKER_PID, Span, Tracer

__all__ = [
    # runtime switch + helpers
    "enabled",
    "enable",
    "disable",
    "reset",
    "session",
    "registry",
    "tracer",
    "inc",
    "set_gauge",
    "observe",
    "span",
    "add_span",
    # declared name registry (enforced by reprolint M001)
    "ALL_NAMES",
    "METRIC_NAMES",
    "SPAN_NAMES",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prometheus_from_dump",
    # tracing
    "Span",
    "Tracer",
    "WALL_PID",
    "SIM_PID",
    "WORKER_PID",
    # cross-process trace correlation
    "TraceContext",
    "current_trace",
    "mint_trace",
    "set_current_trace",
    "use_trace",
    # logging
    "JsonFormatter",
    "get_logger",
    "log_event",
    "configure_logging",
    # summaries
    "load_trace_events",
    "render_metrics_summary",
    "render_trace_summary",
]
