"""Span tracing: nested wall-clock spans and simulated-time slices.

A :class:`Tracer` records two kinds of spans into one timeline:

* **wall-clock spans** via the :meth:`Tracer.span` context manager —
  nested automatically (the enclosing open span becomes the parent),
  timed with :func:`time.monotonic` so clock adjustments never produce
  negative durations;
* **complete spans** via :meth:`Tracer.add_complete_span` — already
  timed intervals, used to project simulated schedules (one span per
  scheduled task) into the same trace.

Exports target the Chrome *Trace Event* format (open the file in
``chrome://tracing`` or https://ui.perfetto.dev) and JSONL — one event
object per line — for ad-hoc ``jq``/pandas analysis.  Simulated spans
conventionally live under ``pid=1`` with the processor id as ``tid``;
wall-clock spans under ``pid=0`` (see :data:`WALL_PID` /
:data:`SIM_PID`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

__all__ = ["Span", "Tracer", "WALL_PID", "SIM_PID", "WORKER_PID"]

#: ``pid`` of wall-clock (host process) spans in exported traces.
WALL_PID = 0

#: ``pid`` of simulated-schedule spans in exported traces.
SIM_PID = 1

#: ``pid`` of spans imported from pool worker processes; their ``tid``
#: is the worker's real OS pid, so each worker gets its own lane.
WORKER_PID = 2


@dataclass(frozen=True)
class Span:
    """One completed span on the trace timeline.

    ``ts`` and ``dur`` are microseconds: real microseconds for
    wall-clock spans, and by convention one simulated second maps to
    one microsecond for simulated spans (a 40-hour campaign then sits
    comfortably within the viewer's zoom range).
    """

    span_id: int
    parent_id: int | None
    name: str
    ts: float
    dur: float
    pid: int = WALL_PID
    tid: int = 0
    args: Mapping[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """The span's end timestamp in microseconds."""
        return self.ts + self.dur

    def as_event(self) -> dict[str, object]:
        """The span as one Chrome complete ("X") trace event."""
        args = dict(self.args)
        args["span_id"] = self.span_id
        if self.parent_id is not None:
            args["parent_id"] = self.parent_id
        return {
            "name": self.name,
            "ph": "X",
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "args": args,
        }


class Tracer:
    """Collects spans; exports Chrome trace JSON and JSONL."""

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._epoch = clock()
        self._next_id = 1
        self._stack: list[int] = []
        self.spans: list[Span] = []

    def __len__(self) -> int:
        return len(self.spans)

    def now_us(self) -> float:
        """The current timestamp on this tracer's timeline (microseconds).

        Used to anchor spans imported from *other* timelines — a worker
        process ships spans timed against its own epoch, and the
        importer offsets them by the dispatch instant read here.
        """
        return (self._clock() - self._epoch) * 1e6

    def _now_us(self) -> float:
        return self.now_us()

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @property
    def current_span_id(self) -> int | None:
        """Id of the innermost open wall-clock span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self, name: str, *, tid: int = 0, **args: object
    ) -> Iterator[int]:
        """Open a wall-clock span; yields its id for correlation.

        Spans nest: a span opened inside another records the outer one
        as its parent.  The span is appended on exit (even when the
        body raises), so ``tracer.spans`` holds completed spans in
        completion order.
        """
        span_id = self._allocate_id()
        parent = self.current_span_id
        self._stack.append(span_id)
        start = self._now_us()
        try:
            yield span_id
        finally:
            end = self._now_us()
            self._stack.pop()
            self.spans.append(
                Span(
                    span_id=span_id,
                    parent_id=parent,
                    name=name,
                    ts=start,
                    dur=end - start,
                    pid=WALL_PID,
                    tid=tid,
                    args=dict(args),
                )
            )

    def add_complete_span(
        self,
        name: str,
        *,
        ts: float,
        dur: float,
        pid: int = SIM_PID,
        tid: int = 0,
        parent_id: int | None = None,
        **args: object,
    ) -> Span:
        """Record an already-timed interval (e.g. one simulated task).

        ``parent_id`` defaults to the innermost open wall-clock span so
        simulated slices stay correlated with the call that produced
        them.
        """
        if parent_id is None:
            parent_id = self.current_span_id
        span = Span(
            span_id=self._allocate_id(),
            parent_id=parent_id,
            name=name,
            ts=ts,
            dur=dur,
            pid=pid,
            tid=tid,
            args=dict(args),
        )
        self.spans.append(span)
        return span

    def _metadata_events(self) -> list[dict[str, object]]:
        events: list[dict[str, object]] = []
        pids = {span.pid for span in self.spans}
        if WALL_PID in pids:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": WALL_PID,
                    "args": {"name": "wall clock"},
                }
            )
        if WORKER_PID in pids:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": WORKER_PID,
                    "args": {"name": "pool workers (imported spans)"},
                }
            )
            for tid in sorted(
                {s.tid for s in self.spans if s.pid == WORKER_PID}
            ):
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": WORKER_PID,
                        "tid": tid,
                        "args": {"name": f"worker pid {tid}"},
                    }
                )
        if SIM_PID in pids:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": SIM_PID,
                    "args": {"name": "simulated schedule (1 s -> 1 us)"},
                }
            )
            for tid in sorted(
                {s.tid for s in self.spans if s.pid == SIM_PID}
            ):
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": SIM_PID,
                        "tid": tid,
                        "args": {"name": f"processor {tid}"},
                    }
                )
        return events

    def to_chrome_json(self, *, indent: int | None = None) -> str:
        """The whole trace as Chrome Trace Event JSON."""
        events = self._metadata_events()
        events.extend(span.as_event() for span in self.spans)
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=indent
        )

    def to_jsonl(self) -> str:
        """The trace as JSONL: one complete-span event object per line."""
        return "\n".join(
            json.dumps(span.as_event(), sort_keys=True) for span in self.spans
        )
