"""Continuous benchmarking: one protocol, ``BENCH_<name>.json`` artifacts.

Every benchmark in the repo runs through the same measurement
protocol — pinned seeds, explicit warmup, fixed repetitions,
median/IQR summary, machine fingerprint — and emits a schema-validated
JSON artifact (``BENCH_<name>.json``).  Artifacts are the
machine-readable performance trajectory ROADMAP asks for: CI uploads
them per commit, and :func:`compare_to_baseline` gates merges against
the committed ``benchmarks/baseline.json``.

Three layers:

* **protocol** — :class:`BenchSpec` (what to measure, in which unit,
  which direction is better) and :func:`run_bench` (warmup +
  repetitions → :class:`BenchResult` with median and IQR);
* **artifacts** — :func:`write_bench_artifact` /
  :func:`validate_bench_artifact` over the closed ``repro.bench/1``
  schema, so a malformed artifact fails loudly instead of polluting
  the trend;
* **comparator** — :func:`load_baseline` + :func:`compare_to_baseline`
  compute the adverse ratio per benchmark (``measured/baseline`` when
  lower is better, inverted otherwise) and flag anything beyond the
  regression budget; the CLI maps a flagged run to exit code 2.

The registry (:func:`bench_specs`) holds the quick tier the
``repro-oa bench`` verb runs by default; its workloads are seeded and
sized to finish in seconds so the gate is cheap enough to run on every
push.
"""

from __future__ import annotations

import json
import math
import os
import platform
import statistics
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro._version import __version__
from repro.exceptions import ConfigurationError

__all__ = [
    "BASELINE_SCHEMA",
    "BENCH_SCHEMA",
    "BenchComparison",
    "BenchResult",
    "BenchSpec",
    "baseline_from_results",
    "bench_specs",
    "compare_to_baseline",
    "inject_slowdown",
    "load_baseline",
    "load_bench_artifact",
    "machine_fingerprint",
    "render_comparison",
    "run_bench",
    "validate_bench_artifact",
    "write_bench_artifact",
]

#: Artifact schema identifier; bump on incompatible layout changes.
BENCH_SCHEMA = "repro.bench/1"

#: Baseline file schema identifier.
BASELINE_SCHEMA = "repro.bench-baseline/1"

#: Default repetitions / warmup when neither the spec nor the caller says.
DEFAULT_REPETITIONS = 5
DEFAULT_WARMUP = 1

#: Default regression budget (percent of adverse drift vs baseline).
#: Deliberately < 100 so a 2x slowdown can never slip through.
DEFAULT_MAX_REGRESSION_PCT = 50.0

#: The seed every benchmark workload pins (none of the quick tier is
#: stochastic, but the artifact records it so future stochastic
#: benches stay comparable).
PINNED_SEED = 0

_DIRECTIONS = ("lower", "higher")


@dataclass(frozen=True)
class BenchSpec:
    """One benchmark under the common protocol.

    ``run`` performs a single repetition and returns the measured value
    in ``unit``; the harness owns warmup and aggregation.  ``direction``
    declares which way is better (``"lower"`` for latencies,
    ``"higher"`` for throughputs) so the comparator can compute adverse
    drift without per-benchmark cases.
    """

    name: str
    description: str
    unit: str
    direction: str
    run: Callable[[], float]
    setup: Callable[[], None] | None = None
    repetitions: int | None = None
    warmup: int | None = None

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ConfigurationError(
                f"bench {self.name!r}: direction must be one of "
                f"{_DIRECTIONS}, got {self.direction!r}"
            )
        if not self.name or any(ch in self.name for ch in "/\\ "):
            raise ConfigurationError(
                f"bench name {self.name!r} must be non-empty and "
                f"filename-safe (no spaces or slashes)"
            )


@dataclass(frozen=True)
class BenchResult:
    """The aggregated measurement of one benchmark."""

    name: str
    unit: str
    direction: str
    value: float  # median of the samples
    p25: float
    p75: float
    low: float
    high: float
    mean: float
    samples: tuple[float, ...]
    repetitions: int
    warmup: int
    seed: int
    machine: Mapping[str, Any]
    library_version: str
    unix_time: float

    @property
    def iqr(self) -> float:
        """The interquartile range (p75 - p25) of the samples."""
        return self.p75 - self.p25

    def as_dict(self) -> dict[str, Any]:
        """The ``repro.bench/1`` artifact document."""
        return {
            "schema": BENCH_SCHEMA,
            "name": self.name,
            "unit": self.unit,
            "direction": self.direction,
            "value": self.value,
            "p25": self.p25,
            "p75": self.p75,
            "iqr": self.iqr,
            "min": self.low,
            "max": self.high,
            "mean": self.mean,
            "samples": list(self.samples),
            "repetitions": self.repetitions,
            "warmup": self.warmup,
            "seed": self.seed,
            "machine": dict(self.machine),
            "library_version": self.library_version,
            "unix_time": self.unix_time,
        }


@dataclass(frozen=True)
class BenchComparison:
    """One benchmark's standing against the baseline."""

    name: str
    unit: str
    direction: str
    value: float
    baseline: float | None
    #: Adverse drift: >= 1.0 means no better than baseline; 2.0 means
    #: twice as slow (or half the throughput).  ``None`` without a
    #: baseline entry.
    ratio: float | None
    regressed: bool

    @property
    def delta_pct(self) -> float | None:
        """Adverse drift as a percentage (positive = worse)."""
        return None if self.ratio is None else (self.ratio - 1.0) * 100.0


def machine_fingerprint() -> dict[str, Any]:
    """Where a measurement was taken — numbers travel with their host."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def _nearest_rank(ordered: Sequence[float], q: float) -> float:
    rank = max(math.ceil(q * len(ordered)) - 1, 0)
    return ordered[rank]


def run_bench(
    spec: BenchSpec,
    *,
    repetitions: int | None = None,
    warmup: int | None = None,
) -> BenchResult:
    """Measure one spec under the common protocol.

    Caller overrides win over spec defaults win over module defaults.
    The reported ``value`` is the median; p25/p75 bound the IQR so a
    noisy host is visible in the artifact itself.
    """
    reps = (
        repetitions
        if repetitions is not None
        else (spec.repetitions or DEFAULT_REPETITIONS)
    )
    warm = warmup if warmup is not None else (
        DEFAULT_WARMUP if spec.warmup is None else spec.warmup
    )
    if reps < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {reps!r}")
    if warm < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warm!r}")
    if spec.setup is not None:
        spec.setup()
    for _ in range(warm):
        spec.run()
    samples = [float(spec.run()) for _ in range(reps)]
    ordered = sorted(samples)
    return BenchResult(
        name=spec.name,
        unit=spec.unit,
        direction=spec.direction,
        value=statistics.median(ordered),
        p25=_nearest_rank(ordered, 0.25),
        p75=_nearest_rank(ordered, 0.75),
        low=ordered[0],
        high=ordered[-1],
        mean=statistics.fmean(ordered),
        samples=tuple(samples),
        repetitions=reps,
        warmup=warm,
        seed=PINNED_SEED,
        machine=machine_fingerprint(),
        library_version=__version__,
        unix_time=time.time(),
    )


def inject_slowdown(result: BenchResult, factor: float) -> BenchResult:
    """Adversely scale a result by ``factor`` — the gate's self-test hook.

    A factor of 2 makes a latency twice as slow and a throughput half
    as fast, so a healthy comparator must flag it.  Exposed on the CLI
    as ``--inject-slowdown`` to prove the regression gate actually
    fires.
    """
    if factor <= 0:
        raise ConfigurationError(f"slowdown factor must be > 0, got {factor!r}")
    scale = factor if result.direction == "lower" else 1.0 / factor
    return replace(
        result,
        value=result.value * scale,
        p25=result.p25 * scale,
        p75=result.p75 * scale,
        low=result.low * scale,
        high=result.high * scale,
        mean=result.mean * scale,
        samples=tuple(s * scale for s in result.samples),
    )


# ---------------------------------------------------------------------------
# Artifacts.
# ---------------------------------------------------------------------------

_NUMBER_FIELDS = (
    "value",
    "p25",
    "p75",
    "iqr",
    "min",
    "max",
    "mean",
    "unix_time",
)
_INT_FIELDS = ("repetitions", "warmup", "seed")
_STR_FIELDS = ("name", "unit", "direction", "library_version")


def validate_bench_artifact(doc: Mapping[str, Any]) -> None:
    """Check one artifact document against the ``repro.bench/1`` schema.

    Collects *every* defect into one
    :class:`~repro.exceptions.ConfigurationError`, so a broken emitter
    is fixed in one round trip.
    """
    problems: list[str] = []
    if not isinstance(doc, Mapping):
        raise ConfigurationError(
            f"bench artifact must be an object, got {type(doc).__name__}"
        )
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    for key in _STR_FIELDS:
        if not isinstance(doc.get(key), str) or not doc.get(key):
            problems.append(f"{key} must be a non-empty string")
    if doc.get("direction") not in _DIRECTIONS:
        problems.append(f"direction must be one of {_DIRECTIONS}")
    for key in _NUMBER_FIELDS:
        if not isinstance(doc.get(key), (int, float)) or isinstance(
            doc.get(key), bool
        ):
            problems.append(f"{key} must be a number")
    for key in _INT_FIELDS:
        if not isinstance(doc.get(key), int) or isinstance(
            doc.get(key), bool
        ):
            problems.append(f"{key} must be an integer")
    samples = doc.get("samples")
    if (
        not isinstance(samples, list)
        or not samples
        or not all(
            isinstance(s, (int, float)) and not isinstance(s, bool)
            for s in samples
        )
    ):
        problems.append("samples must be a non-empty list of numbers")
    elif isinstance(doc.get("repetitions"), int) and len(samples) != doc[
        "repetitions"
    ]:
        problems.append(
            f"samples has {len(samples)} entries for "
            f"{doc['repetitions']} repetitions"
        )
    if not isinstance(doc.get("machine"), Mapping):
        problems.append("machine must be an object (machine_fingerprint)")
    if (
        isinstance(doc.get("p25"), (int, float))
        and isinstance(doc.get("p75"), (int, float))
        and doc["p25"] > doc["p75"]
    ):
        problems.append(f"p25 ({doc['p25']}) exceeds p75 ({doc['p75']})")
    if problems:
        raise ConfigurationError(
            "invalid bench artifact: " + "; ".join(problems)
        )


def write_bench_artifact(result: BenchResult, out_dir: str | Path) -> Path:
    """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path.

    The document is validated before it hits disk — the emitter is held
    to the same schema as every consumer.
    """
    doc = result.as_dict()
    validate_bench_artifact(doc)
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{result.name}.json"
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_bench_artifact(path: str | Path) -> dict[str, Any]:
    """Read and validate one ``BENCH_*.json`` file."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read bench artifact {path}: {exc}"
        ) from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"bench artifact {path} is not JSON: {exc}"
        ) from None
    validate_bench_artifact(doc)
    return doc


# ---------------------------------------------------------------------------
# Baseline + comparator.
# ---------------------------------------------------------------------------


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Read ``benchmarks/baseline.json`` with validation.

    Shape::

        {"schema": "repro.bench-baseline/1",
         "max_regression_pct": 50.0,
         "benchmarks": {"sweep": {"value": ..., "unit": ...,
                                  "direction": "higher"}, ...}}
    """
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read baseline {path}: {exc}"
        ) from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"baseline {path} is not JSON: {exc}"
        ) from None
    if not isinstance(doc, Mapping) or doc.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"baseline {path} must carry schema {BASELINE_SCHEMA!r}"
        )
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, Mapping):
        raise ConfigurationError(
            f"baseline {path} needs a 'benchmarks' object"
        )
    for name, entry in benchmarks.items():
        if (
            not isinstance(entry, Mapping)
            or not isinstance(entry.get("value"), (int, float))
            or entry.get("direction") not in _DIRECTIONS
        ):
            raise ConfigurationError(
                f"baseline {path} entry {name!r} needs a numeric 'value' "
                f"and a direction in {_DIRECTIONS}"
            )
    return dict(doc)


def baseline_from_results(
    results: Sequence[BenchResult],
    *,
    max_regression_pct: float = DEFAULT_MAX_REGRESSION_PCT,
) -> dict[str, Any]:
    """A baseline document pinned to these results (the update workflow)."""
    return {
        "schema": BASELINE_SCHEMA,
        "max_regression_pct": max_regression_pct,
        "machine": machine_fingerprint(),
        "library_version": __version__,
        "benchmarks": {
            r.name: {
                "value": r.value,
                "unit": r.unit,
                "direction": r.direction,
            }
            for r in sorted(results, key=lambda r: r.name)
        },
    }


def compare_to_baseline(
    results: Sequence[BenchResult],
    baseline: Mapping[str, Any],
    *,
    max_regression_pct: float | None = None,
) -> list[BenchComparison]:
    """Each result's adverse drift vs the baseline, regression-flagged.

    ``max_regression_pct`` defaults to the budget recorded in the
    baseline file itself (falling back to
    :data:`DEFAULT_MAX_REGRESSION_PCT`), so the budget is versioned
    with the numbers it protects.  Results without a baseline entry are
    reported unflagged — new benchmarks land first, their baseline
    follows via ``--update-baseline``.
    """
    if max_regression_pct is None:
        raw = baseline.get("max_regression_pct", DEFAULT_MAX_REGRESSION_PCT)
        max_regression_pct = float(raw)
    if max_regression_pct < 0:
        raise ConfigurationError(
            f"max regression budget must be >= 0, got {max_regression_pct!r}"
        )
    entries = baseline.get("benchmarks", {})
    rows: list[BenchComparison] = []
    for result in results:
        entry = entries.get(result.name) if isinstance(entries, Mapping) else None
        if entry is None:
            rows.append(
                BenchComparison(
                    name=result.name,
                    unit=result.unit,
                    direction=result.direction,
                    value=result.value,
                    baseline=None,
                    ratio=None,
                    regressed=False,
                )
            )
            continue
        base = float(entry["value"])
        if base <= 0 or result.value <= 0:
            raise ConfigurationError(
                f"bench {result.name!r}: non-positive measurement "
                f"({result.value!r}) or baseline ({base!r})"
            )
        ratio = (
            result.value / base
            if result.direction == "lower"
            else base / result.value
        )
        rows.append(
            BenchComparison(
                name=result.name,
                unit=result.unit,
                direction=result.direction,
                value=result.value,
                baseline=base,
                ratio=ratio,
                regressed=ratio > 1.0 + max_regression_pct / 100.0,
            )
        )
    return rows


def render_comparison(rows: Sequence[BenchComparison]) -> str:
    """The comparator's terminal table."""
    from repro.analysis.tables import format_table

    body = []
    for row in rows:
        if row.baseline is None:
            standing, drift = "no baseline", "-"
        else:
            standing = "REGRESSED" if row.regressed else "ok"
            drift = f"{row.delta_pct:+.1f}%"
        body.append(
            [
                row.name,
                f"{row.value:.4g} {row.unit}",
                "-" if row.baseline is None else f"{row.baseline:.4g}",
                drift,
                standing,
            ]
        )
    return format_table(
        ["benchmark", "measured", "baseline", "adverse drift", "standing"],
        body,
    )


# ---------------------------------------------------------------------------
# The quick-tier registry.
# ---------------------------------------------------------------------------


def _bench_sweep() -> float:
    """Sweep-engine throughput in configs/sec (cold cache each rep)."""
    from repro.core.makespan import clear_makespan_cache
    from repro.experiments.sweep import SweepGrid, run_sweep

    clear_makespan_cache()
    grid = SweepGrid.from_ranges(
        r_min=11, r_max=60, step=1, scenarios=(10,), months=(24,)
    )
    started = time.perf_counter()
    result = run_sweep(grid)
    elapsed = time.perf_counter() - started
    return len(result.rows) / elapsed


def _bench_kernel() -> float:
    """Warm memoized-makespan lookup latency in microseconds."""
    from repro.core.heuristics import plan_grouping
    from repro.core.makespan import (
        cached_simulated_makespan,
        clear_makespan_cache,
    )
    from repro.platform.benchmarks import benchmark_cluster
    from repro.workflow.ocean_atmosphere import EnsembleSpec

    clear_makespan_cache()
    cluster = benchmark_cluster("sagittaire", 53)
    spec = EnsembleSpec(10, 120)
    grouping = plan_grouping(cluster, spec, "knapsack")
    cached_simulated_makespan(grouping, spec, cluster.timing)  # warm
    lookups = 20000
    started = time.perf_counter()
    for _ in range(lookups):
        cached_simulated_makespan(grouping, spec, cluster.timing)
    return (time.perf_counter() - started) / lookups * 1e6


def _bench_simulate() -> float:
    """One fast-path cluster simulation (seconds)."""
    from repro.core.heuristics import plan_grouping
    from repro.platform.benchmarks import benchmark_cluster
    from repro.simulation.engine import simulate
    from repro.workflow.ocean_atmosphere import EnsembleSpec

    cluster = benchmark_cluster("sagittaire", 53)
    spec = EnsembleSpec(10, 240)
    grouping = plan_grouping(cluster, spec, "knapsack")
    started = time.perf_counter()
    simulate(grouping, spec, cluster.timing, fast=True)
    return time.perf_counter() - started


def _bench_campaign() -> float:
    """One full middleware campaign on a 3x40 grid (seconds)."""
    from repro.middleware.deployment import run_campaign
    from repro.platform.benchmarks import benchmark_grid

    grid = benchmark_grid(3, 40)
    started = time.perf_counter()
    run_campaign(grid, 10, 12, "knapsack")
    return time.perf_counter() - started


def _bench_service() -> float:
    """Live-service throughput on no-op jobs (jobs/sec, pool included)."""
    import tempfile

    from repro.service.client import ServiceClient
    from repro.service.queue import QueueConfig
    from repro.service.server import serve_in_thread

    jobs = 6
    with tempfile.TemporaryDirectory() as tmp:
        handle = serve_in_thread(
            os.path.join(tmp, "bench.db"),
            queue_config=QueueConfig(max_workers=2),
        )
        try:
            with ServiceClient(port=handle.port) as client:
                started = time.perf_counter()
                ids = [
                    client.submit("sleep", {"seconds": 0})
                    for _ in range(jobs)
                ]
                for run_id in ids:
                    client.wait(run_id, timeout=60.0)
                elapsed = time.perf_counter() - started
        finally:
            handle.stop()
    return jobs / elapsed


def _bench_arena() -> float:
    """Mean scheduler decision latency in ms/decision, cold kernels.

    Every registered scheduler decides the reference point (sagittaire,
    R=53, NS=10, NM=12) plus a tight point (R=23) — the arena's
    per-point hot path.  Includes the expensive competitors (local
    search simulates dozens of candidates), so this is the
    decision-latency budget the ISSUE's arena spec asks to be tracked.
    """
    from repro.core.makespan import clear_makespan_cache
    from repro.platform.benchmarks import benchmark_cluster
    from repro.schedulers.base import iter_schedulers
    from repro.workflow.ocean_atmosphere import EnsembleSpec

    clear_makespan_cache()
    spec = EnsembleSpec(10, 12)
    clusters = [
        benchmark_cluster("sagittaire", 53),
        benchmark_cluster("sagittaire", 23),
    ]
    decisions = 0
    started = time.perf_counter()
    for cluster in clusters:
        for scheduler in iter_schedulers(seed=0):
            scheduler.decide(cluster, spec)
            decisions += 1
    elapsed = time.perf_counter() - started
    return elapsed / decisions * 1e3


def _bench_kernels() -> float:
    """Batched planning-kernel throughput in configs/sec, cold cache.

    Plans fig7- and fig8-shaped grids (every heuristic x every
    ``(cluster, R)`` cell at NS=10, NM=12) through
    :func:`repro.core.batch.batch_plan_groupings` — the vectorized
    Eq 1–5 + knapsack-DP path the sweep auto-selects.  One config is one
    planned ``(cluster, R, heuristic)`` cell.  ``benchmarks/
    bench_kernels.py`` additionally asserts the >=5x ratio over the
    memoized scalar path on the same grids.
    """
    from repro.core.batch import batch_plan_groupings
    from repro.core.heuristics import HeuristicName
    from repro.core.makespan import clear_makespan_cache
    from repro.platform.benchmarks import (
        REFERENCE_CLUSTER_SPEEDS,
        benchmark_timing,
    )
    from repro.workflow.ocean_atmosphere import EnsembleSpec

    spec = EnsembleSpec(10, 12)
    workloads = [("sagittaire", list(range(11, 121)))]
    workloads += [
        (name, list(range(11, 44, 4))) for name in sorted(REFERENCE_CLUSTER_SPEEDS)
    ]
    clear_makespan_cache()
    plans = 0
    started = time.perf_counter()
    for name, resources in workloads:
        timing = benchmark_timing(name)
        for heuristic in HeuristicName:
            plans += len(batch_plan_groupings(timing, resources, spec, heuristic))
    elapsed = time.perf_counter() - started
    return plans / elapsed


def _bench_lint() -> float:
    """One whole-program lint of ``src/repro`` in seconds (all rules).

    The interprocedural pass dominates: symbol table, call graph with
    ABC dispatch fan-out, nondeterminism-taint fixed point, and
    layer/cycle analysis over every module, under the repo's own
    ``[tool.reprolint]`` configuration.  The committed
    ``BENCH_lint.json`` budgets analyzer latency as the tree grows —
    the gate in CI only stays cheap if this number does.
    """
    from pathlib import Path

    import repro
    from repro.lintkit import Checker, load_config
    from repro.lintkit.config import find_pyproject

    package_root = Path(repro.__file__).resolve().parent
    config = load_config(find_pyproject(package_root))
    checker = Checker(config)
    started = time.perf_counter()
    checker.run([package_root])
    return time.perf_counter() - started


def bench_specs() -> tuple[BenchSpec, ...]:
    """The quick-tier registry (what ``repro-oa bench --quick`` runs)."""
    return (
        BenchSpec(
            "sweep",
            "sweep-engine throughput over a fig7-style grid, cold cache",
            "configs/sec",
            "higher",
            _bench_sweep,
        ),
        BenchSpec(
            "kernel",
            "warm memoized-makespan kernel lookup",
            "us/lookup",
            "lower",
            _bench_kernel,
        ),
        BenchSpec(
            "kernels",
            "batched planning-kernel throughput on fig7/fig8-shaped grids",
            "configs/sec",
            "higher",
            _bench_kernels,
        ),
        BenchSpec(
            "simulate",
            "single-cluster fast-path simulation (R=53, NS=10, NM=240)",
            "seconds",
            "lower",
            _bench_simulate,
        ),
        BenchSpec(
            "campaign",
            "full middleware campaign (3 clusters x 40 resources)",
            "seconds",
            "lower",
            _bench_campaign,
        ),
        BenchSpec(
            "service",
            "live campaign service round trips on no-op jobs",
            "jobs/sec",
            "higher",
            _bench_service,
            repetitions=3,
        ),
        BenchSpec(
            "arena",
            "mean scheduler decision latency across all registered schedulers",
            "ms/decision",
            "lower",
            _bench_arena,
        ),
        BenchSpec(
            "lint",
            "whole-program reprolint pass over src/repro (all rules)",
            "seconds",
            "lower",
            _bench_lint,
            repetitions=3,
        ),
    )
