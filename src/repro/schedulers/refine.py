"""Seeded local-search refiner over knapsack partitions.

Improvement 3's knapsack maximizes aggregate throughput ``Σ 1/T(g)``,
an analytic proxy — the *simulated* makespan also feels post-pool
contention and end-of-run draining that the proxy ignores.  This
scheduler starts from the knapsack partition (falling back to basic
where the knapsack has no admissible multiset) and hill-climbs on the
simulated makespan itself, perturbing the group multiset with small
moves: widen or narrow one group, move a processor between two groups,
split the post pool into a new group, or dissolve a group into the
post pool.

All randomness flows from one injected RNG seeded by
``(seed, cluster, R, NS, NM)`` — the same inputs replay the same walk
bit-for-bit (reprolint D002: no module/global RNG state is touched).
A move is accepted only when it *strictly* improves the simulated
makespan, so the walk is monotone and the result never loses to its
own starting point.
"""

from __future__ import annotations

import random

from repro.core.grouping import Grouping
from repro.core.heuristics import HeuristicName, plan_grouping
from repro.core.makespan import cached_simulated_makespan
from repro.exceptions import ConfigurationError, SchedulingError
from repro.platform.cluster import ClusterSpec
from repro.schedulers.base import Scheduler, register_scheduler
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["LocalSearchScheduler"]

#: Perturbation budget: proposals drawn per decision.  Enough to drain
#: the neighbourhood at paper-scale grids (R ≤ 120) while keeping
#: decision latency within the BENCH_arena budget.
DEFAULT_ITERATIONS = 64


def _propose(
    sizes: list[int],
    post: int,
    rng: random.Random,
    *,
    min_group: int,
    max_group: int,
    max_groups: int,
) -> tuple[list[int], int] | None:
    """One random neighbour of ``(sizes, post)``, or None if inapplicable.

    Moves conserve ``sum(sizes) + post + idle == R`` by construction:
    processors only ever move between one group and the post pool, or
    between two groups.
    """
    move = rng.randrange(4)
    sizes = list(sizes)
    if move == 0:  # widen one group from the post pool
        if post < 1 or not sizes:
            return None
        i = rng.randrange(len(sizes))
        if sizes[i] >= max_group:
            return None
        sizes[i] += 1
        return sizes, post - 1
    if move == 1:  # narrow one group into the post pool
        if not sizes:
            return None
        i = rng.randrange(len(sizes))
        if sizes[i] <= min_group:
            return None
        sizes[i] -= 1
        return sizes, post + 1
    if move == 2:  # move a processor between two groups
        if len(sizes) < 2:
            return None
        i = rng.randrange(len(sizes))
        j = rng.randrange(len(sizes))
        if i == j or sizes[i] <= min_group or sizes[j] >= max_group:
            return None
        sizes[i] -= 1
        sizes[j] += 1
        return sizes, post
    # move == 3: split the post pool into a new minimal group, or
    # dissolve the narrowest group into the post pool.
    if post >= min_group and len(sizes) < max_groups:
        sizes.append(min_group)
        return sizes, post - min_group
    if len(sizes) > 1:
        victim = sizes.pop()  # sizes stay sorted desc → narrowest last
        return sizes, post + victim
    return None


@register_scheduler
class LocalSearchScheduler(Scheduler):
    name = "local-search"
    description = (
        "Seeded hill-climb on simulated makespan, perturbing the knapsack "
        "partition"
    )

    def __init__(self, seed: int = 0, iterations: int = DEFAULT_ITERATIONS):
        super().__init__(seed)
        if iterations < 0:
            raise ConfigurationError(
                f"iterations must be >= 0, got {iterations}"
            )
        self.iterations = iterations

    def _rng(self, cluster: ClusterSpec, spec: EnsembleSpec) -> random.Random:
        return random.Random(
            f"scheduler:local-search:{self.seed}:{cluster.name}:"
            f"{cluster.resources}:{spec.scenarios}:{spec.months}"
        )

    def plan(self, cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
        timing = cluster.timing
        try:
            current = plan_grouping(cluster, spec, HeuristicName.KNAPSACK)
        except SchedulingError:
            current = plan_grouping(cluster, spec, HeuristicName.BASIC)
        best = current
        best_makespan = cached_simulated_makespan(current, spec, timing)
        rng = self._rng(cluster, spec)
        for _ in range(self.iterations):
            proposal = _propose(
                list(best.group_sizes), best.post_pool, rng,
                min_group=timing.min_group,
                max_group=timing.max_group,
                max_groups=spec.scenarios,
            )
            if proposal is None:
                continue
            sizes, post = proposal
            if not sizes:
                continue
            candidate = Grouping.from_sizes(
                sizes, cluster.resources, post_pool=post
            )
            try:
                candidate.validate_against(timing, spec.scenarios)
            except SchedulingError:
                continue
            makespan = cached_simulated_makespan(candidate, spec, timing)
            if makespan < best_makespan:
                best = candidate
                best_makespan = makespan
        return best
