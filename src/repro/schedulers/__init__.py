"""Pluggable schedulers and the arena that races them.

The public surface is the :class:`~repro.schedulers.base.Scheduler`
contract, its registry (:func:`~repro.schedulers.base.register_scheduler`,
:func:`~repro.schedulers.base.list_schedulers`,
:func:`~repro.schedulers.base.get_scheduler`), and the arena
(:func:`~repro.schedulers.arena.run_arena`).  Importing the package
registers the built-in competitors: the paper's four heuristics as
adapters, the two online first-wave policies, the advance-reservation
scheduler, and the seeded local-search refiner — see
``docs/SCHEDULERS.md`` for the contract and a registration walkthrough.
"""

from repro.schedulers.base import (
    Scheduler,
    get_scheduler,
    iter_schedulers,
    list_schedulers,
    register_scheduler,
)

# Built-in competitors register on import, paper adapters first so
# discovery lists the familiar baseline ordering.
from repro.schedulers import paper as _paper  # noqa: E402,F401
from repro.schedulers import online as _online  # noqa: E402,F401
from repro.schedulers import reservation as _reservation  # noqa: E402,F401
from repro.schedulers import refine as _refine  # noqa: E402,F401
from repro.schedulers.paper import PAPER_SCHEDULERS
from repro.schedulers.arena import (
    ARENA_PRESETS,
    ArenaGrid,
    ArenaPoint,
    ArenaResult,
    ArenaRow,
    fault_label,
    run_arena,
)

__all__ = [
    "ARENA_PRESETS",
    "ArenaGrid",
    "ArenaPoint",
    "ArenaResult",
    "ArenaRow",
    "PAPER_SCHEDULERS",
    "Scheduler",
    "fault_label",
    "get_scheduler",
    "iter_schedulers",
    "list_schedulers",
    "register_scheduler",
    "run_arena",
]
