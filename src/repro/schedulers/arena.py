"""The scheduler arena: race registered schedulers across grids and faults.

A race is a cartesian grid — clusters × resources × scenarios × months
× fault traces × schedulers — evaluated point by point: each scheduler
*decides* a grouping (validated, latency-timed), and the grouping is
simulated either fault-free (through the memoized kernels, so the paper
adapters reproduce the fig7/fig8 golden numbers bit-for-bit) or against
a seeded :class:`~repro.faults.trace.FaultTrace`.  The result reports
the paper's own metric — gain over basic — plus win/loss matrices and
per-scheduler decision latency.

Races journal NDJSON-style exactly like sweeps
(:mod:`repro.experiments.sweep`): the first line pins the grid
identity, each completed chunk appends a rows line, a resumed race is
bit-for-bit equal to an uninterrupted one, and only a torn final line
is forgiven.  Rows deliberately carry **no timings**: decision latency
is a property of the host that ran the race, so it flows through the
``latency_sink`` argument and the ``scheduler.decide_seconds`` metric,
never the journal — resume equality depends on it.

Fault axis entries are labels: ``"none"`` (fault-free) or
``"seed-<n>"`` (a trace drawn by :func:`~repro.faults.trace.generate_trace`
from the grid's MTBF/MTTR over the point's fault-free basic horizon,
seeded by ``n``).  The label, the seed, and the grid's fault statistics
are all part of the journal's grid identity, so a journal can never be
resumed against different chaos.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro import obs
from repro.core.heuristics import HeuristicName, plan_grouping
from repro.core.makespan import (
    cached_simulated_makespan,
    makespan_cache_stats,
    set_makespan_cache_enabled,
)
from repro.exceptions import ConfigurationError, SchedulingError
from repro.experiments.results_io import (
    GenericResult,
    dump_result,
    load_result,
    register_codec,
)
from repro.experiments.runner import resource_sweep
from repro.faults.trace import FaultProfile, FaultTrace, generate_trace
from repro.schedulers.base import get_scheduler, list_schedulers
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = [
    "ARENA_PRESETS",
    "DEFAULT_CHUNK_SIZE",
    "ArenaGrid",
    "ArenaPoint",
    "ArenaResult",
    "ArenaRow",
    "fault_label",
    "run_arena",
]

#: Points per chunk when the caller does not choose.  Arena points are
#: heavier than sweep points (fault simulation is never memoized), so
#: chunks are half the sweep size; keep it a multiple of typical
#: scheduler-axis lengths so one cell's competitors share a worker cache.
DEFAULT_CHUNK_SIZE = 16

#: Fault-free label on the fault axis.
NO_FAULTS = "none"

#: Default fault statistics for seeded traces (transient-heavy grid
#: weather: one event every ~6 h, ~1 h to recover).  Part of the grid
#: identity, overridable per grid.
DEFAULT_MTBF_HOURS = 6.0
DEFAULT_MTTR_HOURS = 1.0


def fault_label(seed: int) -> str:
    """The fault-axis label for a seeded trace."""
    return f"seed-{int(seed)}"


def _fault_seed(label: str) -> int | None:
    """Parse a fault label; ``None`` means fault-free."""
    if label == NO_FAULTS:
        return None
    if label.startswith("seed-"):
        try:
            return int(label[len("seed-"):])
        except ValueError:
            pass
    raise ConfigurationError(
        f"bad fault label {label!r}; use {NO_FAULTS!r} or 'seed-<int>'"
    )


@dataclass(frozen=True)
class ArenaPoint:
    """One cell of a race: scheduler × platform × ensemble × fault trace."""

    cluster: str
    resources: int
    scenarios: int
    months: int
    fault: str
    scheduler: str

    def key(self) -> tuple[str, int, int, int, str, str]:
        """The point's identity — what journals and resume match on."""
        return (
            self.cluster,
            self.resources,
            self.scenarios,
            self.months,
            self.fault,
            self.scheduler,
        )

    def cell(self) -> tuple[str, int, int, int, str]:
        """Everything but the scheduler — the unit schedulers compete in."""
        return self.key()[:5]


@dataclass(frozen=True)
class ArenaGrid:
    """A declarative race: the cartesian product of six axes.

    ``seed`` is handed to every scheduler (stochastic competitors replay
    from it); ``mtbf_hours``/``mttr_hours`` parameterize seeded fault
    traces.  All three are part of the grid identity — the journal of a
    race under one chaos regime cannot resume under another.
    """

    clusters: tuple[str, ...]
    resources: tuple[int, ...]
    scenarios: tuple[int, ...]
    months: tuple[int, ...]
    faults: tuple[str, ...]
    schedulers: tuple[str, ...]
    seed: int = 0
    mtbf_hours: float = DEFAULT_MTBF_HOURS
    mttr_hours: float = DEFAULT_MTTR_HOURS

    def __post_init__(self) -> None:
        for axis in (
            "clusters", "resources", "scenarios", "months",
            "faults", "schedulers",
        ):
            if not getattr(self, axis):
                raise ConfigurationError(f"arena grid axis {axis!r} is empty")
        for axis in ("resources", "scenarios", "months"):
            for value in getattr(self, axis):
                if not isinstance(value, int) or value < 1:
                    raise ConfigurationError(
                        f"arena grid axis {axis!r} needs integers >= 1, "
                        f"got {value!r}"
                    )
        registered = list_schedulers()
        for name in self.schedulers:
            if name not in registered:
                raise ConfigurationError(
                    f"unknown scheduler {name!r}; registered: "
                    f"{sorted(registered)}"
                )
        for label in self.faults:
            _fault_seed(label)
        if self.mtbf_hours <= 0 or self.mttr_hours <= 0:
            raise ConfigurationError(
                f"mtbf_hours and mttr_hours must be > 0, got "
                f"{self.mtbf_hours!r}/{self.mttr_hours!r}"
            )

    @classmethod
    def from_preset(
        cls,
        preset: str,
        *,
        schedulers: Sequence[str] | None = None,
        fault_seeds: Sequence[int] = (),
        include_fault_free: bool = True,
        seed: int = 0,
        r_min: int | None = None,
        r_max: int | None = None,
        step: int | None = None,
        scenarios: int | None = None,
        months: int | None = None,
        mtbf_hours: float = DEFAULT_MTBF_HOURS,
        mttr_hours: float = DEFAULT_MTTR_HOURS,
    ) -> "ArenaGrid":
        """A race grid shaped like one of the paper's figures.

        Presets mirror the golden-fixture parameters (see
        ``tests/data/regenerate_golden.py``); any of the range knobs
        may be overridden for quicker CI-scale races.  The fault axis
        is fault-free plus one label per entry of ``fault_seeds``.
        """
        if preset not in ARENA_PRESETS:
            raise ConfigurationError(
                f"unknown arena preset {preset!r}; "
                f"valid presets: {sorted(ARENA_PRESETS)}"
            )
        base = ARENA_PRESETS[preset]
        faults: list[str] = [NO_FAULTS] if include_fault_free else []
        faults.extend(fault_label(s) for s in fault_seeds)
        if not faults:
            raise ConfigurationError(
                "a race needs at least one fault axis entry; pass "
                "fault_seeds or include_fault_free=True"
            )
        names = tuple(schedulers) if schedulers is not None else list_schedulers()
        return cls(
            clusters=base["clusters"],
            resources=tuple(resource_sweep(
                base["r_min"] if r_min is None else r_min,
                base["r_max"] if r_max is None else r_max,
                base["step"] if step is None else step,
            )),
            scenarios=(base["scenarios"] if scenarios is None else scenarios,),
            months=(base["months"] if months is None else months,),
            faults=tuple(faults),
            schedulers=names,
            seed=seed,
            mtbf_hours=mtbf_hours,
            mttr_hours=mttr_hours,
        )

    @property
    def size(self) -> int:
        """Total number of points in the race."""
        return (
            len(self.clusters)
            * len(self.resources)
            * len(self.scenarios)
            * len(self.months)
            * len(self.faults)
            * len(self.schedulers)
        )

    def points(self) -> list[ArenaPoint]:
        """Every point, in deterministic order (scheduler innermost)."""
        return [
            ArenaPoint(cluster, r, ns, nm, fault, scheduler)
            for cluster in self.clusters
            for r in self.resources
            for ns in self.scenarios
            for nm in self.months
            for fault in self.faults
            for scheduler in self.schedulers
        ]

    def as_dict(self) -> dict[str, Any]:
        """JSON form — also the journal's grid-identity line."""
        return {
            "clusters": list(self.clusters),
            "resources": list(self.resources),
            "scenarios": list(self.scenarios),
            "months": list(self.months),
            "faults": list(self.faults),
            "schedulers": list(self.schedulers),
            "seed": self.seed,
            "mtbf_hours": self.mtbf_hours,
            "mttr_hours": self.mttr_hours,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ArenaGrid":
        """Inverse of :meth:`as_dict`."""
        return cls(
            clusters=tuple(str(c) for c in raw["clusters"]),
            resources=tuple(int(r) for r in raw["resources"]),
            scenarios=tuple(int(s) for s in raw["scenarios"]),
            months=tuple(int(m) for m in raw["months"]),
            faults=tuple(str(f) for f in raw["faults"]),
            schedulers=tuple(str(s) for s in raw["schedulers"]),
            seed=int(raw.get("seed", 0)),
            mtbf_hours=float(raw.get("mtbf_hours", DEFAULT_MTBF_HOURS)),
            mttr_hours=float(raw.get("mttr_hours", DEFAULT_MTTR_HOURS)),
        )


#: Figure-shaped race presets, mirroring the golden-fixture parameters.
#: fig10's multi-cluster degradation story maps onto the fault axis
#: (seeded outages) rather than the paper's cluster-count axis.
ARENA_PRESETS: dict[str, dict[str, Any]] = {
    "fig7": {
        "clusters": ("sagittaire",),
        "r_min": 11, "r_max": 60, "step": 1,
        "scenarios": 10, "months": 12,
    },
    "fig8": {
        "clusters": ("sagittaire", "grelon", "chti", "paravent", "azur"),
        "r_min": 11, "r_max": 43, "step": 4,
        "scenarios": 10, "months": 12,
    },
    "fig10": {
        "clusters": ("sagittaire", "grelon", "chti", "paravent", "azur"),
        "r_min": 11, "r_max": 43, "step": 8,
        "scenarios": 10, "months": 12,
    },
}


@dataclass(frozen=True)
class ArenaRow:
    """One evaluated point.

    ``makespan is None`` marks an infeasible point (the scheduler could
    not produce a grouping there); ``completed`` is false when a fault
    trace crashed the run before the last month (the recorded makespan
    is then the progress horizon at the crash).  No timings on purpose:
    a resumed race must compare equal to an uninterrupted one.
    """

    point: ArenaPoint
    makespan: float | None
    grouping: str
    completed: bool

    def as_dict(self) -> dict[str, Any]:
        """JSON form used by the journal and the ``arena`` codec."""
        return {
            "cluster": self.point.cluster,
            "resources": self.point.resources,
            "scenarios": self.point.scenarios,
            "months": self.point.months,
            "fault": self.point.fault,
            "scheduler": self.point.scheduler,
            "makespan": self.makespan,
            "grouping": self.grouping,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ArenaRow":
        """Inverse of :meth:`as_dict`."""
        makespan = raw["makespan"]
        return cls(
            point=ArenaPoint(
                cluster=str(raw["cluster"]),
                resources=int(raw["resources"]),
                scenarios=int(raw["scenarios"]),
                months=int(raw["months"]),
                fault=str(raw["fault"]),
                scheduler=str(raw["scheduler"]),
            ),
            makespan=None if makespan is None else float(makespan),
            grouping=str(raw["grouping"]),
            completed=bool(raw["completed"]),
        )


@dataclass(frozen=True)
class ArenaResult:
    """A race's evaluated rows, in grid order."""

    grid: ArenaGrid
    rows: tuple[ArenaRow, ...]

    @property
    def complete(self) -> bool:
        """Whether every grid point has a row."""
        return len(self.rows) == self.grid.size

    def row_for(self, point: ArenaPoint) -> ArenaRow:
        """The row recorded for one point (KeyError if absent)."""
        for row in self.rows:
            if row.point == point:
                return row
        raise KeyError(point)

    def cells(self) -> dict[tuple, dict[str, ArenaRow]]:
        """Rows grouped by competition cell: ``{cell: {scheduler: row}}``."""
        grouped: dict[tuple, dict[str, ArenaRow]] = {}
        for row in self.rows:
            grouped.setdefault(row.point.cell(), {})[row.point.scheduler] = row
        return grouped

    def gain_rows(self, baseline: str = "basic") -> dict[tuple, dict[str, float]]:
        """Per-cell gain-over-baseline percentages (the paper's metric).

        Cells where the baseline is infeasible or did not complete are
        skipped; within a cell, so are competitors without a completed
        makespan.  Scored in one vectorized pass via
        :func:`repro.core.batch.batch_gains_over_baseline`, which is
        bit-for-bit equal to the per-cell
        :func:`repro.analysis.gains.gains_over_baseline` the figures
        use — so paper-adapter gains match the golden fixtures exactly.
        """
        from repro.core.batch import batch_gains_over_baseline

        keys: list[tuple] = []
        scored: list[dict[str, float]] = []
        for cell, by_scheduler in self.cells().items():
            base = by_scheduler.get(baseline)
            if base is None or base.makespan is None or not base.completed:
                continue
            makespans = {
                name: row.makespan
                for name, row in by_scheduler.items()
                if row.makespan is not None and row.completed
            }
            if baseline not in makespans:
                continue
            keys.append(cell)
            scored.append(makespans)
        return dict(
            zip(keys, batch_gains_over_baseline(scored, baseline_key=baseline), strict=True)
        )

    def mean_gains(self, baseline: str = "basic") -> dict[str, float]:
        """Mean gain over the baseline per scheduler, across scored cells."""
        totals: dict[str, list[float]] = {}
        for cell_gains in self.gain_rows(baseline).values():
            for name, gain in cell_gains.items():
                totals.setdefault(name, []).append(gain)
        return {
            name: sum(values) / len(values)
            for name, values in totals.items()
        }

    def win_matrix(self) -> dict[str, dict[str, int]]:
        """Pairwise wins: ``matrix[a][b]`` counts cells where ``a``
        strictly beats ``b`` (both feasible and completed; ties and
        one-sided infeasibility score for neither).
        """
        names = self.grid.schedulers
        matrix: dict[str, dict[str, int]] = {
            a: {b: 0 for b in names if b != a} for a in names
        }
        for by_scheduler in self.cells().values():
            scored = {
                name: row.makespan
                for name, row in by_scheduler.items()
                if row.makespan is not None and row.completed
            }
            for a in names:
                for b in names:
                    if a == b or a not in scored or b not in scored:
                        continue
                    if scored[a] < scored[b]:
                        matrix[a][b] += 1
        return matrix

    def summary(self) -> dict[str, Any]:
        """Aggregate race standings (JSON-friendly).

        A scheduler *wins* a cell when it has the strictly smallest
        completed makespan there; exact ties award every tied scheduler.
        """
        evaluated = [row for row in self.rows if row.makespan is not None]
        completed = [row for row in evaluated if row.completed]
        wins: dict[str, int] = {s: 0 for s in self.grid.schedulers}
        for by_scheduler in self.cells().values():
            scored = {
                name: row.makespan
                for name, row in by_scheduler.items()
                if row.makespan is not None and row.completed
            }
            if not scored:
                continue
            best = min(scored.values())
            for name, makespan in scored.items():
                if makespan == best:
                    wins[name] += 1
        return {
            "points": self.grid.size,
            "evaluated": len(self.rows),
            "feasible": len(evaluated),
            "completed": len(completed),
            "crashed": len(evaluated) - len(completed),
            "wins": wins,
            "mean_gain_over_basic": self.mean_gains(),
            "win_matrix": self.win_matrix(),
        }


def _arena_payload(result: ArenaResult) -> dict[str, Any]:
    return {
        "grid": result.grid.as_dict(),
        "rows": [row.as_dict() for row in result.rows],
    }


def _arena_restore(raw: dict[str, Any]) -> ArenaResult:
    return ArenaResult(
        grid=ArenaGrid.from_dict(raw["grid"]),
        rows=tuple(ArenaRow.from_dict(row) for row in raw["rows"]),
    )


register_codec("arena", ArenaResult, _arena_payload, _arena_restore)


# ---------------------------------------------------------------------------
# Evaluation (module-level: these run in worker processes).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ChaosConfig:
    """The grid knobs evaluation needs beyond the point itself."""

    seed: int
    mtbf_hours: float
    mttr_hours: float


def _trace_for_point(
    point: ArenaPoint,
    cluster: Any,
    spec: EnsembleSpec,
    config: _ChaosConfig,
    fault_seed: int,
) -> FaultTrace:
    """The seeded trace every scheduler in this cell faces.

    The horizon is the cell's fault-free *basic* makespan — scheduler-
    independent, so competitors in one cell race against identical
    weather.  Where even basic is infeasible, a serial upper bound
    (every month at the narrowest width, posts after) keeps the horizon
    deterministic.
    """
    timing = cluster.timing
    try:
        base = plan_grouping(cluster, spec, HeuristicName.BASIC)
        horizon = cached_simulated_makespan(base, spec, timing)
    except SchedulingError:
        horizon = spec.scenarios * spec.months * (
            timing.main_time(timing.min_group) + timing.post_time()
        )
    profile = FaultProfile(
        mtbf_seconds=config.mtbf_hours * 3600.0,
        mttr_seconds=config.mttr_hours * 3600.0,
    )
    return generate_trace({point.cluster: profile}, horizon, fault_seed)


def _eval_point(
    point: ArenaPoint, config: _ChaosConfig
) -> tuple[ArenaRow, float]:
    """Decide and simulate one point; returns ``(row, decide_seconds)``.

    The latency is returned *beside* the row, never inside it: rows are
    journaled and must be identical across hosts and resumes.
    """
    from repro.faults.hooks import simulate_with_faults
    from repro.platform.benchmarks import benchmark_cluster

    cluster = benchmark_cluster(point.cluster, point.resources)
    spec = EnsembleSpec(point.scenarios, point.months)
    scheduler = get_scheduler(point.scheduler, seed=config.seed)
    started = time.perf_counter()
    try:
        grouping = scheduler.decide(cluster, spec)
    except SchedulingError:
        return ArenaRow(point, None, "", False), time.perf_counter() - started
    decide_seconds = time.perf_counter() - started

    fault_seed = _fault_seed(point.fault)
    if fault_seed is None:
        makespan = cached_simulated_makespan(grouping, spec, cluster.timing)
        completed = True
    else:
        trace = _trace_for_point(point, cluster, spec, config, fault_seed)
        _, outcome = simulate_with_faults(
            grouping, spec, cluster.timing, trace, cluster_name=point.cluster
        )
        makespan = outcome.makespan
        completed = not outcome.crashed
    return (
        ArenaRow(point, makespan, grouping.describe(), completed),
        decide_seconds,
    )


def _eval_chunk(
    chunk: tuple[ArenaPoint, ...],
    config: _ChaosConfig,
    use_cache: bool = True,
) -> tuple[tuple[ArenaRow, ...], tuple[float, ...]]:
    """Evaluate one chunk (the unit shipped to worker processes)."""
    previous = set_makespan_cache_enabled(use_cache)
    try:
        results = [_eval_point(point, config) for point in chunk]
    finally:
        set_makespan_cache_enabled(previous)
    return (
        tuple(row for row, _ in results),
        tuple(latency for _, latency in results),
    )


def _evaluate(
    chunks: list[tuple[ArenaPoint, ...]],
    config: _ChaosConfig,
    workers: int | None,
    use_cache: bool,
) -> Iterator[tuple[tuple[ArenaRow, ...], tuple[float, ...]]]:
    """Yield chunk results in order, serially or across a process pool.

    Same contract as the sweep engine: ``workers in (None, 0, 1)`` is
    serial, order is preserved, and parallel rows are bit-identical to
    serial ones (latencies, of course, are not — they are measurements).
    """
    if workers is not None and workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers!r}")
    if workers in (None, 0, 1) or len(chunks) <= 1:
        for chunk in chunks:
            yield _eval_chunk(chunk, config, use_cache)
        return
    from concurrent.futures import ProcessPoolExecutor
    from functools import partial

    with ProcessPoolExecutor(max_workers=workers) as executor:
        yield from executor.map(
            partial(_eval_chunk, config=config, use_cache=use_cache), chunks
        )


# ---------------------------------------------------------------------------
# Journal.
# ---------------------------------------------------------------------------


def _grid_line(grid: ArenaGrid) -> str:
    return dump_result(
        GenericResult(kind="arena-grid", data={"grid": grid.as_dict()})
    )


def _rows_line(rows: Iterable[ArenaRow]) -> str:
    return dump_result(
        GenericResult(
            kind="arena-rows", data={"rows": [row.as_dict() for row in rows]}
        )
    )


def _load_journal(path: Path, grid: ArenaGrid) -> dict[tuple, ArenaRow] | None:
    """Rows already journaled for ``grid``, keyed by point identity.

    Same contract as the sweep journal loader: ``None`` means nothing
    usable (start fresh), a different grid or corruption before the
    final line raises :class:`~repro.exceptions.ConfigurationError`,
    and only a torn final line is forgiven.
    """
    lines = path.read_text().splitlines()
    done: dict[tuple, ArenaRow] = {}
    grid_seen = False
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        last = index == len(lines) - 1
        try:
            envelope = load_result(line)
        except ConfigurationError:
            if last:
                break  # torn trailing write — discard and re-evaluate
            raise ConfigurationError(
                f"corrupt arena journal {path} at line {index + 1}"
            ) from None
        if not isinstance(envelope, GenericResult):
            raise ConfigurationError(
                f"arena journal {path} line {index + 1} holds "
                f"{type(envelope).__name__}, not an arena envelope"
            )
        if not grid_seen:
            if envelope.kind != "arena-grid":
                raise ConfigurationError(
                    f"arena journal {path} does not start with a grid line"
                )
            if envelope.data.get("grid") != grid.as_dict():
                raise ConfigurationError(
                    f"arena journal {path} was written for a different race; "
                    f"pass resume=False (or a fresh path) to overwrite it"
                )
            grid_seen = True
            continue
        if envelope.kind != "arena-rows":
            raise ConfigurationError(
                f"arena journal {path} line {index + 1} has unexpected "
                f"kind {envelope.kind!r}"
            )
        for raw in envelope.data.get("rows", ()):
            try:
                row = ArenaRow.from_dict(raw)
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"arena journal {path} line {index + 1} holds a "
                    f"malformed row: {exc}"
                ) from exc
            done[row.point.key()] = row
    return done if grid_seen else None


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def run_arena(
    grid: ArenaGrid,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    journal_path: str | Path | None = None,
    resume: bool = True,
    max_chunks: int | None = None,
    use_cache: bool = True,
    latency_sink: dict[str, list[float]] | None = None,
) -> ArenaResult:
    """Race a grid, journaling each chunk so the race is resumable.

    The contract mirrors :func:`repro.experiments.sweep.run_sweep`:
    ``workers in (None, 0, 1)`` is serial, the journal advances one
    chunk at a time, ``max_chunks`` caps this call's work (the result
    is then partial and a later call with the same journal finishes),
    and a resumed race equals an uninterrupted one row for row.

    ``latency_sink``, when given, collects decision latencies for the
    points *this call* evaluated, keyed by scheduler name — resumed
    points contribute none (their decisions happened in an earlier
    process).  Latency also flows through the
    ``scheduler.decide_seconds`` metric when observability is on.
    """
    points = grid.points()
    config = _ChaosConfig(grid.seed, grid.mtbf_hours, grid.mttr_hours)
    journal = Path(journal_path) if journal_path is not None else None
    done: dict[tuple, ArenaRow] = {}
    fresh_journal = journal is not None
    if journal is not None and resume and journal.exists():
        loaded = _load_journal(journal, grid)
        if loaded is not None:
            done = loaded
            fresh_journal = False

    pending = [point for point in points if point.key() not in done]
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    elif chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size!r}")
    chunks = [
        tuple(pending[i : i + chunk_size])
        for i in range(0, len(pending), chunk_size)
    ]
    if max_chunks is not None:
        if max_chunks < 0:
            raise ConfigurationError(
                f"max_chunks must be >= 0, got {max_chunks!r}"
            )
        chunks = chunks[:max_chunks]

    handle = None
    if journal is not None:
        handle = journal.open("w" if fresh_journal else "a")
        if fresh_journal:
            handle.write(_grid_line(grid) + "\n")
            handle.flush()

    started = time.perf_counter()
    evaluated = 0
    try:
        with obs.span(
            "arena.race",
            points=grid.size, pending=len(pending), chunks=len(chunks),
            schedulers=len(grid.schedulers),
        ):
            for rows, latencies in _evaluate(chunks, config, workers, use_cache):
                for row, latency in zip(rows, latencies):
                    done[row.point.key()] = row
                    if latency_sink is not None:
                        latency_sink.setdefault(
                            row.point.scheduler, []
                        ).append(latency)
                evaluated += len(rows)
                if handle is not None:
                    handle.write(_rows_line(rows) + "\n")
                    handle.flush()
                obs.inc("arena.points", len(rows))
                obs.inc("arena.chunks")
    finally:
        if handle is not None:
            handle.close()

    if obs.enabled():
        obs.observe("arena.seconds", time.perf_counter() - started)
        obs.inc("arena.races")
        stats = makespan_cache_stats()
        for kind, counters in stats.items():
            obs.set_gauge("makespan.cache_size", counters["size"], kind=kind)
        obs.set_gauge("arena.resumed_points", len(done) - evaluated)

    rows = tuple(done[point.key()] for point in points if point.key() in done)
    return ArenaResult(grid=grid, rows=rows)
