"""The paper's four heuristics as registry entries.

These adapters delegate to :func:`repro.core.heuristics.plan_grouping`,
so an arena race over them is evaluating *exactly* the code paths behind
the fig7/fig8 golden fixtures — nothing is special-cased, and the
gain-over-basic numbers the arena reports for these four reproduce the
figures bit-for-bit (``tests/schedulers/test_arena_golden.py`` pins
that equivalence).
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.grouping import Grouping
from repro.core.heuristics import HeuristicName, plan_grouping
from repro.platform.cluster import ClusterSpec
from repro.schedulers.base import Scheduler, register_scheduler
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = [
    "AllPostEndScheduler",
    "BasicScheduler",
    "KnapsackScheduler",
    "PAPER_SCHEDULERS",
    "RedistributeScheduler",
]


class _PaperScheduler(Scheduler):
    """Shared adapter body: delegate to the heuristic registry."""

    heuristic: ClassVar[HeuristicName]

    def plan(self, cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
        return plan_grouping(cluster, spec, self.heuristic)


@register_scheduler
class BasicScheduler(_PaperScheduler):
    name = "basic"
    description = "Paper §4.1: uniform groups at the analytically best width"
    heuristic = HeuristicName.BASIC


@register_scheduler
class RedistributeScheduler(_PaperScheduler):
    name = "redistribute"
    description = "Paper improvement 1: idle processors spread across groups"
    heuristic = HeuristicName.REDISTRIBUTE


@register_scheduler
class AllPostEndScheduler(_PaperScheduler):
    name = "allpost_end"
    description = "Paper improvement 2: no post pool, post-processing at the end"
    heuristic = HeuristicName.ALLPOST_END


@register_scheduler
class KnapsackScheduler(_PaperScheduler):
    name = "knapsack"
    description = "Paper improvement 3: knapsack-optimal group multiset"
    heuristic = HeuristicName.KNAPSACK


#: The four adapters in the paper's presentation order — the arena's
#: default baseline ordering and the set golden-parity tests race.
PAPER_SCHEDULERS: tuple[str, ...] = (
    "basic", "redistribute", "allpost_end", "knapsack",
)
