"""The :class:`Scheduler` interface and its plugin registry.

The paper evaluates four hand-rolled heuristics; the arena
(:mod:`repro.schedulers.arena`) makes that comparison open-ended by
racing anything that implements one small contract: a scheduler takes a
platform (:class:`~repro.platform.cluster.ClusterSpec`) and a scenario
spec (:class:`~repro.workflow.ocean_atmosphere.EnsembleSpec`) and
returns a :class:`~repro.core.grouping.Grouping` that passes
:meth:`~repro.core.grouping.Grouping.validate_against`.

Registration is decorator-based::

    @register_scheduler
    class MyScheduler(Scheduler):
        name = "my-scheduler"
        description = "what it does"

        def plan(self, cluster, spec):
            return Grouping.from_sizes([8, 8], cluster.resources)

and discovery goes through :func:`list_schedulers` /
:func:`get_scheduler`.  Every scheduler is constructed with a ``seed``
(ignored by deterministic ones) so stochastic competitors replay
bit-for-bit: the same ``(scheduler, seed, cluster, spec)`` always
yields the same grouping — the arena journal depends on it.

Callers go through :meth:`Scheduler.decide`, never :meth:`Scheduler.plan`
directly: ``decide`` validates the returned grouping against the timing
model and the paper's cardinality rule, and instruments the decision
(``scheduler.decide`` span, ``scheduler.decisions`` /
``scheduler.decide_seconds`` metrics) when observability is on.
"""

from __future__ import annotations

import abc
import time
from typing import ClassVar, Iterator

from repro import obs
from repro.core.grouping import Grouping
from repro.exceptions import ConfigurationError
from repro.platform.cluster import ClusterSpec
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = [
    "Scheduler",
    "get_scheduler",
    "iter_schedulers",
    "list_schedulers",
    "register_scheduler",
]

_log = obs.get_logger(__name__)


class Scheduler(abc.ABC):
    """One processor-partitioning strategy behind a uniform contract.

    Subclasses set the class attributes ``name`` (registry key,
    filename-safe) and ``description`` (one line for ``--list`` style
    output) and implement :meth:`plan`.  Schedulers must be pure in
    ``(seed, cluster, spec)``: no hidden state, no wall-clock reads, no
    unseeded randomness — the arena replays and resumes races on that
    assumption.
    """

    #: Registry key; unique across the process.
    name: ClassVar[str] = ""

    #: One-line summary shown by discovery listings.
    description: ClassVar[str] = ""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ConfigurationError(f"scheduler seed must be an int, got {seed!r}")
        self.seed = seed

    @abc.abstractmethod
    def plan(self, cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
        """Produce a grouping for ``spec`` on ``cluster``.

        Raise :class:`~repro.exceptions.SchedulingError` when the
        cluster cannot host any admissible partition.
        """

    def decide(self, cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
        """Plan, validate, and instrument — the arena's entry point.

        The returned grouping has passed
        :meth:`~repro.core.grouping.Grouping.validate_against`, so a
        scheduler that emits an inadmissible partition fails here, at
        the decision, not deep inside the simulator.
        """
        if not obs.enabled():
            grouping = self.plan(cluster, spec)
            grouping.validate_against(cluster.timing, spec.scenarios)
            return grouping
        with obs.span(
            "scheduler.decide", scheduler=self.name, cluster=cluster.name
        ):
            started = time.perf_counter()
            grouping = self.plan(cluster, spec)
            elapsed = time.perf_counter() - started
        grouping.validate_against(cluster.timing, spec.scenarios)
        obs.inc("scheduler.decisions", scheduler=self.name, cluster=cluster.name)
        obs.observe(
            "scheduler.decide_seconds", elapsed,
            scheduler=self.name, cluster=cluster.name,
        )
        obs.log_event(
            _log, "scheduler.decided",
            scheduler=self.name, cluster=cluster.name,
            grouping=grouping.describe(), decide_seconds=elapsed,
        )
        return grouping


_REGISTRY: dict[str, type[Scheduler]] = {}


def register_scheduler(cls: type[Scheduler]) -> type[Scheduler]:
    """Class decorator adding a :class:`Scheduler` to the registry.

    The class must declare a non-empty, filename-safe ``name``;
    registering a taken name with a different class is an error while
    re-registering the same class is a no-op (idempotent imports, the
    same contract as :func:`repro.experiments.results_io.register_codec`).
    """
    if not issubclass(cls, Scheduler):
        raise ConfigurationError(
            f"@register_scheduler needs a Scheduler subclass, got {cls!r}"
        )
    name = cls.name
    if not name or any(ch in name for ch in "/\\ "):
        raise ConfigurationError(
            f"scheduler name {name!r} must be non-empty and filename-safe "
            f"(no spaces or slashes)"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"scheduler name {name!r} is already registered "
            f"for {existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def list_schedulers() -> tuple[str, ...]:
    """Every registered scheduler name, in registration order.

    The paper's four adapters register first (package import order), so
    figure-style reports keep the familiar baseline-first ordering.
    """
    _ensure_loaded()
    return tuple(_REGISTRY)


def get_scheduler(name: str, *, seed: int = 0) -> Scheduler:
    """Construct one registered scheduler by name."""
    _ensure_loaded()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return cls(seed=seed)


def iter_schedulers(*, seed: int = 0) -> Iterator[Scheduler]:
    """One instance of every registered scheduler, registration order."""
    for name in list_schedulers():
        yield get_scheduler(name, seed=seed)


def _ensure_loaded() -> None:
    """Import the built-in scheduler modules exactly once.

    Discovery must not depend on what the caller happened to import:
    ``list_schedulers()`` from a cold process and from a process that
    already ran a race must agree.
    """
    import repro.schedulers  # noqa: F401  (package __init__ registers all)
