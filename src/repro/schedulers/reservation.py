"""Advance-reservation scheduler (after Prajapati & Shah, arXiv:1211.1447).

Advance-reservation DAG scheduling books every window a workflow will
need *before* execution starts, then commits to the booking that
finishes earliest.  Mapped onto our moldable month-chains, a booking is
a uniform reservation: ``n`` main windows of width ``G`` cycling through
the scenarios, plus a pool of post windows sized to the steady-state
post arrival rate — each group emits one post (cost ``TP``) every
``T(G)`` seconds, so ``n`` groups keep ``ceil(n · TP / T(G))`` post
processors busy.  Reserving more wastes the machine; reserving fewer
backs up the post queue and stretches the horizon.

The scheduler enumerates every admissible booking ``(G, n, post)``
— exhaustive, not sampled: the booking space is at most
``|group_sizes| × NS × 2`` — scores each by its simulated completion
horizon, and returns the earliest-finishing one.  Fully deterministic:
ties break toward the smaller reservation (fewer processors booked,
then narrower groups, then fewer groups).
"""

from __future__ import annotations

import math

from repro.core.grouping import Grouping
from repro.core.makespan import cached_simulated_makespan
from repro.exceptions import SchedulingError
from repro.platform.cluster import ClusterSpec
from repro.schedulers.base import Scheduler, register_scheduler
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["ReservationScheduler"]


def _post_reservation(n_groups: int, width: int, cluster: ClusterSpec) -> int:
    """Post processors the steady-state arrival rate keeps busy."""
    timing = cluster.timing
    return math.ceil(n_groups * timing.post_time() / timing.main_time(width))


@register_scheduler
class ReservationScheduler(Scheduler):
    name = "reservation"
    description = (
        "Advance reservation: book uniform main windows plus a rate-matched "
        "post pool, commit to the earliest-finishing booking"
    )

    def plan(self, cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
        timing = cluster.timing
        resources = cluster.resources
        best_key: tuple[float, int, int, int] | None = None
        best: Grouping | None = None
        for width in timing.group_sizes:
            if width > resources:
                continue
            max_groups = min(spec.scenarios, resources // width)
            for n_groups in range(1, max_groups + 1):
                leftover = resources - n_groups * width
                rate_matched = min(leftover, _post_reservation(
                    n_groups, width, cluster
                ))
                # Two candidate bookings per (G, n): rate-matched post
                # reservation (spare capacity idles) and every leftover
                # booked as post.  dict keys de-duplicate when equal.
                for post in dict.fromkeys((rate_matched, leftover)):
                    grouping = Grouping.uniform(
                        width, n_groups, resources, post_pool=post
                    )
                    horizon = cached_simulated_makespan(grouping, spec, timing)
                    key = (horizon, n_groups * width + post, width, n_groups)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = grouping
        if best is None:
            raise SchedulingError(
                f"no admissible reservation on {resources} processors "
                f"(min main width {timing.min_group})"
            )
        return best
