"""Online list-scheduling policies promoted to arena competitors.

The online baseline (:mod:`repro.simulation.online`) allocates from one
shared pool, task by task.  Its opening move — the first allocation wave
on an idle machine — is a complete static partition: every scenario that
can start gets a width, the leftovers idle.  These schedulers commit to
that wave as a :class:`~repro.core.grouping.Grouping` (leftover
processors become the post pool), which is precisely what an online
greedy list-scheduler "believes" the right partition is before any
release staggers the pool.

Racing them against the paper's heuristics quantifies the cost of
deciding greedily: at tight resource counts the greedy wave strands a
sub-``min_group`` remainder where the knapsack would have rebalanced
widths.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.grouping import Grouping
from repro.exceptions import SchedulingError, SimulationError
from repro.platform.cluster import ClusterSpec
from repro.schedulers.base import Scheduler, register_scheduler
from repro.simulation.online import first_wave_widths
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["OnlineGreedyScheduler", "OnlineKnapsackScheduler"]


class _OnlineScheduler(Scheduler):
    """Shared body: first allocation wave, leftovers to the post pool."""

    policy: ClassVar[str]

    def plan(self, cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
        try:
            widths = first_wave_widths(
                cluster.resources, spec.scenarios, cluster.timing,
                policy=self.policy,
            )
        except SimulationError as exc:
            raise SchedulingError(str(exc)) from exc
        if not widths:
            raise SchedulingError(
                f"online policy {self.policy!r} starts no main task on "
                f"{cluster.resources} processors"
            )
        return Grouping.from_sizes(widths, cluster.resources)


@register_scheduler
class OnlineGreedyScheduler(_OnlineScheduler):
    name = "online-greedy"
    description = "First wave of the greedy-max online policy as a static partition"
    policy = "greedy-max"


@register_scheduler
class OnlineKnapsackScheduler(_OnlineScheduler):
    name = "online-knapsack"
    description = "First wave of the knapsack-aware online policy as a static partition"
    policy = "knapsack-aware"
