"""Discrete-event makespan simulation of group schedules.

Implements the evaluation procedure of Section 4.3: "The execution of
multiprocessor tasks is done by sorting the ready time of each group of
processors and when a group becomes ready, the month of the less
advanced simulation waiting is scheduled on this group."  Post-processing
tasks run on the dedicated post pool and on the processors of main-task
groups once those permanently retire (the paper's ``Rleft`` reuse).

The engine is deterministic, trace-optional (makespans can be computed
without materializing task records), and validated: every schedule it
emits can be replayed through :mod:`repro.simulation.validate`, which
checks resource exclusivity and dependency correctness.
"""

from repro.simulation.events import TaskRecord, SimulationResult
from repro.simulation.engine import simulate, simulate_on_cluster
from repro.simulation.dag_engine import (
    DagTaskRecord,
    DagSimulationResult,
    simulate_dag,
)
from repro.simulation.online import OnlineResult, simulate_online
from repro.simulation.export import to_chrome_trace, trace_to_csv
from repro.simulation.groups import proc_ranges
from repro.simulation.metrics import (
    utilization,
    busy_seconds_by_kind,
    scenario_finish_times,
    fairness_spread,
    idle_seconds,
)
from repro.simulation.trace import render_gantt, trace_summary
from repro.simulation.validate import validate_schedule

__all__ = [
    "TaskRecord",
    "SimulationResult",
    "simulate",
    "simulate_on_cluster",
    "DagTaskRecord",
    "DagSimulationResult",
    "simulate_dag",
    "OnlineResult",
    "simulate_online",
    "to_chrome_trace",
    "trace_to_csv",
    "proc_ranges",
    "utilization",
    "busy_seconds_by_kind",
    "scenario_finish_times",
    "fairness_spread",
    "idle_seconds",
    "render_gantt",
    "trace_summary",
    "validate_schedule",
]
