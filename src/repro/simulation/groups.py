"""Processor-id layout of a grouping.

The simulator identifies processors by integer ids ``0 .. R-1``.  Groups
occupy contiguous ranges in grouping order, followed by the dedicated
post pool; any idle processors take the tail ids.  Keeping the layout in
one place lets the validator reconstruct it independently.
"""

from __future__ import annotations

from repro.core.grouping import Grouping

__all__ = ["proc_ranges", "post_pool_range"]


def proc_ranges(grouping: Grouping) -> list[range]:
    """Contiguous processor-id range of each main-task group, in order."""
    ranges: list[range] = []
    offset = 0
    for size in grouping.group_sizes:
        ranges.append(range(offset, offset + size))
        offset += size
    return ranges


def post_pool_range(grouping: Grouping) -> range:
    """Processor-id range of the dedicated post pool."""
    start = grouping.main_resources
    return range(start, start + grouping.post_pool)
