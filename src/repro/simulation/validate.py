"""Independent correctness checks on simulated schedules.

:func:`validate_schedule` replays a traced
:class:`~repro.simulation.events.SimulationResult` against the problem
definition and raises :class:`~repro.exceptions.ValidationError` on any
violation.  It deliberately reconstructs the processor layout itself
(via :mod:`repro.simulation.groups`) rather than trusting the engine's
bookkeeping, so an engine bug cannot validate itself away.  The
property-based tests run it on thousands of randomized instances.

Checked invariants
------------------
1. every ``main(s, m)`` and ``post(s, m)`` occurs exactly once;
2. chain dependencies: ``main(s, m)`` starts no earlier than
   ``main(s, m-1)`` ends;
3. post dependencies: ``post(s, m)`` starts no earlier than
   ``main(s, m)`` ends;
4. durations match the timing model (mains per their group's size,
   posts equal to ``TP``);
5. main tasks run inside their group's processor range; posts run on
   single processors inside the cluster;
6. no processor is occupied by two tasks at once;
7. the reported makespans equal the trace's actual extents.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.platform.timing import TimingModel
from repro.simulation.events import SimulationResult, TaskRecord
from repro.simulation.groups import proc_ranges

__all__ = ["validate_schedule"]

_EPS = 1e-6


def validate_schedule(result: SimulationResult, timing: TimingModel) -> None:
    """Raise :class:`ValidationError` unless the schedule is correct."""
    if not result.has_trace:
        raise ValidationError(
            "cannot validate a schedule without records; re-simulate with "
            "record_trace=True"
        )
    ns, nm = result.spec.scenarios, result.spec.months
    expected = ns * nm
    ranges = proc_ranges(result.grouping)
    tp = timing.post_time()

    mains: dict[tuple[int, int], tuple[float, float]] = {}
    posts: dict[tuple[int, int], tuple[float, float]] = {}

    for record in result.records:
        key = (record.scenario, record.month)
        if not (0 <= record.scenario < ns and 0 <= record.month < nm):
            raise ValidationError(f"task outside the ensemble: {record}")
        if record.kind == "main":
            if key in mains:
                raise ValidationError(f"main{key} scheduled twice")
            mains[key] = (record.start, record.end)
            _check_main_record(record, ranges, timing)
        else:
            if key in posts:
                raise ValidationError(f"post{key} scheduled twice")
            posts[key] = (record.start, record.end)
            _check_post_record(record, result, tp)

    if len(mains) != expected:
        raise ValidationError(f"expected {expected} main tasks, saw {len(mains)}")
    if len(posts) != expected:
        raise ValidationError(f"expected {expected} post tasks, saw {len(posts)}")

    for (s, m), (start, _end) in mains.items():
        if m > 0:
            prev_end = mains[(s, m - 1)][1]
            if start < prev_end - _EPS:
                raise ValidationError(
                    f"main(s{s},m{m}) starts at {start} before "
                    f"main(s{s},m{m - 1}) ends at {prev_end}"
                )
    for (s, m), (start, _end) in posts.items():
        main_end = mains[(s, m)][1]
        if start < main_end - _EPS:
            raise ValidationError(
                f"post(s{s},m{m}) starts at {start} before its main ends "
                f"at {main_end}"
            )

    _check_no_overlap(result)

    actual_main = max(end for _, end in mains.values())
    actual_total = max(actual_main, max(end for _, end in posts.values()))
    if abs(actual_main - result.main_makespan) > _EPS:
        raise ValidationError(
            f"reported main makespan {result.main_makespan} != trace extent "
            f"{actual_main}"
        )
    if abs(actual_total - result.makespan) > _EPS:
        raise ValidationError(
            f"reported makespan {result.makespan} != trace extent {actual_total}"
        )


def _check_main_record(
    record: TaskRecord, ranges: list[range], timing: TimingModel
) -> None:
    if not 0 <= record.group < len(ranges):
        raise ValidationError(f"main task on unknown group: {record}")
    rng = ranges[record.group]
    if record.procs_start != rng.start or record.procs_stop != rng.stop:
        raise ValidationError(
            f"main task procs {record.procs_start}:{record.procs_stop} do "
            f"not match group {record.group}'s range {rng.start}:{rng.stop}"
        )
    expected = timing.main_time(len(rng))
    if abs(record.duration - expected) > _EPS:
        raise ValidationError(
            f"main task duration {record.duration} != T[{len(rng)}] = {expected}"
        )


def _check_post_record(
    record: TaskRecord, result: SimulationResult, tp: float
) -> None:
    if record.n_procs != 1:
        raise ValidationError(f"post task on {record.n_procs} processors: {record}")
    if not 0 <= record.procs_start < result.grouping.total_resources:
        raise ValidationError(f"post task on nonexistent processor: {record}")
    if abs(record.duration - tp) > _EPS:
        raise ValidationError(f"post task duration {record.duration} != TP = {tp}")


def _check_no_overlap(result: SimulationResult) -> None:
    """Sweep each processor's intervals for pairwise overlap."""
    per_proc: dict[int, list[tuple[float, float]]] = {}
    for record in result.records:
        for proc in record.procs:
            per_proc.setdefault(proc, []).append((record.start, record.end))
    for proc, intervals in per_proc.items():
        intervals.sort()
        for (_s1, e1), (s2, _e2) in zip(intervals, intervals[1:], strict=False):
            if s2 < e1 - _EPS:
                raise ValidationError(
                    f"processor {proc} double-booked: interval starting at "
                    f"{s2} overlaps one ending at {e1}"
                )
