"""Result records of the makespan simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.grouping import Grouping
from repro.exceptions import SimulationError
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["TaskRecord", "SimulationResult"]


@dataclass(frozen=True)
class TaskRecord:
    """One executed task occurrence in a simulated schedule.

    ``group`` is the index of the main-task group that ran a MAIN task
    and ``-1`` for POST tasks (which run on individual processors drawn
    from the post pool or from retired groups).  ``procs`` is the
    half-open processor-id range ``[procs_start, procs_stop)`` occupied
    for the task's whole duration.
    """

    kind: str  # "main" | "post"
    scenario: int
    month: int
    start: float
    end: float
    group: int
    procs_start: int
    procs_stop: int

    def __post_init__(self) -> None:
        if self.kind not in ("main", "post"):
            raise SimulationError(f"unknown task kind {self.kind!r}")
        if self.end < self.start:
            raise SimulationError(
                f"task {self.kind}[s{self.scenario},m{self.month}] ends "
                f"({self.end}) before it starts ({self.start})"
            )
        if self.procs_stop <= self.procs_start:
            raise SimulationError(
                f"task {self.kind}[s{self.scenario},m{self.month}] occupies "
                f"an empty processor range"
            )

    @property
    def duration(self) -> float:
        """Wall-clock seconds of this task occurrence."""
        return self.end - self.start

    @property
    def n_procs(self) -> int:
        """Processors occupied."""
        return self.procs_stop - self.procs_start

    @property
    def procs(self) -> range:
        """Occupied processor ids as a :class:`range`."""
        return range(self.procs_start, self.procs_stop)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one cluster-level simulation.

    ``records`` is empty unless the simulation was run with
    ``record_trace=True`` — makespans never require materializing the
    full trace, and the figure sweeps run thousands of simulations.
    """

    makespan: float
    main_makespan: float
    grouping: Grouping
    spec: EnsembleSpec
    cluster_name: str = "cluster"
    records: tuple[TaskRecord, ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        if self.makespan < 0 or self.main_makespan < 0:
            raise SimulationError("makespans must be non-negative")
        if self.main_makespan > self.makespan + 1e-9:
            raise SimulationError(
                f"main makespan ({self.main_makespan}) exceeds total "
                f"makespan ({self.makespan})"
            )

    @property
    def has_trace(self) -> bool:
        """Whether per-task records were collected."""
        return bool(self.records)

    def records_of_kind(self, kind: str) -> list[TaskRecord]:
        """All records of one kind (``"main"`` or ``"post"``)."""
        return [r for r in self.records if r.kind == kind]

    def record_for(self, kind: str, scenario: int, month: int) -> TaskRecord:
        """The unique record of a task occurrence; raises if absent."""
        for r in self.records:
            if r.kind == kind and r.scenario == scenario and r.month == month:
                return r
        raise SimulationError(
            f"no record for {kind}[s{scenario},m{month}] "
            f"(trace recorded: {self.has_trace})"
        )
