"""Trace export — schedules as files other tools can open.

Two formats:

* :func:`to_chrome_trace` — the Chrome/Perfetto *Trace Event* JSON
  format.  Load the output in ``chrome://tracing`` or
  https://ui.perfetto.dev and every processor becomes a swim-lane with
  its main and post tasks as labelled slices — a zoomable, inspectable
  version of the ASCII Gantt.  (Timestamps are microseconds in that
  format; we map one simulated second to one microsecond so a 40-hour
  campaign stays within the viewer's comfortable zoom range.)

* :func:`trace_to_csv` — one row per task occurrence, for spreadsheets
  and ad-hoc analysis.
"""

from __future__ import annotations

import json

from repro.exceptions import SimulationError
from repro.simulation.events import SimulationResult

__all__ = ["to_chrome_trace", "trace_to_csv"]


def _require_trace(result: SimulationResult) -> None:
    if not result.has_trace:
        raise SimulationError(
            "trace export needs per-task records; re-run the simulation "
            "with record_trace=True"
        )


def to_chrome_trace(result: SimulationResult) -> str:
    """Serialize a traced schedule as Trace Event JSON.

    One complete ("X") event per (task, processor) occupancy: main tasks
    appear once per processor of their group so every lane shows its
    own slice, exactly like the Gantt.  Lane metadata names the
    processors; the process name carries the cluster and grouping.
    """
    _require_trace(result)
    events: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {
                "name": (
                    f"{result.cluster_name} "
                    f"[{result.grouping.describe()}]"
                )
            },
        }
    ]
    for proc in range(result.grouping.total_resources):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": proc,
                "args": {"name": f"processor {proc}"},
            }
        )
    for record in result.records:
        label = f"{record.kind}(s{record.scenario},m{record.month})"
        for proc in record.procs:
            events.append(
                {
                    "name": label,
                    "cat": record.kind,
                    "ph": "X",
                    "pid": 1,
                    "tid": proc,
                    "ts": record.start,  # 1 simulated second -> 1 us
                    "dur": record.duration,
                    "args": {
                        "scenario": record.scenario,
                        "month": record.month,
                        "group": record.group,
                    },
                }
            )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def trace_to_csv(result: SimulationResult) -> str:
    """One CSV row per task occurrence (not per processor)."""
    _require_trace(result)
    lines = ["kind,scenario,month,start,end,duration,group,procs_start,procs_stop"]
    for r in sorted(
        result.records, key=lambda rec: (rec.start, rec.procs_start)
    ):
        lines.append(
            f"{r.kind},{r.scenario},{r.month},{r.start!r},{r.end!r},"
            f"{r.duration!r},{r.group},{r.procs_start},{r.procs_stop}"
        )
    return "\n".join(lines)
