"""Online per-task processor allocation — the no-groups baseline.

The paper commits to *static disjoint groups* chosen before execution.
The obvious alternative a practitioner would try first is an online
policy with no groups at all: keep one pool of ``R`` processors; when a
scenario's next month is ready and at least ``min_group`` processors are
free, grab up to ``max_group`` of them for that one task; post tasks
soak up single leftover processors.  Because the main task is moldable
(its width is fixed per task but may differ between tasks), this is a
legal schedule for the application.

This module implements that baseline so the static-grouping design can
be *measured* against it (see the ablation benchmark): the online policy
adapts to stragglers but fragments the machine — after the first
allocation wave, releases arrive staggered and mains start at ragged
widths, wasting efficiency at exactly the tight resource counts where
the knapsack shines.

Two allocation rules are provided:

``"greedy-max"``
    Take ``min(max_group, free)`` processors — grab everything useful.

``"knapsack-aware"``
    Take the width that maximizes ``Σ 1/T`` over the *current* free
    processors assuming the remainder forms further groups — a myopic
    per-event version of Improvement 3.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.exceptions import SimulationError
from repro.knapsack.dp import solve_dp
from repro.knapsack.items import CardinalityKnapsack
from repro.platform.timing import TimingModel
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["OnlineResult", "first_wave_widths", "simulate_online"]

#: The two allocation rules, in documentation order.
POLICIES = ("greedy-max", "knapsack-aware")

#: Event kinds, ordered so simultaneous events process mains first.
_MAIN_DONE = 0
_POST_DONE = 1


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of an online (group-free) simulation."""

    makespan: float
    main_makespan: float
    resources: int
    policy: str
    #: widths actually used by main tasks, ``{width: count}``.
    width_histogram: dict[int, int]

    def mean_width(self) -> float:
        """Average processors per main task."""
        total = sum(w * c for w, c in self.width_histogram.items())
        count = sum(self.width_histogram.values())
        return total / count if count else 0.0


def _pick_width_greedy(free: int, timing: TimingModel) -> int:
    """Greedy-max rule: grab every useful processor."""
    return min(timing.max_group, free)


def _pick_width_knapsack(
    free: int, waiting: int, timing: TimingModel
) -> int:
    """Myopic knapsack rule over the current free pool.

    Solve the paper's knapsack for (free, waiting) and allocate the
    *largest* chosen width first (the chain bound favours giving the
    head of the queue the fastest group).
    """
    values = {g: 1.0 / timing.main_time(g) for g in timing.group_sizes}
    problem = CardinalityKnapsack.from_weights_values(values, free, waiting)
    solution = solve_dp(problem)
    widths = solution.as_multiset()
    if not widths:
        return 0
    return widths[0]


def _choose_width(
    free: int, waiting: int, timing: TimingModel, policy: str
) -> int:
    """Width the policy would start next, or 0 to stop allocating."""
    if policy == "greedy-max":
        return _pick_width_greedy(free, timing)
    return _pick_width_knapsack(free, waiting, timing)


def first_wave_widths(
    resources: int,
    scenarios: int,
    timing: TimingModel,
    *,
    policy: str = "greedy-max",
) -> tuple[int, ...]:
    """Main-task widths the policy starts at time zero on an idle pool.

    This is the online engine's opening move factored out so the
    scheduler arena can race it as a static partition
    (:class:`repro.schedulers.online.OnlineGreedyScheduler`): the first
    allocation wave is exactly the grouping an online policy commits to
    before any release staggers the pool.  Deterministic in its inputs —
    no clock, no RNG, no set iteration.
    """
    if resources < timing.min_group:
        raise SimulationError(
            f"{resources} processors cannot host a single main task "
            f"(min width {timing.min_group})"
        )
    if policy not in POLICIES:
        raise SimulationError(
            f"unknown policy {policy!r}; use 'greedy-max' or 'knapsack-aware'"
        )
    widths: list[int] = []
    free = resources
    waiting = scenarios
    while waiting > 0 and free >= timing.min_group:
        width = _choose_width(free, waiting, timing, policy)
        if width == 0:
            break
        widths.append(width)
        free -= width
        waiting -= 1
    return tuple(widths)


def simulate_online(
    spec: EnsembleSpec,
    timing: TimingModel,
    resources: int,
    *,
    policy: str = "greedy-max",
) -> OnlineResult:
    """Simulate the online no-groups baseline.

    Post tasks are aggregated by count (they are identical and any free
    processor serves them), so no trace is produced — this engine exists
    to produce makespans for comparison, not schedules for inspection.
    """
    if resources < timing.min_group:
        raise SimulationError(
            f"{resources} processors cannot host a single main task "
            f"(min width {timing.min_group})"
        )
    if policy not in POLICIES:
        raise SimulationError(
            f"unknown policy {policy!r}; use 'greedy-max' or 'knapsack-aware'"
        )

    ns, nm = spec.scenarios, spec.months
    months_done = [0] * ns
    # Ready scenarios live in an ordered list, never a set: selection is
    # by explicit total-order key (months done, waiting since, scenario
    # id — unique, so ties cannot exist) and the container contributes
    # no iteration-order freedom.  Identical inputs give bit-for-bit
    # identical schedules.
    waiting: list[int] = list(range(ns))
    wait_since = [0.0] * ns
    free = resources
    post_backlog = 0  # ready posts with no processor yet
    # (time, kind, seq, scenario, width) — seq keeps the heap total-ordered.
    events: list[tuple[float, int, int, int, int]] = []
    seq = 0
    main_makespan = 0.0
    makespan = 0.0
    histogram: dict[int, int] = {}

    def allocate(now: float) -> None:
        """Start mains (priority), then posts, from the free pool."""
        nonlocal free, post_backlog, seq
        while waiting and free >= timing.min_group:
            width = _choose_width(free, len(waiting), timing, policy)
            if width == 0:
                break
            scenario = min(
                waiting, key=lambda s: (months_done[s], wait_since[s], s)
            )
            waiting.remove(scenario)
            free -= width
            histogram[width] = histogram.get(width, 0) + 1
            seq += 1
            heapq.heappush(
                events,
                (
                    now + timing.main_time(width),
                    _MAIN_DONE,
                    seq,
                    scenario,
                    width,
                ),
            )
        while post_backlog > 0 and free > 0:
            post_backlog -= 1
            free -= 1
            seq += 1
            heapq.heappush(
                events, (now + timing.post_time(), _POST_DONE, seq, 0, 1)
            )

    allocate(0.0)
    while events:
        now, kind, _seq, scenario, width = heapq.heappop(events)
        if now > makespan:
            makespan = now
        free += width
        if kind == _MAIN_DONE:
            if now > main_makespan:
                main_makespan = now
            months_done[scenario] += 1
            post_backlog += 1
            if months_done[scenario] < nm:
                waiting.append(scenario)
                wait_since[scenario] = now
        allocate(now)

    if waiting or post_backlog:
        raise SimulationError(
            f"online engine stalled with {len(waiting)} waiting scenarios "
            f"and {post_backlog} unplaced posts"
        )
    if sum(months_done) != ns * nm:
        raise SimulationError(
            f"online engine ran {sum(months_done)} of {ns * nm} months"
        )
    return OnlineResult(
        makespan=makespan,
        main_makespan=main_makespan,
        resources=resources,
        policy=policy,
        width_histogram=histogram,
    )
