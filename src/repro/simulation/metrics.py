"""Schedule quality metrics beyond the makespan.

These are not used by the heuristics themselves (the paper optimizes
makespan only) but quantify the *why* behind the gains: Improvements 1–3
all work by converting idle processor-seconds into useful ones, and
fairness matters because the climatologists want all ensemble members to
progress together (Section 3.1's motivation for round-robin ordering).
"""

from __future__ import annotations

from repro.exceptions import SimulationError
from repro.simulation.events import SimulationResult

__all__ = [
    "busy_seconds_by_kind",
    "utilization",
    "idle_seconds",
    "scenario_finish_times",
    "fairness_spread",
]


def _require_trace(result: SimulationResult) -> None:
    if not result.has_trace:
        raise SimulationError(
            "this metric needs per-task records; re-run the simulation "
            "with record_trace=True"
        )


def busy_seconds_by_kind(result: SimulationResult) -> dict[str, float]:
    """Processor-seconds consumed by main and post tasks."""
    _require_trace(result)
    busy = {"main": 0.0, "post": 0.0}
    for record in result.records:
        busy[record.kind] += record.duration * record.n_procs
    return busy


def utilization(result: SimulationResult) -> float:
    """Fraction of the cluster's processor-time doing useful work.

    ``Σ busy processor-seconds / (R × makespan)``, in ``[0, 1]``.
    """
    _require_trace(result)
    if result.makespan == 0.0:
        return 0.0
    capacity = result.grouping.total_resources * result.makespan
    return sum(busy_seconds_by_kind(result).values()) / capacity


def idle_seconds(result: SimulationResult) -> float:
    """Total idle processor-seconds over the schedule horizon."""
    _require_trace(result)
    capacity = result.grouping.total_resources * result.makespan
    return capacity - sum(busy_seconds_by_kind(result).values())


def scenario_finish_times(result: SimulationResult) -> dict[int, float]:
    """Completion time of each scenario's *last main task*.

    Post tasks are deliberately excluded: the scientific result of a
    scenario is complete when its final month has been integrated.
    """
    _require_trace(result)
    finish: dict[int, float] = {}
    for record in result.records:
        if record.kind != "main":
            continue
        if record.end > finish.get(record.scenario, -1.0):
            finish[record.scenario] = record.end
    return finish


def fairness_spread(result: SimulationResult) -> float:
    """Spread of scenario completion: ``(max - min) / max`` finish time.

    0 means perfectly synchronized ensemble members; values near 1 mean
    one scenario finished long before another started mattering.
    """
    finishes = list(scenario_finish_times(result).values())
    if not finishes:
        return 0.0
    top = max(finishes)
    if top == 0.0:
        return 0.0
    return (top - min(finishes)) / top
