"""Trace inspection: ASCII Gantt charts and textual summaries.

The Gantt renderer reproduces the *shape* diagrams of the paper
(Figures 3–6): hatched main-task waves, post tasks filling the dedicated
pool and the resources left by the last incomplete wave, and the
"overpassing" tail where late posts outlive the mains.
"""

from __future__ import annotations

from repro.exceptions import SimulationError
from repro.simulation.events import SimulationResult

__all__ = ["render_gantt", "trace_summary"]

#: Glyph for a processor busy with a main task (the paper's hatching).
MAIN_GLYPH = "#"

#: Glyph for a processor busy with a post task (the paper's light boxes).
POST_GLYPH = "o"

#: Glyph for an idle processor.
IDLE_GLYPH = "."


def render_gantt(
    result: SimulationResult,
    *,
    width: int = 100,
    max_rows: int = 60,
) -> str:
    """Render a processor×time occupancy chart as ASCII art.

    Each row is one processor (down-sampled evenly when the cluster has
    more than ``max_rows``); each column is a time bucket of
    ``makespan / width`` seconds.  A bucket shows a main glyph if any
    main task overlaps it, else a post glyph, else idle.
    """
    if not result.has_trace:
        raise SimulationError("Gantt rendering needs record_trace=True")
    if width < 10:
        raise SimulationError(f"width must be >= 10, got {width!r}")
    total = result.grouping.total_resources
    horizon = result.makespan
    if horizon <= 0:
        return "(empty schedule)"

    rows = min(total, max_rows)
    step = total / rows
    rendered = {int(row * step) for row in range(rows)}

    # occupancy[proc] = list of (start, end, kind) — only for processors
    # that will actually appear as rows, so down-sampled renders of large
    # clusters do not pay for intervals nobody looks at.
    occupancy: dict[int, list[tuple[float, float, str]]] = {
        p: [] for p in rendered
    }
    for record in result.records:
        for proc in record.procs:
            if proc in rendered:
                occupancy[proc].append(
                    (record.start, record.end, record.kind)
                )
    dt = horizon / width
    lines: list[str] = []
    header = (
        f"cluster={result.cluster_name} R={total} "
        f"grouping=[{result.grouping.describe()}] "
        f"makespan={horizon:.0f}s (mains end {result.main_makespan:.0f}s)"
    )
    lines.append(header)
    lines.append(f"time: 0 {'-' * (width - 12)} {horizon:.0f}s")
    for row in range(rows):
        proc = int(row * step)
        cells: list[str] = []
        intervals = sorted(occupancy[proc])
        for col in range(width):
            t0, t1 = col * dt, (col + 1) * dt
            glyph = IDLE_GLYPH
            for start, end, kind in intervals:
                if start < t1 and end > t0:
                    glyph = MAIN_GLYPH if kind == "main" else POST_GLYPH
                    if glyph == MAIN_GLYPH:
                        break
            cells.append(glyph)
        lines.append(f"p{proc:>4} |{''.join(cells)}|")
    lines.append(
        f"legend: '{MAIN_GLYPH}' main task, '{POST_GLYPH}' post task, "
        f"'{IDLE_GLYPH}' idle"
    )
    return "\n".join(lines)


def trace_summary(result: SimulationResult) -> str:
    """A short textual digest of a traced schedule."""
    if not result.has_trace:
        raise SimulationError("trace summary needs record_trace=True")
    mains = result.records_of_kind("main")
    posts = result.records_of_kind("post")
    lines = [
        f"cluster {result.cluster_name}: "
        f"{result.spec.scenarios} scenarios x {result.spec.months} months "
        f"on R={result.grouping.total_resources}",
        f"grouping: {result.grouping.describe()}",
        f"main tasks: {len(mains)}, post tasks: {len(posts)}",
        f"main makespan: {result.main_makespan:.1f}s",
        f"total makespan: {result.makespan:.1f}s "
        f"(post tail: {result.makespan - result.main_makespan:.1f}s)",
    ]
    if posts:
        delays = [0.0] * 0
        # Post waiting time: gap between readiness (its main's end) and start.
        by_key = {(r.scenario, r.month): r for r in mains}
        delays = [
            p.start - by_key[(p.scenario, p.month)].end
            for p in posts
            if (p.scenario, p.month) in by_key
        ]
        if delays:
            lines.append(
                f"post wait: mean {sum(delays) / len(delays):.1f}s, "
                f"max {max(delays):.1f}s"
            )
    return "\n".join(lines)
