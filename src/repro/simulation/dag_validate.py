"""Independent correctness checks for DAG-level schedules.

The counterpart of :mod:`repro.simulation.validate` for
:class:`~repro.simulation.dag_engine.DagSimulationResult`: replays a
traced result against the workflow definition and raises
:class:`~repro.exceptions.ValidationError` on any violation.

Checked invariants
------------------
1. every DAG task is scheduled exactly once;
2. every dependency edge is respected (consumer starts no earlier than
   producer ends);
3. MAIN tasks occupy exactly their group's processor range and last
   exactly ``T[group size]``;
4. sequential tasks occupy one in-range processor and last exactly
   ``nominal_seconds × seq_scale``;
5. no processor is double-booked;
6. the reported makespans equal the trace extents.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.platform.timing import TimingModel
from repro.simulation.dag_engine import DagSimulationResult
from repro.simulation.groups import proc_ranges
from repro.workflow.dag import DAG
from repro.workflow.task import TaskKind

__all__ = ["validate_dag_schedule"]

_EPS = 1e-6


def validate_dag_schedule(
    result: DagSimulationResult,
    dag: DAG,
    timing: TimingModel,
    *,
    seq_scale: float = 1.0,
) -> None:
    """Raise :class:`ValidationError` unless the DAG schedule is correct."""
    if not result.has_trace:
        raise ValidationError(
            "cannot validate without records; re-simulate with "
            "record_trace=True"
        )
    ranges = proc_ranges(result.grouping)
    seen: dict[str, tuple[float, float]] = {}

    for record in result.records:
        if record.task_id not in dag:
            raise ValidationError(f"record for unknown task {record.task_id!r}")
        if record.task_id in seen:
            raise ValidationError(f"task {record.task_id!r} scheduled twice")
        seen[record.task_id] = (record.start, record.end)
        task = dag.task(record.task_id)
        if task.kind is TaskKind.MAIN:
            if record.kind != "main":
                raise ValidationError(
                    f"MAIN task {record.task_id!r} recorded as {record.kind!r}"
                )
            if not 0 <= record.group < len(ranges):
                raise ValidationError(
                    f"main task {record.task_id!r} on unknown group "
                    f"{record.group}"
                )
            rng = ranges[record.group]
            if (record.procs_start, record.procs_stop) != (rng.start, rng.stop):
                raise ValidationError(
                    f"main task {record.task_id!r} procs "
                    f"{record.procs_start}:{record.procs_stop} != group "
                    f"range {rng.start}:{rng.stop}"
                )
            expected = timing.main_time(len(rng))
            if abs(record.duration - expected) > _EPS:
                raise ValidationError(
                    f"main task {record.task_id!r} duration "
                    f"{record.duration} != T[{len(rng)}] = {expected}"
                )
        else:
            if record.kind != "seq":
                raise ValidationError(
                    f"sequential task {record.task_id!r} recorded as "
                    f"{record.kind!r}"
                )
            if record.procs_stop - record.procs_start != 1:
                raise ValidationError(
                    f"sequential task {record.task_id!r} on more than one "
                    f"processor"
                )
            if not 0 <= record.procs_start < result.grouping.total_resources:
                raise ValidationError(
                    f"sequential task {record.task_id!r} on nonexistent "
                    f"processor {record.procs_start}"
                )
            expected = task.nominal_seconds * seq_scale
            if abs(record.duration - expected) > _EPS:
                raise ValidationError(
                    f"sequential task {record.task_id!r} duration "
                    f"{record.duration} != {expected}"
                )

    missing = [tid for tid in dag.task_ids() if tid not in seen]
    if missing:
        raise ValidationError(
            f"{len(missing)} task(s) never scheduled, e.g. {missing[:5]}"
        )

    for producer in dag.task_ids():
        for consumer in dag.successors(producer):
            if seen[consumer][0] < seen[producer][1] - _EPS:
                raise ValidationError(
                    f"dependency violated: {consumer!r} starts at "
                    f"{seen[consumer][0]} before {producer!r} ends at "
                    f"{seen[producer][1]}"
                )

    per_proc: dict[int, list[tuple[float, float]]] = {}
    for record in result.records:
        for proc in range(record.procs_start, record.procs_stop):
            per_proc.setdefault(proc, []).append((record.start, record.end))
    for proc, intervals in per_proc.items():
        intervals.sort()
        for (_s1, e1), (s2, _e2) in zip(intervals, intervals[1:], strict=False):
            if s2 < e1 - _EPS:
                raise ValidationError(f"processor {proc} double-booked")

    mains = [r for r in result.records if r.kind == "main"]
    actual_main = max((r.end for r in mains), default=0.0)
    actual_total = max((r.end for r in result.records), default=0.0)
    if abs(actual_main - result.main_makespan) > _EPS:
        raise ValidationError(
            f"reported main makespan {result.main_makespan} != trace "
            f"extent {actual_main}"
        )
    if abs(actual_total - result.makespan) > _EPS:
        raise ValidationError(
            f"reported makespan {result.makespan} != trace extent "
            f"{actual_total}"
        )
