"""DAG-level makespan simulation — the engine generalized to workflows.

:func:`simulate_dag` schedules *any* fused-style Ocean-Atmosphere
workflow — a :class:`~repro.workflow.dag.DAG` whose MAIN tasks form
disjoint per-scenario chains and whose sequential tasks are pure
consumers (analysis/compression: nothing moldable depends on them) —
under a :class:`~repro.core.grouping.Grouping`, with the same policy as
the rectangular engine of :mod:`repro.simulation.engine`:

* a ready MAIN task's priority is its chain progress (fewest MAIN
  ancestors first — "the month of the less advanced simulation"), ties
  broken by readiness time then scenario id;
* the least-advanced ready main goes to the fastest free group;
* sequential tasks run on single processors: the dedicated post pool
  from time 0, plus each group's processors once the group has started
  its last main task (permanent retirement).

What this buys over the rectangular engine: **unequal chain lengths**
(scenarios with different month counts), **any number of sequential
satellite tasks per month** (with dependencies among them), and
per-task sequential durations taken from the DAG rather than a single
``TP``.  On a rectangular fused ensemble it reproduces the rectangular
engine's makespan exactly — a cross-validation the test suite enforces.

Input contract (checked eagerly, violations raise
:class:`~repro.exceptions.SimulationError`):

* every MAIN task has at most one MAIN predecessor and at most one MAIN
  successor, and chains never cross scenarios;
* no sequential task has a MAIN descendant (pre-processing tasks gate
  the coupled run — fuse them first, exactly as the paper does; see
  :func:`repro.workflow.fusion.fuse_ocean_atmosphere`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.core.grouping import Grouping
from repro.exceptions import SimulationError
from repro.platform.timing import TimingModel
from repro.simulation.groups import post_pool_range, proc_ranges
from repro.workflow.dag import DAG
from repro.workflow.task import Task, TaskKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.hooks import FaultHook

__all__ = ["DagTaskRecord", "DagSimulationResult", "simulate_dag"]


@dataclass(frozen=True)
class DagTaskRecord:
    """One executed DAG task occurrence."""

    task_id: str
    kind: str  # "main" | "seq"
    start: float
    end: float
    group: int  # group index for mains, -1 for sequential tasks
    procs_start: int
    procs_stop: int

    @property
    def duration(self) -> float:
        """Wall-clock seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class DagSimulationResult:
    """Outcome of one DAG-level simulation."""

    makespan: float
    main_makespan: float
    grouping: Grouping
    records: tuple[DagTaskRecord, ...] = field(default=(), repr=False)

    @property
    def has_trace(self) -> bool:
        """Whether per-task records were collected."""
        return bool(self.records)

    def record_for(self, task_id: str) -> DagTaskRecord:
        """The record of one task; raises if absent or untraced."""
        for record in self.records:
            if record.task_id == task_id:
                return record
        raise SimulationError(f"no record for task {task_id!r}")


def _analyze(dag: DAG) -> tuple[dict[str, int], list[str]]:
    """Validate the chain structure; return (main depth map, topo order).

    ``depth[tid]`` counts MAIN ancestors of a MAIN task — its chain
    progress index, the scheduling priority.
    """
    order = dag.topological_order()
    depth: dict[str, int] = {}
    main_preds: dict[str, int] = {}
    main_succs: dict[str, int] = {}
    gates_main: dict[str, bool] = {}

    for tid in reversed(order):
        task = dag.task(tid)
        gated = task.kind is TaskKind.MAIN
        for succ in dag.successors(tid):
            if gates_main.get(succ, False):
                gated = True
        gates_main[tid] = gated

    for tid in order:
        task = dag.task(tid)
        if task.kind is TaskKind.MAIN:
            mains_before = [
                p for p in dag.predecessors(tid)
                if dag.task(p).kind is TaskKind.MAIN
            ]
            if len(mains_before) > 1:
                raise SimulationError(
                    f"MAIN task {tid!r} has {len(mains_before)} MAIN "
                    f"predecessors; chains must be linear"
                )
            for p in mains_before:
                if dag.task(p).scenario != task.scenario:
                    raise SimulationError(
                        f"MAIN chain crosses scenarios on edge "
                        f"{p!r} -> {tid!r}"
                    )
            main_preds[tid] = len(mains_before)
            depth[tid] = depth[mains_before[0]] + 1 if mains_before else 0
            seq_gating = [
                p for p in dag.predecessors(tid)
                if dag.task(p).kind is not TaskKind.MAIN
            ]
            if seq_gating:
                raise SimulationError(
                    f"MAIN task {tid!r} is gated by sequential task(s) "
                    f"{seq_gating[:3]}; fuse pre-processing into the main "
                    f"task first (repro.workflow.fusion)"
                )
        else:
            # For a sequential task, gates_main means some descendant is
            # MAIN — i.e. it is pre-processing that would deadlock on an
            # empty pool.  The paper's answer is fusion; so is ours.
            if gates_main[tid]:
                raise SimulationError(
                    f"sequential task {tid!r} has a MAIN descendant; "
                    f"fuse pre-processing into the main task first"
                )

    for tid in order:
        task = dag.task(tid)
        if task.kind is not TaskKind.MAIN:
            continue
        succs = [
            s for s in dag.successors(tid)
            if dag.task(s).kind is TaskKind.MAIN
        ]
        if len(succs) > 1:
            raise SimulationError(
                f"MAIN task {tid!r} has {len(succs)} MAIN successors; "
                f"chains must be linear"
            )
        main_succs[tid] = len(succs)
    return depth, order


def simulate_dag(
    dag: DAG,
    grouping: Grouping,
    timing: TimingModel,
    *,
    seq_scale: float = 1.0,
    record_trace: bool = False,
    faults: "FaultHook | None" = None,
) -> DagSimulationResult:
    """Simulate a fused-style workflow DAG under a processor grouping.

    ``seq_scale`` multiplies every sequential task's ``nominal_seconds``
    (use ``timing.post_time() / constants.POST_SECONDS`` to put the
    satellites on the same machine-speed scale as the mains).

    ``faults`` injects a compiled
    :class:`~repro.faults.hooks.FaultHook`: a no-op hook (or ``None``)
    changes nothing, a live one forces a traced run internally and
    returns the warped, crash-truncated schedule (see
    :meth:`~repro.faults.hooks.FaultHook.apply_dag`).
    """
    if faults is not None and faults.is_noop:
        faults = None
    if faults is not None:
        base = simulate_dag(
            dag, grouping, timing, seq_scale=seq_scale, record_trace=True
        )
        warped, _outcome = faults.apply_dag(
            base, dag, keep_records=record_trace
        )
        return warped
    if seq_scale < 0:
        raise SimulationError(f"seq_scale must be >= 0, got {seq_scale!r}")
    if len(dag) == 0:
        return DagSimulationResult(0.0, 0.0, grouping)
    for g in grouping.group_sizes:
        timing.validate_group(g)

    depth, order = _analyze(dag)
    scenarios = {t.scenario for t in dag.tasks()}
    if grouping.n_groups > len(scenarios):
        raise SimulationError(
            f"{grouping.n_groups} groups for {len(scenarios)} scenario "
            f"chain(s) — at most one group per chain can be busy"
        )

    group_times = [timing.main_time(g) for g in grouping.group_sizes]
    ranges = proc_ranges(grouping)

    # --- main phase: schedule MAIN chains on groups -----------------------
    mains = [tid for tid in order if dag.task(tid).kind is TaskKind.MAIN]
    unstarted = len(mains)
    pending_main_pred: dict[str, int] = {}
    for tid in mains:
        pending_main_pred[tid] = sum(
            1 for p in dag.predecessors(tid)
            if dag.task(p).kind is TaskKind.MAIN
        )
    # ready mains per scenario (at most one at a time since chains are linear)
    ready: dict[str, float] = {
        tid: 0.0 for tid in mains if pending_main_pred[tid] == 0
    }
    finish_times: dict[str, float] = {}
    running: list[tuple[float, int, str]] = []  # (end, group, task)
    idle_groups = list(range(len(group_times)))
    group_last_end = [0.0] * len(group_times)
    records: list[DagTaskRecord] = []
    main_makespan = 0.0

    def match(now: float, free: list[int]) -> None:
        nonlocal unstarted
        free = sorted(free, key=lambda g: (group_times[g], g))
        while free and ready and unstarted > 0:
            tid = min(
                ready,
                key=lambda t: (depth[t], ready[t], dag.task(t).scenario, t),
            )
            group = free.pop(0)
            end = now + group_times[group]
            heapq.heappush(running, (end, group, tid))
            del ready[tid]
            unstarted -= 1
            if record_trace:
                records.append(
                    DagTaskRecord(
                        tid, "main", now, end, group,
                        ranges[group].start, ranges[group].stop,
                    )
                )
        idle_groups.extend(free)

    initial, idle_groups[:] = idle_groups[:], []
    match(0.0, initial)

    while running:
        now, group, tid = heapq.heappop(running)
        finish_times[tid] = now
        group_last_end[group] = now
        if now > main_makespan:
            main_makespan = now
        for succ in dag.successors(tid):
            if dag.task(succ).kind is TaskKind.MAIN:
                pending_main_pred[succ] -= 1
                if pending_main_pred[succ] == 0:
                    ready[succ] = now
        free, idle_groups[:] = [*idle_groups, group], []
        match(now, free)

    if unstarted:
        raise SimulationError(
            f"{unstarted} MAIN task(s) never became ready — broken chain "
            f"structure slipped past validation"
        )

    # --- sequential phase: satellites on the pool --------------------------
    seq_tasks = [tid for tid in order if dag.task(tid).kind is not TaskKind.MAIN]
    makespan = main_makespan
    if seq_tasks:
        pool: list[tuple[float, int]] = [
            (0.0, proc) for proc in post_pool_range(grouping)
        ]
        for group, rng in enumerate(ranges):
            for proc in rng:
                pool.append((group_last_end[group], proc))
        heapq.heapify(pool)
        if not pool:
            raise SimulationError(
                "no processor ever becomes available for sequential tasks"
            )
        # Process in dependency-ready order: repeatedly take the ready
        # sequential task with the earliest readiness.
        pending: dict[str, int] = {}
        ready_seq: list[tuple[float, str]] = []
        for tid in seq_tasks:
            preds = dag.predecessors(tid)
            unmet = sum(1 for p in preds if p not in finish_times)
            pending[tid] = unmet
            if unmet == 0:
                release = max(
                    (finish_times[p] for p in preds), default=0.0
                )
                heapq.heappush(ready_seq, (release, tid))
        done = 0
        while ready_seq:
            release, tid = heapq.heappop(ready_seq)
            task: Task = dag.task(tid)
            free_at, proc = heapq.heappop(pool)
            start = max(free_at, release)
            end = start + task.nominal_seconds * seq_scale
            heapq.heappush(pool, (end, proc))
            finish_times[tid] = end
            done += 1
            if end > makespan:
                makespan = end
            if record_trace:
                records.append(
                    DagTaskRecord(tid, "seq", start, end, -1, proc, proc + 1)
                )
            for succ in dag.successors(tid):
                pending[succ] -= 1
                if pending[succ] == 0:
                    preds = dag.predecessors(succ)
                    heapq.heappush(
                        ready_seq,
                        (max(finish_times[p] for p in preds), succ),
                    )
        if done != len(seq_tasks):
            raise SimulationError(
                f"{len(seq_tasks) - done} sequential task(s) never became "
                f"ready — cyclic or dangling dependencies"
            )

    if obs.enabled():
        obs.inc("simulation.dag_runs")
        obs.inc("simulation.dag_tasks", len(mains), kind="main")
        obs.inc("simulation.dag_tasks", len(seq_tasks), kind="seq")
        obs.inc(
            "engine.events_dispatched",
            len(mains) + len(seq_tasks),
            cluster="dag",
        )
        obs.set_gauge("simulation.dag_makespan_seconds", makespan)
        obs.set_gauge("simulation.dag_main_makespan_seconds", main_makespan)
    return DagSimulationResult(
        makespan=makespan,
        main_makespan=main_makespan,
        grouping=grouping,
        records=tuple(records),
    )
