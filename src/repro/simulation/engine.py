"""The discrete-event makespan simulator (Section 4.3).

Main-task phase
    Groups are matched to scenarios greedily at every completion event:
    the *least advanced* waiting scenario (fewest finished months; ties
    broken by longest wait, then scenario id) is placed on the *fastest*
    free group (smallest ``T[g]``; ties broken by group index).  This is
    the paper's policy — "when a group becomes ready, the month of the
    less advanced simulation waiting is scheduled on this group" —
    extended deterministically to the heterogeneous group sizes produced
    by Improvements 1 and 3.

Post-task phase
    Every finished main task releases one post task.  Post tasks run on
    single processors: the dedicated post pool is available from time 0,
    and each main group's processors join the pool once the group has run
    its last main task (this realizes both the ``Rleft`` reuse of
    Equations 3/5 and Improvement 2's posts-at-the-end).  Posts are
    placed in ready order on the processor giving the earliest start —
    optimal for equal-length tasks with release dates on identical
    machines, so the simulator never under-reports a heuristic.

Complexity: ``O(NS·NM · (NS + log NS))`` for the main phase and
``O(NS·NM · log R)`` for the post phase; a full paper-scale experiment
(10 × 1800 months) simulates in well under a second.

Two implementations
    The *reference* path carries per-task records and per-event metrics
    hooks and scans the waiting set linearly — readable, instrumented,
    and the arbiter of correctness.  The *fast* path replays the exact
    same policy with heaps and no bookkeeping; it runs whenever neither
    traces nor metrics are requested.  Both produce bit-identical
    makespans (the scheduling decisions, and therefore every float
    operation on event times, are the same) — the differential-oracle
    tests pin this, and the ``fast`` argument of :func:`simulate` exists
    so they can force either path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.core.grouping import Grouping
from repro.exceptions import SimulationError
from repro.platform.cluster import ClusterSpec
from repro.platform.timing import TimingModel
from repro.simulation.events import SimulationResult, TaskRecord
from repro.simulation.groups import post_pool_range, proc_ranges
from repro.workflow.ocean_atmosphere import EnsembleSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.hooks import FaultHook

__all__ = ["simulate", "simulate_on_cluster"]


@dataclass
class _EngineStats:
    """Per-run accounting collected only while observability is enabled."""

    events: int = 0
    tasks_per_group: list[int] = field(default_factory=list)


def simulate(
    grouping: Grouping,
    spec: EnsembleSpec,
    timing: TimingModel,
    *,
    cluster_name: str = "cluster",
    record_trace: bool = False,
    enforce_cardinality: bool = True,
    fast: bool | None = None,
    faults: "FaultHook | None" = None,
) -> SimulationResult:
    """Simulate one ensemble on one cluster under a fixed grouping.

    Parameters
    ----------
    grouping:
        The processor partition to evaluate.
    spec:
        Ensemble dimensions (``NS`` scenarios × ``NM`` months).
    timing:
        The cluster's timing model; every group size must be admissible.
    record_trace:
        Collect per-task :class:`~repro.simulation.events.TaskRecord`
        entries (needed for Gantt charts and schedule validation).
    enforce_cardinality:
        Reject groupings with more groups than scenarios (the paper's
        rule).  Disable only for deliberately degenerate test inputs.
    fast:
        ``None`` (default) picks automatically: the bookkeeping-free
        fast path when neither traces nor metrics are requested, the
        instrumented reference path otherwise.  ``True``/``False``
        force one implementation — forcing ``True`` is incompatible
        with ``record_trace`` and skips metrics; forcing ``False``
        exists for differential testing and baseline benchmarks.
    faults:
        A compiled :class:`~repro.faults.hooks.FaultHook` for this
        cluster.  A no-op hook (or ``None``) leaves every path —
        including fast-path auto-selection — untouched, so fault-free
        results stay bit-for-bit identical.  A live hook forces the
        traced reference path internally and returns the warped,
        crash-truncated schedule; use
        :func:`repro.faults.hooks.simulate_with_faults` when the
        checkpoint-level :class:`~repro.faults.hooks.FaultOutcome` is
        needed too.
    """
    if faults is not None and faults.is_noop:
        faults = None
    if faults is not None:
        if fast:
            raise SimulationError(
                "fast=True cannot inject faults; use fast=False or fast=None"
            )
        base = simulate(
            grouping,
            spec,
            timing,
            cluster_name=cluster_name,
            record_trace=True,
            enforce_cardinality=enforce_cardinality,
            fast=False,
        )
        warped, _outcome = faults.apply(base, keep_records=record_trace)
        return warped
    if enforce_cardinality:
        grouping.validate_against(timing, spec.scenarios)
    else:
        for g in grouping.group_sizes:
            timing.validate_group(g)

    group_times = [timing.main_time(g) for g in grouping.group_sizes]
    tp = timing.post_time()

    stats = _EngineStats() if obs.enabled() else None
    use_fast = (not record_trace and stats is None) if fast is None else fast
    if use_fast:
        if record_trace:
            raise SimulationError(
                "fast=True cannot record traces; use fast=False or fast=None"
            )
        ready_times, group_last_end = _run_main_phase_fast(spec, group_times)
        main_makespan = ready_times[-1] if ready_times else 0.0
        post_makespan = _run_post_phase_fast(
            grouping, ready_times, group_last_end, tp
        )
        return SimulationResult(
            makespan=max(main_makespan, post_makespan),
            main_makespan=main_makespan,
            grouping=grouping,
            spec=spec,
            cluster_name=cluster_name,
            records=(),
        )

    ranges = proc_ranges(grouping)
    if stats is not None:
        stats.tasks_per_group = [0] * len(group_times)

    main_records, post_ready, group_last_end = _run_main_phase(
        spec, group_times, ranges, record_trace, stats
    )
    main_makespan = max((end for _, _, _, end in post_ready), default=0.0)

    post_records, post_makespan = _run_post_phase(
        grouping, post_ready, group_last_end, ranges, tp, record_trace
    )

    makespan = max(main_makespan, post_makespan)
    records: tuple[TaskRecord, ...] = ()
    if record_trace:
        records = tuple(main_records + post_records)
    if stats is not None:
        _publish_stats(
            stats, cluster_name, spec, group_times, group_last_end,
            makespan, main_makespan, len(post_ready),
        )
    return SimulationResult(
        makespan=makespan,
        main_makespan=main_makespan,
        grouping=grouping,
        spec=spec,
        cluster_name=cluster_name,
        records=records,
    )


def simulate_on_cluster(
    cluster: ClusterSpec,
    grouping: Grouping,
    spec: EnsembleSpec,
    *,
    record_trace: bool = False,
) -> SimulationResult:
    """Convenience wrapper binding a grouping to a named cluster."""
    if grouping.total_resources != cluster.resources:
        raise SimulationError(
            f"grouping sized for {grouping.total_resources} processors but "
            f"cluster {cluster.name!r} has {cluster.resources}"
        )
    return simulate(
        grouping,
        spec,
        cluster.timing,
        cluster_name=cluster.name,
        record_trace=record_trace,
    )


def _publish_stats(
    stats: _EngineStats,
    cluster_name: str,
    spec: EnsembleSpec,
    group_times: list[float],
    group_last_end: list[float],
    makespan: float,
    main_makespan: float,
    n_posts: int,
) -> None:
    """Flush one run's accounting to the global metrics registry.

    *Waves* is the deepest group's task count — how many times the
    busiest group turned around; *idle seconds* is the main phase's
    processor-level slack: for each group, the gap between its last
    task's end and the time it spent computing, weighted by nothing
    (group-level, matching the paper's per-group reasoning).
    """
    obs.inc("simulation.runs", cluster=cluster_name)
    obs.inc(
        "simulation.tasks",
        spec.scenarios * spec.months,
        cluster=cluster_name,
        kind="main",
    )
    obs.inc("simulation.tasks", n_posts, cluster=cluster_name, kind="post")
    obs.inc("engine.events_dispatched", stats.events, cluster=cluster_name)
    obs.set_gauge(
        "simulation.makespan_seconds", makespan, cluster=cluster_name
    )
    obs.set_gauge(
        "simulation.main_makespan_seconds", main_makespan, cluster=cluster_name
    )
    if stats.tasks_per_group:
        obs.set_gauge(
            "engine.waves", max(stats.tasks_per_group), cluster=cluster_name
        )
        idle = sum(
            last_end - tasks * gt
            for last_end, tasks, gt in zip(
                group_last_end, stats.tasks_per_group, group_times,
                strict=True,
            )
        )
        obs.set_gauge(
            "engine.idle_seconds", idle, cluster=cluster_name, phase="main"
        )


def _run_main_phase(
    spec: EnsembleSpec,
    group_times: list[float],
    ranges: list[range],
    record_trace: bool,
    stats: _EngineStats | None = None,
) -> tuple[list[TaskRecord], list[tuple[float, int, int, float]], list[float]]:
    """Schedule every main task; return (records, post-ready list, last ends).

    ``post_ready`` entries are ``(ready_time, scenario, month, main_end)``
    tuples emitted in completion order (``ready_time == main_end``; the
    duplication keeps the post phase free of record lookups).
    """
    ns, nm = spec.scenarios, spec.months
    n_groups = len(group_times)

    months_done = [0] * ns
    wait_since = [0.0] * ns
    waiting: set[int] = set(range(ns))
    unstarted = ns * nm

    # (finish_time, group_index, scenario)
    running: list[tuple[float, int, int]] = []
    idle_groups: list[int] = list(range(n_groups))
    group_last_end = [0.0] * n_groups

    records: list[TaskRecord] = []
    post_ready: list[tuple[float, int, int, float]] = []

    def match(now: float, free: list[int]) -> None:
        """Assign waiting scenarios to free groups; leftovers go idle."""
        nonlocal unstarted
        free = sorted(free, key=lambda g: (group_times[g], g))
        while free and waiting and unstarted > 0:
            scenario = min(
                waiting, key=lambda s: (months_done[s], wait_since[s], s)
            )
            group = free.pop(0)
            month = months_done[scenario]
            end = now + group_times[group]
            heapq.heappush(running, (end, group, scenario))
            waiting.remove(scenario)
            unstarted -= 1
            if stats is not None:
                stats.tasks_per_group[group] += 1
            if record_trace:
                records.append(
                    TaskRecord(
                        "main",
                        scenario,
                        month,
                        now,
                        end,
                        group,
                        ranges[group].start,
                        ranges[group].stop,
                    )
                )
        idle_groups.extend(free)

    # Kick-off: all groups free, all scenarios waiting, time 0.
    initial, idle_groups = idle_groups, []
    match(0.0, initial)

    while running:
        now, group, scenario = heapq.heappop(running)
        if stats is not None:
            stats.events += 1
        month = months_done[scenario]
        months_done[scenario] += 1
        group_last_end[group] = now
        post_ready.append((now, scenario, month, now))
        if months_done[scenario] < nm:
            waiting.add(scenario)
            wait_since[scenario] = now
        free, idle_groups[:] = [*idle_groups, group], []
        match(now, free)

    if unstarted != 0 or waiting:
        raise SimulationError(
            f"main phase ended with {unstarted} unstarted tasks and "
            f"{len(waiting)} waiting scenarios — engine invariant broken"
        )
    return records, post_ready, group_last_end


def _run_post_phase(
    grouping: Grouping,
    post_ready: list[tuple[float, int, int, float]],
    group_last_end: list[float],
    ranges: list[range],
    tp: float,
    record_trace: bool,
) -> tuple[list[TaskRecord], float]:
    """Schedule every post task; return (records, post-phase makespan)."""
    # Processor pool: (available_from, proc_id).
    pool: list[tuple[float, int]] = []
    for proc in post_pool_range(grouping):
        pool.append((0.0, proc))
    for group, rng in enumerate(ranges):
        for proc in rng:
            pool.append((group_last_end[group], proc))
    heapq.heapify(pool)

    if not pool:
        if post_ready:
            raise SimulationError(
                "no processor ever becomes available for post-processing "
                "tasks — grouping has no post pool and no groups?"
            )
        return [], 0.0

    records: list[TaskRecord] = []
    makespan = 0.0
    # Ready order with deterministic tie-breaks (time, scenario, month).
    for ready, scenario, month, _main_end in sorted(
        post_ready, key=lambda e: (e[0], e[1], e[2])
    ):
        free_at, proc = heapq.heappop(pool)
        start = max(free_at, ready)
        end = start + tp
        heapq.heappush(pool, (end, proc))
        if end > makespan:
            makespan = end
        if record_trace:
            records.append(
                TaskRecord("post", scenario, month, start, end, -1, proc, proc + 1)
            )
    return records, makespan


def _run_main_phase_fast(
    spec: EnsembleSpec, group_times: list[float]
) -> tuple[list[float], list[float]]:
    """The main phase without records or metrics; heaps replace scans.

    Replays :func:`_run_main_phase` decision-for-decision: the waiting
    set becomes a heap of ``(months_done, wait_since, scenario)`` (keys
    are frozen while a scenario waits, so entries never go stale) and
    the free-group sort becomes a heap of ``(T[g], g)``.  Identical
    choices mean identical float arithmetic on event times, so the
    returned ready times and group last-ends are bit-for-bit those of
    the reference path.  Returns ``(ready_times, group_last_end)`` with
    ready times in completion order — nondecreasing, so the last entry
    is the main-phase makespan and the post phase needs no sort.
    """
    ns, nm = spec.scenarios, spec.months
    months_done = [0] * ns
    unstarted = ns * nm

    # Both comprehensions produce ascending sequences — already valid heaps.
    waiting: list[tuple[int, float, int]] = [(0, 0.0, s) for s in range(ns)]
    idle: list[tuple[float, int]] = sorted(
        (gt, g) for g, gt in enumerate(group_times)
    )
    running: list[tuple[float, int, int]] = []
    group_last_end = [0.0] * len(group_times)
    ready_times: list[float] = []

    push, pop = heapq.heappush, heapq.heappop
    now = 0.0
    while True:
        while idle and waiting and unstarted > 0:
            gt, group = pop(idle)
            _, _, scenario = pop(waiting)
            push(running, (now + gt, group, scenario))
            unstarted -= 1
        if not running:
            break
        now, group, scenario = pop(running)
        done = months_done[scenario] + 1
        months_done[scenario] = done
        group_last_end[group] = now
        ready_times.append(now)
        if done < nm:
            push(waiting, (done, now, scenario))
        push(idle, (group_times[group], group))

    if unstarted != 0 or waiting:
        raise SimulationError(
            f"main phase ended with {unstarted} unstarted tasks and "
            f"{len(waiting)} waiting scenarios — engine invariant broken"
        )
    return ready_times, group_last_end


def _run_post_phase_fast(
    grouping: Grouping,
    ready_times: list[float],
    group_last_end: list[float],
    tp: float,
) -> float:
    """The post phase on a float-only processor heap; returns its makespan.

    Processor identity never affects timing — the pool pops the earliest
    ``available_from`` either way — so the heap holds bare floats.  The
    ready list arrives sorted (main-phase completion order), and posts of
    equal ready time are interchangeable: whatever order they claim the
    two earliest processors in, the resulting pool and end-time multisets
    are identical, hence the same makespan as the reference path.
    """
    pool: list[float] = [0.0] * grouping.post_pool
    for group, size in enumerate(grouping.group_sizes):
        pool.extend([group_last_end[group]] * size)
    heapq.heapify(pool)

    if not pool:
        if ready_times:
            raise SimulationError(
                "no processor ever becomes available for post-processing "
                "tasks — grouping has no post pool and no groups?"
            )
        return 0.0

    push, pop = heapq.heappush, heapq.heappop
    makespan = 0.0
    for ready in ready_times:
        free_at = pop(pool)
        end = (free_at if free_at > ready else ready) + tp
        push(pool, end)
        if end > makespan:
            makespan = end
    return makespan
