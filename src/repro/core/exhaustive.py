"""Exhaustive grouping search — the simulated-optimal reference.

The knapsack heuristic maximizes a *proxy* (aggregate main-task
throughput), not the makespan itself; the paper observes the proxy can
mislead at large R.  This module computes the ground truth for
moderate-size instances: enumerate every feasible multiset of group
sizes, simulate each, and keep the best.  It exists to *measure* the
heuristics (optimality-gap ablation), not to replace them — enumeration
grows combinatorially and a paper-scale point costs thousands of
simulations where the knapsack DP costs microseconds.

Feasibility: sizes within the timing model's moldability range, total
processors ≤ R, group count ≤ NS (the paper's cardinality rule).
Groupings that leave processors idle are included — occasionally a
smaller packing wins by not pinning a scenario to a slow group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.grouping import Grouping
from repro.exceptions import SchedulingError
from repro.platform.cluster import ClusterSpec
from repro.simulation.engine import simulate
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["ExhaustiveResult", "enumerate_groupings", "exhaustive_grouping"]

#: Refuse to enumerate beyond this many candidates by default; the
#: caller can raise it explicitly for big offline studies.
DEFAULT_CANDIDATE_LIMIT = 200_000


@dataclass(frozen=True)
class ExhaustiveResult:
    """Outcome of an exhaustive grouping search."""

    best: Grouping
    best_makespan: float
    candidates: int

    def gap_of(self, makespan: float) -> float:
        """Relative optimality gap of another grouping's makespan (%)."""
        return (makespan - self.best_makespan) / self.best_makespan * 100.0


def enumerate_groupings(
    cluster: ClusterSpec,
    scenarios: int,
    *,
    limit: int = DEFAULT_CANDIDATE_LIMIT,
) -> list[tuple[int, ...]]:
    """All feasible group-size multisets (non-increasing tuples).

    Raises :class:`SchedulingError` when the candidate count exceeds
    ``limit`` — enumeration cost must be an explicit choice.
    """
    sizes = sorted(cluster.group_sizes, reverse=True)
    out: list[tuple[int, ...]] = []

    def recurse(start: int, budget: int, slots: int, acc: list[int]) -> None:
        if acc:
            out.append(tuple(acc))
            if len(out) > limit:
                raise SchedulingError(
                    f"more than {limit} candidate groupings on "
                    f"{cluster.name!r} (R={cluster.resources}, "
                    f"NS={scenarios}); raise the limit explicitly for "
                    f"offline studies"
                )
        if slots == 0:
            return
        for i in range(start, len(sizes)):
            size = sizes[i]
            if size <= budget:
                acc.append(size)
                recurse(i, budget - size, slots - 1, acc)
                acc.pop()

    recurse(0, cluster.resources, scenarios, [])
    if not out:
        raise SchedulingError(
            f"cluster {cluster.name!r} ({cluster.resources} processors) "
            f"cannot host any main-task group"
        )
    return out


def exhaustive_grouping(
    cluster: ClusterSpec,
    spec: EnsembleSpec,
    *,
    limit: int = DEFAULT_CANDIDATE_LIMIT,
) -> ExhaustiveResult:
    """Simulate every feasible grouping and return the best.

    Ties go to the first enumerated candidate (largest-size-first
    lexicographic order), making the result deterministic.
    """
    best_grouping: Grouping | None = None
    best_makespan = float("inf")
    candidates = enumerate_groupings(cluster, spec.scenarios, limit=limit)
    for sizes in candidates:
        grouping = Grouping.from_sizes(sizes, cluster.resources)
        makespan = simulate(
            grouping, spec, cluster.timing, cluster_name=cluster.name
        ).makespan
        if makespan < best_makespan:
            best_makespan = makespan
            best_grouping = grouping
    assert best_grouping is not None  # enumerate_groupings guarantees >= 1
    return ExhaustiveResult(best_grouping, best_makespan, len(candidates))
