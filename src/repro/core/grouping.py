"""The :class:`Grouping` datatype — a partition of a cluster's processors.

A grouping is what every heuristic in :mod:`repro.core` produces and what
the simulator consumes: a multiset of main-task group sizes, a count of
processors dedicated to post-processing, and the cluster's total
processor count (any remainder is idle — the waste Improvements 1–3
attack).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import SchedulingError
from repro.platform.timing import TimingModel

__all__ = ["Grouping"]


@dataclass(frozen=True)
class Grouping:
    """A partition of ``total_resources`` processors.

    Parameters
    ----------
    group_sizes:
        Sizes of the disjoint main-task groups, in scheduling priority
        order (the simulator prefers earlier groups on ties; heuristics
        emit them largest-first so ties go to the fastest group).
    post_pool:
        Processors dedicated to post-processing from time 0 (the paper's
        ``R2``).
    total_resources:
        The cluster's ``R``.  Must cover ``sum(group_sizes) + post_pool``;
        any excess is idle.
    """

    group_sizes: tuple[int, ...]
    post_pool: int
    total_resources: int

    def __post_init__(self) -> None:
        if not self.group_sizes:
            raise SchedulingError("a grouping needs at least one main-task group")
        if any(not isinstance(g, int) or g < 1 for g in self.group_sizes):
            raise SchedulingError(
                f"group sizes must be positive ints, got {self.group_sizes!r}"
            )
        if not isinstance(self.post_pool, int) or self.post_pool < 0:
            raise SchedulingError(f"post_pool must be a non-negative int, got {self.post_pool!r}")
        if self.used_resources > self.total_resources:
            raise SchedulingError(
                f"grouping uses {self.used_resources} processors but the "
                f"cluster only has {self.total_resources}"
            )

    @classmethod
    def uniform(
        cls, group_size: int, n_groups: int, total_resources: int, *, post_pool: int | None = None
    ) -> "Grouping":
        """``n_groups`` equal groups; post pool defaults to all leftovers."""
        if n_groups < 1:
            raise SchedulingError(f"n_groups must be >= 1, got {n_groups!r}")
        if post_pool is None:
            post_pool = total_resources - group_size * n_groups
        return cls((group_size,) * n_groups, post_pool, total_resources)

    @classmethod
    def from_sizes(
        cls,
        sizes: Iterable[int],
        total_resources: int,
        *,
        post_pool: int | None = None,
    ) -> "Grouping":
        """Build from any iterable of sizes, sorted largest-first.

        Post pool defaults to every processor not in a group.
        """
        ordered = tuple(sorted(sizes, reverse=True))
        if post_pool is None:
            post_pool = total_resources - sum(ordered)
        return cls(ordered, post_pool, total_resources)

    # -- accounting -----------------------------------------------------------

    @property
    def n_groups(self) -> int:
        """Number of main-task groups (the paper's ``nbmax`` for uniform G)."""
        return len(self.group_sizes)

    @property
    def main_resources(self) -> int:
        """Processors inside main-task groups (the paper's ``R1``)."""
        return sum(self.group_sizes)

    @property
    def used_resources(self) -> int:
        """Main + post processors."""
        return self.main_resources + self.post_pool

    @property
    def idle_resources(self) -> int:
        """Processors assigned to nothing at all."""
        return self.total_resources - self.used_resources

    @property
    def is_uniform(self) -> bool:
        """Whether all groups share one size (basic-heuristic shape)."""
        return len(set(self.group_sizes)) == 1

    def size_counts(self) -> Counter[int]:
        """Multiset view: ``{group_size: count}``."""
        return Counter(self.group_sizes)

    def validate_against(self, timing: TimingModel, scenarios: int) -> None:
        """Check the grouping is admissible for a timing model and ensemble.

        Every group must fit the moldability range, and the paper's
        cardinality rule must hold: no more groups than scenarios (extra
        groups could never run concurrently on the chain structure).
        """
        for g in self.group_sizes:
            timing.validate_group(g)
        if self.n_groups > scenarios:
            raise SchedulingError(
                f"{self.n_groups} groups for only {scenarios} scenarios — "
                f"at most one group per scenario can be busy"
            )

    def throughput(self, timing: TimingModel) -> float:
        """Aggregate main-task throughput ``Σ 1/T[g]`` (tasks per second).

        This is exactly the knapsack objective of Improvement 3.
        """
        return sum(1.0 / timing.main_time(g) for g in self.group_sizes)

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``3x8 + 4x7 | post=1 | idle=0``."""
        counts = self.size_counts()
        parts = " + ".join(
            f"{counts[size]}x{size}" for size in sorted(counts, reverse=True)
        )
        return f"{parts} | post={self.post_pool} | idle={self.idle_resources}"
