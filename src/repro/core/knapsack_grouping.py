"""Improvement 3 — knapsack-optimal multiset of group sizes.

Section 4.2: "there are 8 possible items (groups of 4 to 11 nodes).
The cost of an item is represented by the number of resources of that
grouping.  The value of a specific grouping G is given by 1/T[G], which
represents the fraction of a multiprocessor task that gets executed
during a time unit for that specific group of processors. [...]
The goal is to maximize Σ n_i × (1/T[i]) under the constraints
Σ i × n_i ≤ R and Σ n_i ≤ NS."

The groups may therefore have *different* sizes — this is what lets the
knapsack squeeze throughput out of resource counts where no uniform
``G`` divides ``R`` nicely.  Processors not packed into any group form
the post pool (the objective's tie rule prefers lighter packings, so no
processor is wasted inside an oversized group when a smaller one has
equal throughput).
"""

from __future__ import annotations

from typing import Callable

from repro import obs
from repro.core.grouping import Grouping
from repro.exceptions import SchedulingError
from repro.knapsack.dp import solve_dp
from repro.knapsack.items import CardinalityKnapsack, KnapsackSolution
from repro.platform.cluster import ClusterSpec
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["knapsack_problem_for", "knapsack_grouping"]

Solver = Callable[[CardinalityKnapsack], KnapsackSolution]


def knapsack_problem_for(
    cluster: ClusterSpec, spec: EnsembleSpec
) -> CardinalityKnapsack:
    """The paper's knapsack instance for one cluster and ensemble."""
    values = {g: 1.0 / cluster.main_time(g) for g in cluster.group_sizes}
    return CardinalityKnapsack.from_weights_values(
        values, cluster.resources, spec.scenarios
    )


def knapsack_grouping(
    cluster: ClusterSpec,
    spec: EnsembleSpec,
    *,
    solver: Solver = solve_dp,
) -> Grouping:
    """Improvement 3's partition: solve the knapsack, pack the rest as posts.

    ``solver`` defaults to the exact DP; the greedy solver can be
    injected for the ablation study.  Raises
    :class:`~repro.exceptions.SchedulingError` when the cluster cannot
    host a single group (the knapsack comes back empty).
    """
    problem = knapsack_problem_for(cluster, spec)
    solution = solver(problem)
    sizes = solution.as_multiset()
    if obs.enabled():
        # One candidate evaluation per knapsack item: each admissible
        # group size had its 1/T[g] value priced into the solve.
        obs.inc(
            "heuristic.candidate_evaluations",
            len(problem.items),
            heuristic="knapsack",
            cluster=cluster.name,
        )
    if not sizes:
        raise SchedulingError(
            f"cluster {cluster.name!r} ({cluster.resources} processors) "
            f"cannot host any main-task group (min size "
            f"{cluster.timing.min_group})"
        )
    return Grouping.from_sizes(sizes, cluster.resources)
