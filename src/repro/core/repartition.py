"""Algorithm 1 — greedy repartition of scenarios over clusters.

Section 5: "each simulation is scheduled on the cluster on which the
total makespan increases the less.  When all the simulations are
scheduled, this scheduling is returned to the client."  The algorithm is
optimal for the given performance arrays under the no-migration rule
("if we map a scenario onto another cluster, the total makespan cannot
decrease"), and the tests verify that claim by exhaustive comparison on
small instances.

Faithfulness note: the paper's pseudo-code picks the cluster minimizing
``performance[i][nbDags[i] + 1]`` — the *resulting makespan of that
cluster*, not the increase.  For non-decreasing performance vectors the
two rules coincide in outcome quality; we implement the paper's literal
rule, ties broken by lower cluster index exactly as the pseudo-code's
strict ``<`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SchedulingError

__all__ = ["Repartition", "repartition_dags"]


@dataclass(frozen=True)
class Repartition:
    """Result of Algorithm 1.

    ``assignment[d]`` is the cluster index of scenario ``d`` (0-based);
    ``counts[i]`` the number of scenarios on cluster ``i``;
    ``makespan`` the resulting global makespan
    ``max_i performance[i][counts[i]]``.
    """

    assignment: tuple[int, ...]
    counts: tuple[int, ...]
    makespan: float

    @property
    def n_scenarios(self) -> int:
        """Total scenarios placed."""
        return len(self.assignment)

    def scenarios_on(self, cluster_index: int) -> list[int]:
        """Scenario ids assigned to one cluster."""
        return [d for d, c in enumerate(self.assignment) if c == cluster_index]


def repartition_dags(
    performance: Sequence[Sequence[float]], n_scenarios: int
) -> Repartition:
    """Run Algorithm 1.

    Parameters
    ----------
    performance:
        ``performance[i][k-1]`` = makespan of ``k`` scenarios on cluster
        ``i`` (each row must cover ``k = 1..n_scenarios``; rows must be
        non-decreasing — a shorter makespan for *more* scenarios means
        the vector is corrupt).
    n_scenarios:
        Number of scenarios (the paper's NS) to place.
    """
    if n_scenarios < 1:
        raise SchedulingError(f"n_scenarios must be >= 1, got {n_scenarios!r}")
    if not performance:
        raise SchedulingError("need at least one cluster's performance vector")
    rows = [list(row) for row in performance]
    for i, row in enumerate(rows):
        if len(row) < n_scenarios:
            raise SchedulingError(
                f"cluster {i}'s performance vector has {len(row)} entries; "
                f"needs {n_scenarios}"
            )
        if any(a > b + 1e-9 for a, b in zip(row, row[1:], strict=False)):
            raise SchedulingError(
                f"cluster {i}'s performance vector is not non-decreasing"
            )

    counts = [0] * len(rows)
    assignment: list[int] = []
    for _dag in range(n_scenarios):
        ms_min = float("inf")
        cluster_min = 0
        for i, row in enumerate(rows):
            candidate = row[counts[i]]  # makespan with one more scenario
            if candidate < ms_min:
                ms_min = candidate
                cluster_min = i
        counts[cluster_min] += 1
        assignment.append(cluster_min)

    makespan = max(
        rows[i][counts[i] - 1] for i in range(len(rows)) if counts[i] > 0
    )
    return Repartition(tuple(assignment), tuple(counts), makespan)
