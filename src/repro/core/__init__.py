"""The paper's contribution: group-scheduling heuristics.

Everything in this subpackage answers one question: *given a cluster of
R processors and an ensemble of NS scenario chains, how should the
processors be partitioned into moldable-task groups?*

* :mod:`repro.core.makespan` — the closed-form makespan estimates of
  Section 4.1 (Equations 1–5).
* :mod:`repro.core.basic` — the basic uniform-``G`` heuristic.
* :mod:`repro.core.redistribute` — Improvement 1 (spread idle processors
  across groups).
* :mod:`repro.core.allpost_end` — Improvement 2 (no post pool, posts at
  the end).
* :mod:`repro.core.knapsack_grouping` — Improvement 3 (knapsack-optimal
  multiset of group sizes).
* :mod:`repro.core.performance_vector` / :mod:`repro.core.repartition` —
  the heterogeneous-grid extension of Section 5 (Algorithm 1).
* :mod:`repro.core.generic` — the future-work generalization to arbitrary
  chains of identical DAGs of moldable tasks.
"""

from repro.core.grouping import Grouping
from repro.core.makespan import (
    MakespanBreakdown,
    analytic_breakdown,
    analytic_makespan,
    cached_analytic_breakdown,
    cached_analytic_makespan,
    cached_simulated_makespan,
    clear_makespan_cache,
    makespan_cache_disabled,
    makespan_cache_enabled,
    makespan_cache_stats,
    set_makespan_cache_enabled,
)
from repro.core.basic import basic_grouping, best_uniform_group
from repro.core.redistribute import redistribute_grouping
from repro.core.allpost_end import allpost_end_grouping
from repro.core.knapsack_grouping import knapsack_grouping
from repro.core.heuristics import (
    HEURISTICS,
    HeuristicName,
    get_heuristic,
    plan_grouping,
)
from repro.core.performance_vector import performance_vector
from repro.core.batch import (
    BatchBreakdown,
    PerformanceVectorBuilder,
    batch_analytic_breakdown,
    batch_analytic_makespan,
    batch_best_uniform_group,
    batch_gains_over_baseline,
    batch_plan_groupings,
    batch_solve_dp,
)
from repro.core.repartition import Repartition, repartition_dags
from repro.core.generic import GenericChainProblem, generic_grouping
from repro.core.bounds import LowerBounds, lower_bounds
from repro.core.cpa import cpa_grouping, cpa_width
from repro.core.exhaustive import (
    ExhaustiveResult,
    enumerate_groupings,
    exhaustive_grouping,
)

__all__ = [
    "Grouping",
    "analytic_makespan",
    "analytic_breakdown",
    "MakespanBreakdown",
    "cached_analytic_breakdown",
    "cached_analytic_makespan",
    "cached_simulated_makespan",
    "clear_makespan_cache",
    "makespan_cache_disabled",
    "makespan_cache_enabled",
    "makespan_cache_stats",
    "set_makespan_cache_enabled",
    "basic_grouping",
    "best_uniform_group",
    "redistribute_grouping",
    "allpost_end_grouping",
    "knapsack_grouping",
    "HEURISTICS",
    "HeuristicName",
    "get_heuristic",
    "plan_grouping",
    "performance_vector",
    "BatchBreakdown",
    "PerformanceVectorBuilder",
    "batch_analytic_breakdown",
    "batch_analytic_makespan",
    "batch_best_uniform_group",
    "batch_gains_over_baseline",
    "batch_plan_groupings",
    "batch_solve_dp",
    "Repartition",
    "repartition_dags",
    "GenericChainProblem",
    "generic_grouping",
    "LowerBounds",
    "cpa_grouping",
    "cpa_width",
    "lower_bounds",
    "ExhaustiveResult",
    "enumerate_groupings",
    "exhaustive_grouping",
]
