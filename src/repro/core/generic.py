"""Future-work extension: generic chains of identical moldable-task DAGs.

The paper's conclusion: "Future work also consists in extending the
present work to a generic heuristic that can schedule the same kind of
workflow, made of independent chains of identical DAGs composed of
moldable tasks."

Nothing in the heuristics is Ocean-Atmosphere-specific once three inputs
are abstracted: the moldable task's timing table (any contiguous
processor range, not just 4–11), the satellite sequential task's
duration, and the chain dimensions.  :class:`GenericChainProblem`
packages those inputs and re-targets the existing machinery — knapsack
items become ``{p: 1/T[p]}`` over the custom range, the simulator runs
unchanged — so the extension is a projection, not a re-implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.grouping import Grouping
from repro.core.heuristics import HeuristicName, plan_grouping
from repro.exceptions import ConfigurationError
from repro.platform.cluster import ClusterSpec
from repro.platform.timing import TableTimingModel
from repro.simulation.engine import simulate
from repro.simulation.events import SimulationResult
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["GenericChainProblem", "generic_grouping", "generic_simulate"]


@dataclass(frozen=True)
class GenericChainProblem:
    """An abstract ensemble of identical moldable-task chains.

    Parameters
    ----------
    chains:
        Number of independent chains (the paper's NS).
    repeats:
        DAG repetitions per chain (the paper's NM).
    moldable_table:
        ``{p: seconds}`` timing of the moldable task over a contiguous
        processor range.
    post_seconds:
        Duration of the sequential satellite task spawned by each
        moldable completion.  Must be positive; workloads without a
        satellite phase can use a negligibly small value.
    resources:
        Processor count of the target (homogeneous) platform.
    """

    chains: int
    repeats: int
    moldable_table: Mapping[int, float]
    post_seconds: float
    resources: int

    def __post_init__(self) -> None:
        if self.chains < 1 or self.repeats < 1:
            raise ConfigurationError(
                f"chains and repeats must be >= 1, got "
                f"{self.chains!r}, {self.repeats!r}"
            )
        if self.resources < 1:
            raise ConfigurationError(
                f"resources must be >= 1, got {self.resources!r}"
            )
        # Delegate table/post validation to the timing model constructor.
        self.timing()

    def timing(self) -> TableTimingModel:
        """The problem's moldable timing as a standard timing model."""
        return TableTimingModel(
            dict(self.moldable_table), post_seconds=self.post_seconds
        )

    def cluster(self, name: str = "generic") -> ClusterSpec:
        """The problem's platform as a standard cluster."""
        return ClusterSpec(name, self.resources, self.timing())

    def spec(self) -> EnsembleSpec:
        """The problem's chain dimensions as an ensemble spec."""
        return EnsembleSpec(self.chains, self.repeats)


def generic_grouping(
    problem: GenericChainProblem,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
) -> Grouping:
    """Partition the generic platform with any of the paper's heuristics."""
    return plan_grouping(problem.cluster(), problem.spec(), heuristic)


def generic_simulate(
    problem: GenericChainProblem,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
    *,
    record_trace: bool = False,
) -> SimulationResult:
    """Plan and simulate a generic chain ensemble end to end."""
    grouping = generic_grouping(problem, heuristic)
    return simulate(
        grouping,
        problem.spec(),
        problem.timing(),
        cluster_name="generic",
        record_trace=record_trace,
    )
