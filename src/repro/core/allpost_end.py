"""Improvement 2 — no dedicated post pool; every post runs at the end.

Section 4.2: "another possibility for reducing the makespan is to use
the resources normally reserved for post-processing tasks for
multiprocessor tasks and to leave all the post-processing at the end.
It permits to avoid that the resource used to compute the
post-processing become idle waiting for new tasks."

The conclusion clarifies the distribution rule: it "does not leave any
resource for the post processing tasks and distributes all left
resources evenly to the groups of processors".  So: the basic ``G*`` and
``nbmax``, then *all* of ``R2`` is spread round-robin across the groups
(capped at the moldability maximum); posts wait until groups retire —
which is precisely how the simulator models a zero post pool.
"""

from __future__ import annotations

from repro.core.basic import best_uniform_group
from repro.core.grouping import Grouping
from repro.platform.cluster import ClusterSpec
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["allpost_end_grouping"]


def allpost_end_grouping(cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
    """Improvement 2's partition (see module docstring)."""
    g = best_uniform_group(cluster, spec)
    nbmax = min(spec.scenarios, cluster.resources // g)
    surplus = cluster.resources - nbmax * g

    sizes = [g] * nbmax
    max_size = cluster.timing.max_group
    idx = 0
    failures = 0
    while surplus > 0 and failures < nbmax:
        if sizes[idx] < max_size:
            sizes[idx] += 1
            surplus -= 1
            failures = 0
        else:
            failures += 1
        idx = (idx + 1) % nbmax
    # Processors that no group can absorb (everything at the maximum)
    # keep serving posts — leaving them idle would be strictly worse and
    # the paper's rule only applies while groups can still grow.
    return Grouping.from_sizes(sizes, cluster.resources, post_pool=surplus)
