"""Heuristic registry and the shared planning driver.

Maps the paper's four heuristic names to their grouping functions and
provides :func:`plan_grouping`, the single entry point used by the
experiments, the performance-vector service, and the CLI.
"""

from __future__ import annotations

import enum
import time
from typing import Callable

from repro import obs
from repro.core.allpost_end import allpost_end_grouping
from repro.core.basic import basic_grouping
from repro.core.grouping import Grouping
from repro.core.knapsack_grouping import knapsack_grouping
from repro.core.redistribute import redistribute_grouping
from repro.exceptions import ConfigurationError
from repro.platform.cluster import ClusterSpec
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["HeuristicName", "HEURISTICS", "get_heuristic", "plan_grouping"]

GroupingHeuristic = Callable[[ClusterSpec, EnsembleSpec], Grouping]


class HeuristicName(str, enum.Enum):
    """The paper's four processor-partitioning heuristics."""

    #: Section 4.1 — uniform group size, analytic G selection.
    BASIC = "basic"

    #: Improvement 1 — idle processors spread across groups.
    REDISTRIBUTE = "redistribute"

    #: Improvement 2 — no post pool, posts at the end.
    ALLPOST_END = "allpost_end"

    #: Improvement 3 — knapsack-optimal group multiset.
    KNAPSACK = "knapsack"


HEURISTICS: dict[HeuristicName, GroupingHeuristic] = {
    HeuristicName.BASIC: basic_grouping,
    HeuristicName.REDISTRIBUTE: redistribute_grouping,
    HeuristicName.ALLPOST_END: allpost_end_grouping,
    HeuristicName.KNAPSACK: knapsack_grouping,
}

#: The improvements of Section 4.2, in the paper's Gain 1/2/3 order.
IMPROVEMENTS: tuple[HeuristicName, ...] = (
    HeuristicName.REDISTRIBUTE,
    HeuristicName.ALLPOST_END,
    HeuristicName.KNAPSACK,
)


def get_heuristic(name: HeuristicName | str) -> GroupingHeuristic:
    """Resolve a heuristic by enum value or string name."""
    try:
        key = HeuristicName(name)
    except ValueError:
        valid = sorted(h.value for h in HeuristicName)
        raise ConfigurationError(
            f"unknown heuristic {name!r}; valid names: {valid}"
        ) from None
    return HEURISTICS[key]


_log = obs.get_logger(__name__)


def plan_grouping(
    cluster: ClusterSpec,
    spec: EnsembleSpec,
    heuristic: HeuristicName | str = HeuristicName.BASIC,
) -> Grouping:
    """Plan a processor partition with the named heuristic."""
    fn = get_heuristic(heuristic)
    if not obs.enabled():
        return fn(cluster, spec)
    name = HeuristicName(heuristic).value
    with obs.span("plan_grouping", heuristic=name, cluster=cluster.name):
        started = time.perf_counter()
        grouping = fn(cluster, spec)
        elapsed = time.perf_counter() - started
    obs.inc("heuristic.plans", heuristic=name, cluster=cluster.name)
    obs.observe(
        "heuristic.plan_seconds", elapsed, heuristic=name, cluster=cluster.name
    )
    obs.log_event(
        _log, "heuristic.grouping_planned",
        heuristic=name, cluster=cluster.name,
        grouping=grouping.describe(), n_groups=grouping.n_groups,
        plan_seconds=elapsed,
    )
    return grouping
