"""Improvement 1 — redistribute processors left idle by the basic grouping.

Section 4.2: with the basic grouping, "for a set of concurrent
multiprocessor tasks and the associated post-processing tasks, all the
available resources are not used".  The post pool only needs
``⌈nbmax / ⌊TG/TP⌋⌉`` processors to keep up with the main waves; the
paper's example (R=53, NS=10 → G=7, 7 groups, post needs 1, 3 idle)
redistributes the idle processors one per group: 3 groups of 8 and 4
groups of 7.

Rules implemented here, matching that example:

* start from the basic heuristic's ``G*`` and ``nbmax``;
* compute the post pool actually needed, ``⌈nbmax / ⌊TG/TP⌋⌉`` (at least
  1 whenever there are leftover processors at all);
* hand the surplus to the groups round-robin, one processor each,
  never exceeding the moldability maximum (11);
* anything still left (all groups already at 11) returns to the post
  pool.
"""

from __future__ import annotations

import math

from repro.core.basic import best_uniform_group
from repro.core.grouping import Grouping
from repro.core.makespan import _floor_ratio
from repro.platform.cluster import ClusterSpec
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["redistribute_grouping", "needed_post_pool"]


def needed_post_pool(cluster: ClusterSpec, group_size: int, n_groups: int) -> int:
    """Post processors needed to absorb one wave's posts within one wave.

    ``⌈nbmax / ⌊TG/TP⌋⌉`` — each post processor digests ``⌊TG/TP⌋``
    posts per main-task wave (Section 4.2's ``Runused`` derivation).
    Returns 0 when a single wave produces no post backlog at all
    (degenerate ``⌊TG/TP⌋ = 0`` is impossible since TG > TP for every
    admissible group).
    """
    per_proc = _floor_ratio(cluster.main_time(group_size), cluster.post_time())
    if per_proc <= 0:
        # Posts are longer than mains: one processor per concurrent group
        # is the minimum to avoid unbounded backlog.
        return n_groups
    return math.ceil(n_groups / per_proc)


def redistribute_grouping(cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
    """Improvement 1's partition (see module docstring)."""
    g = best_uniform_group(cluster, spec)
    nbmax = min(spec.scenarios, cluster.resources // g)
    r2 = cluster.resources - nbmax * g
    if r2 == 0:
        return Grouping.uniform(g, nbmax, cluster.resources)

    post = min(r2, needed_post_pool(cluster, g, nbmax))
    surplus = r2 - post
    sizes = [g] * nbmax
    max_size = cluster.timing.max_group
    idx = 0
    scanned = 0
    while surplus > 0 and scanned < nbmax:
        if sizes[idx] < max_size:
            sizes[idx] += 1
            surplus -= 1
            scanned = 0
        else:
            scanned += 1
        idx = (idx + 1) % nbmax
    # Whatever could not be absorbed (every group at the maximum) goes
    # back to post-processing.
    post += surplus
    return Grouping.from_sizes(sizes, cluster.resources, post_pool=post)
