"""Makespan lower bounds — how much room is left below the heuristics.

Two classical bounds apply to the ensemble-of-moldable-chains problem,
both independent of any grouping decision:

Chain bound
    Some scenario must run its ``NM`` months sequentially; even on a
    dedicated largest group, that takes ``NM · T[G_max]``, plus its last
    post task.  No schedule on any number of processors beats it.

Area bound
    The machine has ``R`` processors.  Every main task consumes at least
    ``min_G (G · T[G])`` processor-seconds (the work-minimizing width —
    *not* necessarily the smallest or largest group; the Amdahl tax on
    the 3 sequential components makes work U-shaped in G), and every
    post task exactly ``TP``.  Total work divided by ``R`` lower-bounds
    the makespan.

The combined bound is their maximum.  Uses:

* property tests assert every simulated schedule respects it (a
  violation would mean the simulator invents parallelism);
* the ablation suite reports each heuristic's distance from it, which
  bounds the *possible* further improvement over the knapsack heuristic
  without running the exponential exhaustive search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.platform.timing import TimingModel
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["LowerBounds", "lower_bounds"]


@dataclass(frozen=True)
class LowerBounds:
    """The two bounds and their maximum."""

    chain: float
    area: float

    @property
    def combined(self) -> float:
        """The tighter (larger) of the two bounds."""
        return max(self.chain, self.area)

    def gap_of(self, makespan: float) -> float:
        """Relative distance of a makespan above the combined bound (%).

        Negative values are impossible for correct schedules; the
        property tests rely on exactly that.
        """
        return (makespan - self.combined) / self.combined * 100.0


def lower_bounds(
    resources: int, spec: EnsembleSpec, timing: TimingModel
) -> LowerBounds:
    """Compute both lower bounds for one instance."""
    if resources < 1:
        raise SchedulingError(f"resources must be >= 1, got {resources!r}")

    fastest_main = min(timing.main_time(g) for g in timing.group_sizes)
    chain = spec.months * fastest_main + timing.post_time()

    min_work = min(g * timing.main_time(g) for g in timing.group_sizes)
    total_work = spec.total_months * (min_work + timing.post_time())
    area = total_work / resources

    return LowerBounds(chain=chain, area=area)
