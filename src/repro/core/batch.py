"""Vectorized batch kernels for Eq 1–5, the knapsack DP, and Algorithm 1.

The scalar kernels of :mod:`repro.core.makespan`, :mod:`repro.knapsack.dp`
and the heuristic modules evaluate one ``(R, G, NS, NM)`` cell per call;
figure sweeps and arena races evaluate tens of thousands.  This module
re-expresses those kernels as numpy array operations over entire grids:

* :func:`batch_analytic_breakdown` / :func:`batch_analytic_makespan` —
  Equations (1)–(5) over any broadcastable combination of the six scalar
  arguments.
* :func:`batch_best_uniform_group` — the basic heuristic's ``G``
  selection for a whole resource (or scenario) axis at once.
* :func:`batch_solve_dp` — the cardinality-capped knapsack DP evaluated
  once at the capacity ceiling, then traced back for every requested
  capacity (one ``O(max_items × C × |items|)`` pass serves the whole
  axis).
* :func:`batch_plan_groupings` — all four paper heuristics across a
  resource axis, returning the same :class:`~repro.core.grouping.Grouping`
  objects the scalar :func:`~repro.core.heuristics.plan_grouping` builds.
* :func:`batch_gains_over_baseline` — the Figure 8/10 gain metric over
  many cells at once.
* :class:`PerformanceVectorBuilder` — incremental Algorithm 1
  performance vectors that reuse the ``1..NS-1`` prefix (and the shared
  DP layer stack) when extending to ``NS``.

Every kernel is **bit-for-bit** equal to its scalar counterpart: the
array expressions replicate the scalar code's float operations operand
for operand, in the same order, so IEEE-754 rounding is identical.  The
scalar kernels stay untouched as the differential oracle — the property
suite in ``tests/property/test_batch_oracle.py`` enforces the equality,
and the golden-parity suite re-derives the committed figure fixtures
through these kernels.  Cells where a scalar kernel would raise
:class:`~repro.exceptions.SchedulingError` are *masked* (``feasible``
False, makespan ``+inf``) rather than raised, so one bad cell cannot
poison a grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence, TypeAlias

import numpy as np

from repro import obs
from repro.core.grouping import Grouping
from repro.core.heuristics import HeuristicName
from repro.core.makespan import _RATIO_EPS, MakespanBreakdown, _floor_ratio
from repro.exceptions import ConfigurationError, SchedulingError
from repro.knapsack.items import CardinalityKnapsack, KnapsackItem, KnapsackSolution
from repro.platform.cluster import ClusterSpec
from repro.platform.timing import TimingModel
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = [
    "BatchBreakdown",
    "PerformanceVectorBuilder",
    "batch_analytic_breakdown",
    "batch_analytic_makespan",
    "batch_best_uniform_group",
    "batch_gains_over_baseline",
    "batch_plan_groupings",
    "batch_solve_dp",
]

#: Anything the Eq 1–5 batch kernels accept per argument: scalars or
#: broadcastable arrays.
ArrayLike: TypeAlias = "int | float | Sequence[int] | Sequence[float] | np.ndarray"


# ---------------------------------------------------------------------------
# Equations (1)-(5) over a grid.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchBreakdown:
    """Arrays mirroring :class:`~repro.core.makespan.MakespanBreakdown`.

    All arrays share one broadcast shape.  ``feasible`` is False exactly
    where the scalar :func:`~repro.core.makespan.analytic_breakdown`
    would raise; there ``makespan``/``main_makespan`` are ``+inf``,
    ``case`` is ``""`` and the integer fields are 0.
    """

    feasible: np.ndarray
    makespan: np.ndarray
    main_makespan: np.ndarray
    case: np.ndarray
    group_size: np.ndarray
    n_groups: np.ndarray
    post_resources: np.ndarray
    waves: np.ndarray
    nbused: np.ndarray
    overpass: np.ndarray
    trailing_posts: np.ndarray

    @property
    def shape(self) -> tuple[int, ...]:
        """The common broadcast shape of every field array."""
        return tuple(self.makespan.shape)

    def at(self, index: "int | tuple[int, ...]") -> MakespanBreakdown:
        """The scalar breakdown of one feasible cell.

        Raises :class:`~repro.exceptions.SchedulingError` on an
        infeasible cell, matching the scalar kernel's contract.
        """
        if not bool(self.feasible[index]):
            raise SchedulingError(f"grid cell {index!r} is infeasible")
        return MakespanBreakdown(
            makespan=float(self.makespan[index]),
            main_makespan=float(self.main_makespan[index]),
            case=str(self.case[index]),
            group_size=int(self.group_size[index]),
            n_groups=int(self.n_groups[index]),
            post_resources=int(self.post_resources[index]),
            waves=int(self.waves[index]),
            nbused=int(self.nbused[index]),
            overpass=int(self.overpass[index]),
            trailing_posts=int(self.trailing_posts[index]),
        )


def batch_analytic_breakdown(
    resources: "ArrayLike",
    group_size: "ArrayLike",
    scenarios: "ArrayLike",
    months: "ArrayLike",
    tg: "ArrayLike",
    tp: "ArrayLike",
) -> BatchBreakdown:
    """Equations (1)–(5) over any broadcastable argument combination.

    Integer quantities are computed in exact ``int64`` arithmetic; the
    three float operations per cell (``waves × TG``, ``⌈·⌉ × TP``, their
    sum) pair the same operands in the same order as the scalar kernel,
    so each feasible cell equals ``analytic_breakdown(...)`` bit for
    bit.
    """
    arr_r, arr_g, arr_ns, arr_nm, arr_tg, arr_tp = np.broadcast_arrays(
        np.asarray(resources, dtype=np.int64),
        np.asarray(group_size, dtype=np.int64),
        np.asarray(scenarios, dtype=np.int64),
        np.asarray(months, dtype=np.int64),
        np.asarray(tg, dtype=np.float64),
        np.asarray(tp, dtype=np.float64),
    )
    feasible = (
        (arr_r >= 1)
        & (arr_ns >= 1)
        & (arr_nm >= 1)
        & (arr_g >= 1)
        & (arr_tg > 0.0)
        & (arr_tp > 0.0)
    )
    safe_g = np.where(arr_g >= 1, arr_g, 1)
    nbmax = np.where(feasible, np.minimum(arr_ns, arr_r // safe_g), 0)
    feasible = feasible & (nbmax > 0)

    # Sanitized operands for the masked-out cells: any positive stand-in
    # keeps the vector expressions finite; the mask discards the values.
    nbmax = np.where(feasible, nbmax, 1)
    safe_r = np.where(feasible, arr_r, 1)
    safe_tg = np.where(feasible, arr_tg, 1.0)
    safe_tp = np.where(feasible, arr_tp, 1.0)

    nbtasks = arr_ns * arr_nm
    r2 = arr_r - nbmax * arr_g
    nbused = nbtasks % nbmax
    # math.ceil(a / b): float true division then ceil — replicated, not
    # re-derived with integer ceil, to keep the op sequence identical.
    waves = np.ceil(nbtasks / nbmax).astype(np.int64)
    ms_multi = waves * safe_tg
    posts_per_proc = np.floor(safe_tg / safe_tp + _RATIO_EPS).astype(np.int64)

    # Equation (3): Rleft processors of the last, incomplete wave absorb
    # ⌊TG/TP⌋ posts each.
    r_left = safe_r - nbused * arr_g
    rem3 = nbused + np.maximum(0, nbtasks - nbused - posts_per_proc * r_left)
    # Equations (4)/(5): the dedicated pool of R2 processors digests
    # Npossible posts per wave; the rest overpass.
    n_possible = posts_per_proc * r2
    over4 = np.maximum(0, (waves - 1) * (nbmax - n_possible))
    trail4 = over4 + nbmax
    over5 = np.maximum(0, (waves - 2) * (nbmax - n_possible))
    rem5 = nbused + np.maximum(0, (over5 + nbmax) - posts_per_proc * r_left)

    no_pool = r2 == 0
    full_waves = nbused == 0
    m2 = feasible & no_pool & full_waves
    m3 = feasible & no_pool & ~full_waves
    m4 = feasible & ~no_pool & full_waves
    m5 = feasible & ~no_pool & ~full_waves

    trailing = np.select([m2, m3, m4, m5], [nbtasks, rem3, trail4, rem5], default=0)
    overpass = np.select([m4, m5], [over4, over5], default=0)
    case = np.select([m2, m3, m4, m5], ["eq2", "eq3", "eq4", "eq5"], default="")
    makespan = ms_multi + np.ceil(trailing / safe_r) * safe_tp

    return BatchBreakdown(
        feasible=feasible,
        makespan=np.where(feasible, makespan, np.inf),
        main_makespan=np.where(feasible, ms_multi, np.inf),
        case=case,
        group_size=np.where(feasible, arr_g, 0),
        n_groups=np.where(feasible, nbmax, 0),
        post_resources=np.where(feasible, r2, 0),
        waves=np.where(feasible, waves, 0),
        nbused=np.where(feasible, nbused, 0),
        overpass=overpass,
        trailing_posts=trailing,
    )


def batch_analytic_makespan(
    resources: "ArrayLike",
    group_size: "ArrayLike",
    scenarios: "ArrayLike",
    months: "ArrayLike",
    tg: "ArrayLike",
    tp: "ArrayLike",
) -> np.ndarray:
    """The makespan array of :func:`batch_analytic_breakdown`.

    ``+inf`` marks cells where the scalar kernel would raise — handy as
    an argmin-neutral sentinel.
    """
    return batch_analytic_breakdown(
        resources, group_size, scenarios, months, tg, tp
    ).makespan


def batch_best_uniform_group(
    timing: TimingModel,
    resources: "ArrayLike",
    scenarios: "ArrayLike",
    months: "ArrayLike",
) -> tuple[np.ndarray, np.ndarray]:
    """The basic heuristic's ``G`` selection over a whole grid.

    Broadcasts ``resources``/``scenarios``/``months``, appends the
    candidate-``G`` axis internally, and returns ``(best_g, feasible)``
    arrays of the broadcast shape.  ``best_g`` is 0 where no admissible
    group fits (the scalar :func:`~repro.core.basic.best_uniform_group`
    raises there).  The first-minimizer tie rule matches the scalar
    loop's strict ``<`` over ascending ``G``.
    """
    sizes = np.asarray(timing.group_sizes, dtype=np.int64)
    tg = np.asarray([timing.main_time(int(g)) for g in sizes], dtype=np.float64)
    arr_r, arr_ns, arr_nm = np.broadcast_arrays(
        np.asarray(resources, dtype=np.int64),
        np.asarray(scenarios, dtype=np.int64),
        np.asarray(months, dtype=np.int64),
    )
    axis_shape = (1,) * arr_r.ndim + (-1,)
    breakdown = batch_analytic_breakdown(
        arr_r[..., None],
        sizes.reshape(axis_shape),
        arr_ns[..., None],
        arr_nm[..., None],
        tg.reshape(axis_shape),
        timing.post_time(),
    )
    best_idx = np.argmin(breakdown.makespan, axis=-1)
    feasible = breakdown.feasible.any(axis=-1)
    best_g = np.where(feasible, sizes[best_idx], 0)
    return best_g, feasible


# ---------------------------------------------------------------------------
# The knapsack DP over a capacity axis.
# ---------------------------------------------------------------------------


class _DpLayers:
    """Mutable batched DP state over the full ``0..capacity`` axis.

    One layer per cardinality slot, each a vectorized sweep of the item
    candidates over every capacity at once.  The per-cell update order
    (items in problem order, strictly-greater lexicographic
    ``(value, -weight)`` wins) replicates :func:`repro.knapsack.dp.solve_dp`
    exactly, so the float value accumulations are bit-identical.  Layers
    can be appended later (``ensure``) — the basis of the incremental
    performance vectors.
    """

    def __init__(self, items: tuple[KnapsackItem, ...], capacity: int) -> None:
        self.items = items
        self.capacity = capacity
        self._value = np.zeros(capacity + 1, dtype=np.float64)
        self._negw = np.zeros(capacity + 1, dtype=np.int64)
        self.choices: list[np.ndarray] = []
        self.stabilized = False

    def ensure(self, max_items: int) -> None:
        """Compute layers up to ``max_items`` (no-op once stabilized)."""
        while len(self.choices) < max_items and not self.stabilized:
            self._add_layer()

    def _add_layer(self) -> None:
        cur_value = self._value.copy()
        cur_negw = self._negw.copy()
        choice = np.full(self.capacity + 1, -1, dtype=np.int32)
        for idx, item in enumerate(self.items):
            w = item.weight
            if w > self.capacity:
                continue
            cand_value = self._value[:-w] + item.value
            cand_negw = self._negw[:-w] - w
            seg_value = cur_value[w:]
            seg_negw = cur_negw[w:]
            better = (cand_value > seg_value) | (
                (cand_value == seg_value) & (cand_negw > seg_negw)
            )
            seg_value[better] = cand_value[better]
            seg_negw[better] = cand_negw[better]
            choice[w:][better] = idx
        self.choices.append(choice)
        # A winning candidate is strictly lexicographically greater, so
        # an unchanged layer is exactly an all-(-1) choice row — the
        # scalar DP's early-exit condition.
        if np.array_equal(cur_value, self._value) and np.array_equal(
            cur_negw, self._negw
        ):
            self.stabilized = True
        else:
            self._value = cur_value
            self._negw = cur_negw

    def traceback(self, capacity: int, max_items: int) -> dict[int, int]:
        """Item counts of the optimal packing at one ``(capacity, k)``.

        Valid for every ``capacity ≤ self.capacity`` and every
        ``max_items``: once two consecutive layers agree on the prefix
        ``0..capacity``, all later layers keep choice -1 there, so extra
        layers beyond the scalar DP's early exit contribute nothing.
        """
        counts: dict[int, int] = {}
        c = capacity
        for layer in range(min(max_items, len(self.choices)) - 1, -1, -1):
            idx = int(self.choices[layer][c])
            if idx >= 0:
                item = self.items[idx]
                counts[item.name] = counts.get(item.name, 0) + 1
                c -= item.weight
        return counts


def batch_solve_dp(
    problem: CardinalityKnapsack, capacities: Sequence[int]
) -> list[KnapsackSolution]:
    """:func:`~repro.knapsack.dp.solve_dp` at every capacity in one pass.

    One DP at ``problem.capacity`` serves every smaller capacity: a
    stabilized value-table prefix never changes again, so the traceback
    at capacity ``c`` over the full layer stack equals the scalar solve
    of the ``capacity=c`` sub-problem.  Each returned solution is
    validated against its own sub-problem, exactly like the scalar path.
    """
    caps = [int(c) for c in capacities]
    for c in caps:
        if c < 0 or c > problem.capacity:
            raise ConfigurationError(
                f"capacity {c} outside the solved range 0..{problem.capacity}"
            )
    layers = _DpLayers(problem.items, problem.capacity)
    layers.ensure(problem.max_items)
    solutions: list[KnapsackSolution] = []
    for c in caps:
        sub = replace(problem, capacity=c)
        counts = layers.traceback(c, problem.max_items)
        solutions.append(KnapsackSolution.from_counts(counts, sub))
    return solutions


# ---------------------------------------------------------------------------
# Batched heuristic planning.
# ---------------------------------------------------------------------------


def _spread_surplus(
    base: int, n_groups: int, surplus: int, max_size: int
) -> tuple[list[int], int]:
    """Round-robin ``surplus`` processors over ``n_groups`` equal groups.

    Closed form of the scalar redistribute/allpost loops: groups start
    equal, so each receives ``⌊surplus/n⌋`` (+1 for the first
    ``surplus mod n``), capped at ``max_size``; the unabsorbed remainder
    comes back.  Returns ``(sizes, leftover)``.
    """
    cap = max_size - base
    if surplus >= n_groups * cap:
        return [max_size] * n_groups, surplus - n_groups * cap
    q, rem = divmod(surplus, n_groups)
    sizes = [base + q + 1] * rem + [base + q] * (n_groups - rem)
    return sizes, 0


def _uniform_family_grouping(
    timing: TimingModel, name: HeuristicName, r: int, g: int, scenarios: int
) -> Grouping:
    """Assemble one basic/redistribute/allpost grouping from ``G*``."""
    nbmax = min(scenarios, r // g)
    if name is HeuristicName.BASIC:
        return Grouping.uniform(g, nbmax, r)
    r2 = r - nbmax * g
    if name is HeuristicName.REDISTRIBUTE:
        if r2 == 0:
            return Grouping.uniform(g, nbmax, r)
        per_proc = _floor_ratio(timing.main_time(g), timing.post_time())
        needed = nbmax if per_proc <= 0 else math.ceil(nbmax / per_proc)
        post = min(r2, needed)
        sizes, leftover = _spread_surplus(g, nbmax, r2 - post, timing.max_group)
        return Grouping.from_sizes(sizes, r, post_pool=post + leftover)
    # ALLPOST_END: every leftover processor joins a group; whatever no
    # group can absorb keeps serving posts.
    sizes, leftover = _spread_surplus(g, nbmax, r2, timing.max_group)
    return Grouping.from_sizes(sizes, r, post_pool=leftover)


def _batch_knapsack_groupings(
    timing: TimingModel, rs: list[int], spec: EnsembleSpec
) -> list["Grouping | None"]:
    values = {g: 1.0 / timing.main_time(g) for g in timing.group_sizes}
    ceiling = max(rs)
    problem = CardinalityKnapsack.from_weights_values(
        values, ceiling, spec.scenarios
    )
    solutions = batch_solve_dp(problem, rs)
    groupings: list[Grouping | None] = []
    for r, solution in zip(rs, solutions, strict=True):
        sizes = solution.as_multiset()
        groupings.append(Grouping.from_sizes(sizes, r) if sizes else None)
    return groupings


def batch_plan_groupings(
    timing: TimingModel,
    resources: Iterable[int],
    spec: EnsembleSpec,
    heuristic: "HeuristicName | str",
) -> list["Grouping | None"]:
    """Plan one heuristic across a resource axis with the batch kernels.

    Returns one entry per resource count, in order: the exact
    :class:`~repro.core.grouping.Grouping` the scalar
    :func:`~repro.core.heuristics.plan_grouping` would build, or ``None``
    where the scalar heuristic raises
    :class:`~repro.exceptions.SchedulingError` (cluster too small to
    host any group).
    """
    name = HeuristicName(heuristic)
    rs = [int(r) for r in resources]
    if not rs:
        return []
    for r in rs:
        if r < 1:
            raise ConfigurationError(f"resources must be >= 1, got {r!r}")
    if name is HeuristicName.KNAPSACK:
        groupings = _batch_knapsack_groupings(timing, rs, spec)
    else:
        best_g, feasible = batch_best_uniform_group(
            timing, rs, spec.scenarios, spec.months
        )
        groupings = [
            _uniform_family_grouping(timing, name, r, int(g), spec.scenarios)
            if ok
            else None
            for r, g, ok in zip(rs, best_g.tolist(), feasible.tolist(), strict=True)
        ]
    if obs.enabled():
        obs.inc("batch.plans", len(groupings), heuristic=name.value)
    return groupings


# ---------------------------------------------------------------------------
# Batched gain scoring (Figures 8/10, arena standings).
# ---------------------------------------------------------------------------


def batch_gains_over_baseline(
    cells: Sequence[Mapping[str, float]], baseline_key: str = "basic"
) -> list[dict[str, float]]:
    """:func:`~repro.analysis.gains.gains_over_baseline` for many cells.

    One vectorized ``(base - value) / base × 100`` per competitor name —
    the same operand pairing as the scalar
    :func:`~repro.analysis.gains.gain_percent`, so each returned dict
    equals the per-cell scalar result bit for bit (keys in each cell's
    iteration order, baseline omitted).
    """
    base = np.empty(len(cells), dtype=np.float64)
    for i, cell in enumerate(cells):
        if baseline_key not in cell:
            raise ConfigurationError(
                f"no baseline entry {baseline_key!r} in {sorted(cell)}"
            )
        value = cell[baseline_key]
        if value <= 0:
            raise ConfigurationError(
                f"baseline makespan must be > 0, got {value!r}"
            )
        base[i] = value

    order: list[list[str]] = []
    cell_index: dict[str, list[int]] = {}
    values: dict[str, list[float]] = {}
    for i, cell in enumerate(cells):
        names = [n for n in cell if n != baseline_key]
        order.append(names)
        for n in names:
            value = cell[n]
            if value < 0:
                raise ConfigurationError(
                    f"improved makespan must be >= 0, got {value!r}"
                )
            cell_index.setdefault(n, []).append(i)
            values.setdefault(n, []).append(value)

    gains: dict[str, np.ndarray] = {}
    position: dict[str, dict[int, int]] = {}
    for n in sorted(cell_index):
        idx = cell_index[n]
        b = base[np.asarray(idx, dtype=np.intp)]
        v = np.asarray(values[n], dtype=np.float64)
        gains[n] = (b - v) / b * 100.0
        position[n] = {i: pos for pos, i in enumerate(idx)}

    return [
        {n: float(gains[n][position[n][i]]) for n in names}
        for i, names in enumerate(order)
    ]


# ---------------------------------------------------------------------------
# Incremental Algorithm 1 performance vectors.
# ---------------------------------------------------------------------------


class PerformanceVectorBuilder:
    """Algorithm 1 performance vectors with prefix reuse.

    :func:`~repro.core.performance_vector.performance_vector` rebuilds
    the whole ``1..NS`` vector on every call; this builder keeps the
    computed prefix and, when extended from ``NS-1`` to ``NS``, plans
    and simulates only the new entry.  The knapsack heuristic goes
    further: one shared DP layer stack (one layer per cardinality slot)
    serves every ``k`` — extending appends layers instead of re-solving.

    ``extend`` returns the builder's *internal* list — the same object
    on every call (the identity is part of the contract and is tested);
    callers that need a snapshot must copy.  Entry ``k-1`` is bit-for-bit
    equal to ``performance_vector(cluster, EnsembleSpec(k, months),
    heuristic)[k-1]``.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        months: int,
        heuristic: "HeuristicName | str" = HeuristicName.KNAPSACK,
    ) -> None:
        self._cluster = cluster
        self._months = int(months)
        self._heuristic = HeuristicName(heuristic)
        self._vector: list[float] = []
        self._layers: "_DpLayers | None" = None

    @property
    def cluster(self) -> ClusterSpec:
        """The cluster the vector describes."""
        return self._cluster

    @property
    def heuristic(self) -> HeuristicName:
        """The planning heuristic baked into the vector."""
        return self._heuristic

    def __len__(self) -> int:
        return len(self._vector)

    def extend(self, scenarios: int) -> list[float]:
        """Grow the vector to ``scenarios`` entries; returns it.

        Already-covered prefixes are reused untouched.  Raises
        :class:`~repro.exceptions.SchedulingError` when the cluster
        cannot host any group (the scalar vector raises on its first
        entry for the same reason).
        """
        if scenarios < 1:
            raise ConfigurationError(
                f"need at least one scenario, got {scenarios!r}"
            )
        start = len(self._vector) + 1
        if scenarios < start:
            return self._vector
        from repro.simulation.engine import simulate

        timing = self._cluster.timing
        for k, grouping in zip(
            range(start, scenarios + 1),
            self._plan_range(start, scenarios),
            strict=True,
        ):
            if grouping is None:
                raise SchedulingError(
                    f"cluster {self._cluster.name!r} "
                    f"({self._cluster.resources} processors) cannot host any "
                    f"main-task group (min size {timing.min_group})"
                )
            spec = EnsembleSpec(k, self._months)
            result = simulate(
                grouping, spec, timing, cluster_name=self._cluster.name
            )
            self._vector.append(result.makespan)
        return self._vector

    def _plan_range(self, start: int, stop: int) -> list["Grouping | None"]:
        """Groupings for ``k = start..stop``, via the batch kernels."""
        timing = self._cluster.timing
        r = self._cluster.resources
        if self._heuristic is HeuristicName.KNAPSACK:
            if self._layers is None:
                values = {g: 1.0 / timing.main_time(g) for g in timing.group_sizes}
                problem = CardinalityKnapsack.from_weights_values(
                    values, r, stop
                )
                self._layers = _DpLayers(problem.items, problem.capacity)
            self._layers.ensure(stop)
            groupings: list[Grouping | None] = []
            for k in range(start, stop + 1):
                counts = self._layers.traceback(r, k)
                sub = CardinalityKnapsack(self._layers.items, r, k)
                sizes = KnapsackSolution.from_counts(counts, sub).as_multiset()
                groupings.append(
                    Grouping.from_sizes(sizes, r) if sizes else None
                )
            return groupings
        ks = np.arange(start, stop + 1, dtype=np.int64)
        best_g, feasible = batch_best_uniform_group(timing, r, ks, self._months)
        return [
            _uniform_family_grouping(timing, self._heuristic, r, int(g), int(k))
            if ok
            else None
            for k, g, ok in zip(
                ks.tolist(), best_g.tolist(), feasible.tolist(), strict=True
            )
        ]
