"""The basic heuristic of Section 4.1: one shared group size ``G``.

"All the 8 possibilities for the parameter G (4 → 11) are tested and the
one yielding the smallest makespan is chosen."  Selection uses the
*analytic* formulas (the paper computes, it does not simulate, at this
stage); ties go to the smaller ``G`` — with equal estimated makespans a
smaller group wastes fewer processors per group, and a fixed rule keeps
Figure 7 reproducible.
"""

from __future__ import annotations

import logging

from repro import obs
from repro.core.grouping import Grouping
from repro.core.makespan import cached_analytic_makespan
from repro.exceptions import SchedulingError
from repro.platform.cluster import ClusterSpec
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["best_uniform_group", "basic_grouping"]

_log = obs.get_logger(__name__)


def best_uniform_group(cluster: ClusterSpec, spec: EnsembleSpec) -> int:
    """The ``G`` minimizing the analytic makespan on this cluster.

    Raises :class:`~repro.exceptions.SchedulingError` when not even the
    smallest admissible group fits on the cluster.
    """
    tp = cluster.post_time()
    best_g: int | None = None
    best_ms = float("inf")
    collect = obs.enabled()  # hoisted: the candidate loop stays branch-cheap
    for g in cluster.group_sizes:
        if g > cluster.resources:
            if collect:
                obs.inc(
                    "heuristic.rejections",
                    heuristic="basic",
                    cluster=cluster.name,
                    reason="group_exceeds_resources",
                )
                obs.log_event(
                    _log, "heuristic.candidate_rejected",
                    heuristic="basic", cluster=cluster.name, group=g,
                    reason="group_exceeds_resources",
                )
            continue
        ms = cached_analytic_makespan(
            cluster.resources, g, spec.scenarios, spec.months,
            cluster.main_time(g), tp,
        )
        if collect:
            obs.inc(
                "heuristic.candidate_evaluations",
                heuristic="basic",
                cluster=cluster.name,
            )
            obs.log_event(
                _log, "heuristic.candidate_evaluated", level=logging.DEBUG,
                heuristic="basic", cluster=cluster.name, group=g,
                analytic_makespan_s=ms,
            )
        if ms < best_ms:
            best_ms = ms
            best_g = g
    if collect and best_g is not None:
        obs.set_gauge(
            "heuristic.chosen_group",
            best_g,
            heuristic="basic",
            cluster=cluster.name,
        )
        obs.log_event(
            _log, "heuristic.group_selected",
            heuristic="basic", cluster=cluster.name, group=best_g,
            analytic_makespan_s=best_ms,
        )
    if best_g is None:
        raise SchedulingError(
            f"cluster {cluster.name!r} ({cluster.resources} processors) "
            f"cannot host any main-task group (min size "
            f"{cluster.timing.min_group})"
        )
    return best_g


def basic_grouping(cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
    """The basic heuristic's partition: ``nbmax`` groups of ``G*``.

    ``nbmax = min(NS, ⌊R/G*⌋)`` groups run main tasks; the remaining
    ``R2`` processors form the dedicated post pool.
    """
    g = best_uniform_group(cluster, spec)
    nbmax = min(spec.scenarios, cluster.resources // g)
    return Grouping.uniform(g, nbmax, cluster.resources)
