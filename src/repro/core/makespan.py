"""Closed-form makespan estimates — Equations (1)–(5) of Section 4.1.

These formulas estimate the makespan of the *basic* schedule: ``nbmax``
groups of ``G`` processors run the main tasks in waves while ``R2``
leftover processors absorb post-processing, with the paper's four cases
over ``R2 = 0 / ≠ 0`` and ``nbused = 0 / ≠ 0``.

They are estimates, not ground truth — the simulator of
:mod:`repro.simulation.engine` is the arbiter, and the ablation
benchmark measures the gap.  The basic heuristic nevertheless *selects*
``G`` with these formulas, exactly as the paper does, so they are part
of the contribution being reproduced, quirks included.

Notation (mirroring the paper)::

    NS        independent simulations          NM   months per simulation
    R         total processors                 G    processors per group
    nbtasks   NS × NM monthly tasks
    nbmax     min(NS, ⌊R/G⌋) concurrent groups
    R1        nbmax × G processors in groups   R2   R − R1 post processors
    nbused    nbtasks mod nbmax — groups busy in the last (incomplete) wave
    TG        main-task time on G processors   TP   post-task time
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.exceptions import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports core)
    from repro.core.grouping import Grouping
    from repro.platform.timing import TimingModel
    from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = [
    "MakespanBreakdown",
    "analytic_breakdown",
    "analytic_makespan",
    "cached_analytic_breakdown",
    "cached_analytic_makespan",
    "cached_simulated_makespan",
    "clear_makespan_cache",
    "makespan_cache_disabled",
    "makespan_cache_enabled",
    "makespan_cache_stats",
    "set_makespan_cache_enabled",
]

#: Guard for ``⌊TG/TP⌋`` on float inputs: 1259.999999 / 180 must floor
#: like 1260 / 180 would.
_RATIO_EPS = 1e-9


def _floor_ratio(tg: float, tp: float) -> int:
    """``⌊TG/TP⌋`` with protection against float fuzz."""
    return math.floor(tg / tp + _RATIO_EPS)


@dataclass(frozen=True)
class MakespanBreakdown:
    """An analytic makespan with its intermediate quantities exposed.

    ``case`` identifies which of the paper's four formulas applied:
    ``"eq2"`` (R2=0, nbused=0), ``"eq3"`` (R2=0, nbused≠0),
    ``"eq4"`` (R2≠0, nbused=0), ``"eq5"`` (R2≠0, nbused≠0).
    """

    makespan: float
    main_makespan: float
    case: str
    group_size: int
    n_groups: int
    post_resources: int
    waves: int
    nbused: int
    overpass: int
    trailing_posts: int


def analytic_breakdown(
    resources: int,
    group_size: int,
    scenarios: int,
    months: int,
    tg: float,
    tp: float,
) -> MakespanBreakdown:
    """Evaluate the paper's formulas for one candidate ``G``.

    Raises :class:`~repro.exceptions.SchedulingError` when no group of
    ``group_size`` fits on ``resources`` processors (the paper simply
    never evaluates such a ``G``).
    """
    if resources < 1 or scenarios < 1 or months < 1:
        raise SchedulingError(
            f"need resources, scenarios, months >= 1, got "
            f"{resources}, {scenarios}, {months}"
        )
    if group_size < 1 or tg <= 0 or tp <= 0:
        raise SchedulingError(
            f"need group_size >= 1 and positive TG, TP, got "
            f"{group_size}, {tg}, {tp}"
        )

    nbmax = min(scenarios, resources // group_size)
    if nbmax == 0:
        raise SchedulingError(
            f"group size {group_size} does not fit on {resources} processors"
        )
    nbtasks = scenarios * months
    r1 = nbmax * group_size
    r2 = resources - r1
    nbused = nbtasks % nbmax
    waves = math.ceil(nbtasks / nbmax)
    ms_multi = waves * tg
    posts_per_proc = _floor_ratio(tg, tp)

    if r2 == 0:
        if nbused == 0:
            # Equation (2): every wave is full; all posts run at the end
            # on the whole machine.
            trailing = nbtasks
            makespan = ms_multi + math.ceil(nbtasks / resources) * tp
            case = "eq2"
            overpass = 0
        else:
            # Equation (3): the last wave leaves Rleft processors free for
            # ⌊TG/TP⌋ posts each; the remainder trail at the end.
            r_left = resources - nbused * group_size
            rem_post = nbused + max(
                0, nbtasks - nbused - posts_per_proc * r_left
            )
            trailing = rem_post
            makespan = ms_multi + math.ceil(rem_post / resources) * tp
            case = "eq3"
            overpass = 0
    else:
        n_possible = posts_per_proc * r2
        if nbused == 0:
            # Equation (4): each of the first n−1 waves may overflow the
            # post pool by (nbmax − Npossible) tasks.
            overpass = max(0, (waves - 1) * (nbmax - n_possible))
            trailing = overpass + nbmax
            makespan = ms_multi + math.ceil(trailing / resources) * tp
            case = "eq4"
        else:
            # Equation (5): overflow accumulates over n−2 complete waves,
            # then spills onto the last wave's unused groups (Rleft).
            overpass = max(0, (waves - 2) * (nbmax - n_possible))
            nover_tot = overpass + nbmax
            r_left = resources - group_size * nbused
            rem_post = nbused + max(0, nover_tot - posts_per_proc * r_left)
            trailing = rem_post
            makespan = ms_multi + math.ceil(rem_post / resources) * tp
            case = "eq5"

    return MakespanBreakdown(
        makespan=makespan,
        main_makespan=ms_multi,
        case=case,
        group_size=group_size,
        n_groups=nbmax,
        post_resources=r2,
        waves=waves,
        nbused=nbused,
        overpass=overpass,
        trailing_posts=trailing,
    )


def analytic_makespan(
    resources: int,
    group_size: int,
    scenarios: int,
    months: int,
    tg: float,
    tp: float,
) -> float:
    """The scalar makespan estimate (see :func:`analytic_breakdown`)."""
    return analytic_breakdown(
        resources, group_size, scenarios, months, tg, tp
    ).makespan


# ---------------------------------------------------------------------------
# Memoized kernels.
#
# Figure sweeps evaluate the same (R, G, NS, NM, TG, TP) kernel many times:
# every heuristic re-scores the same candidate groups, and neighbouring
# sweep points share groupings outright.  Both the analytic formulas and
# the event simulator are pure functions of those inputs, so a process-
# local memo turns the duplicates into dict lookups.  Caches are keyed on
# the exact float timing vector — no rounding — so a hit is bit-for-bit
# identical to a recomputation (the differential-oracle tests enforce
# this with the cache both enabled and disabled).
# ---------------------------------------------------------------------------

#: FIFO eviction bound per cache — generous for any figure-scale sweep
#: (fig7's full grid needs a few hundred entries) while keeping a
#: runaway campaign's memory flat.
_CACHE_MAXSIZE = 1 << 16

_analytic_cache: dict[tuple, MakespanBreakdown] = {}
_simulated_cache: dict[tuple, float] = {}
_cache_enabled = True
_cache_counters = {
    "analytic": {"hits": 0, "misses": 0},
    "simulated": {"hits": 0, "misses": 0},
}


def _record(kind: str, outcome: str) -> None:
    """Count a lookup locally and mirror it into the metrics registry."""
    _cache_counters[kind]["hits" if outcome == "hit" else "misses"] += 1
    from repro import obs  # deferred: keep the formula module import-light

    if obs.enabled():
        obs.inc("makespan.cache", kind=kind, outcome=outcome)


def set_makespan_cache_enabled(enabled: bool) -> bool:
    """Switch the memo caches on or off; returns the previous setting.

    Disabling does not clear stored entries — re-enabling resumes with
    the warm cache.  The switch is process-local, like the caches.
    """
    global _cache_enabled
    previous = _cache_enabled
    _cache_enabled = bool(enabled)
    return previous


def makespan_cache_enabled() -> bool:
    """Whether the memo caches are currently consulted."""
    return _cache_enabled


@contextmanager
def makespan_cache_disabled() -> Iterator[None]:
    """Context manager running its body with the memo caches bypassed."""
    previous = set_makespan_cache_enabled(False)
    try:
        yield
    finally:
        set_makespan_cache_enabled(previous)


def clear_makespan_cache() -> None:
    """Drop every cached kernel and zero the hit/miss counters."""
    _analytic_cache.clear()
    _simulated_cache.clear()
    for counters in _cache_counters.values():
        counters["hits"] = 0
        counters["misses"] = 0


def makespan_cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/size counters per kernel kind (``analytic``/``simulated``)."""
    return {
        "analytic": {
            "hits": _cache_counters["analytic"]["hits"],
            "misses": _cache_counters["analytic"]["misses"],
            "size": len(_analytic_cache),
        },
        "simulated": {
            "hits": _cache_counters["simulated"]["hits"],
            "misses": _cache_counters["simulated"]["misses"],
            "size": len(_simulated_cache),
        },
    }


def _store(cache: dict, key: tuple, value: object) -> None:
    """Insert with FIFO eviction (dicts preserve insertion order)."""
    if len(cache) >= _CACHE_MAXSIZE:
        cache.pop(next(iter(cache)))
    cache[key] = value


def cached_analytic_breakdown(
    resources: int,
    group_size: int,
    scenarios: int,
    months: int,
    tg: float,
    tp: float,
) -> MakespanBreakdown:
    """Memoized :func:`analytic_breakdown`, keyed on all six inputs.

    The returned :class:`MakespanBreakdown` is frozen, so sharing one
    instance across callers is safe.  Errors (infeasible ``G``) are not
    cached — they re-raise on every call, exactly like the uncached path.
    """
    if not _cache_enabled:
        return analytic_breakdown(resources, group_size, scenarios, months, tg, tp)
    key = (resources, group_size, scenarios, months, tg, tp)
    hit = _analytic_cache.get(key)
    if hit is not None:
        _record("analytic", "hit")
        return hit
    _record("analytic", "miss")
    value = analytic_breakdown(resources, group_size, scenarios, months, tg, tp)
    _store(_analytic_cache, key, value)
    return value


def cached_analytic_makespan(
    resources: int,
    group_size: int,
    scenarios: int,
    months: int,
    tg: float,
    tp: float,
) -> float:
    """Memoized :func:`analytic_makespan` (see :func:`cached_analytic_breakdown`)."""
    return cached_analytic_breakdown(
        resources, group_size, scenarios, months, tg, tp
    ).makespan


def simulation_cache_key(
    grouping: "Grouping", spec: "EnsembleSpec", timing: "TimingModel"
) -> tuple:
    """The exact inputs the event simulator's makespan depends on.

    ``(group-size vector, post pool, NS, NM, TG vector, TP)`` — the
    cluster's name and any timing-model internals beyond the evaluated
    times are deliberately excluded, so identical kernels reached from
    different clusters share one entry.
    """
    return (
        grouping.group_sizes,
        grouping.post_pool,
        spec.scenarios,
        spec.months,
        tuple(timing.main_time(g) for g in grouping.group_sizes),
        timing.post_time(),
    )


def cached_simulated_makespan(
    grouping: "Grouping", spec: "EnsembleSpec", timing: "TimingModel"
) -> float:
    """Memoized event-simulator makespan for one grouping/ensemble/timing.

    The simulator is deterministic in :func:`simulation_cache_key`, so a
    cache hit returns the bit-identical float a fresh
    :func:`repro.simulation.engine.simulate` call would produce.  Only
    the scalar makespan is cached; callers needing traces or the full
    :class:`~repro.simulation.events.SimulationResult` should call the
    engine directly.
    """
    from repro.simulation.engine import simulate

    if not _cache_enabled:
        return simulate(grouping, spec, timing).makespan
    key = simulation_cache_key(grouping, spec, timing)
    hit = _simulated_cache.get(key)
    if hit is not None:
        _record("simulated", "hit")
        return hit
    _record("simulated", "miss")
    value = simulate(grouping, spec, timing).makespan
    _store(_simulated_cache, key, value)
    return value
