"""Closed-form makespan estimates — Equations (1)–(5) of Section 4.1.

These formulas estimate the makespan of the *basic* schedule: ``nbmax``
groups of ``G`` processors run the main tasks in waves while ``R2``
leftover processors absorb post-processing, with the paper's four cases
over ``R2 = 0 / ≠ 0`` and ``nbused = 0 / ≠ 0``.

They are estimates, not ground truth — the simulator of
:mod:`repro.simulation.engine` is the arbiter, and the ablation
benchmark measures the gap.  The basic heuristic nevertheless *selects*
``G`` with these formulas, exactly as the paper does, so they are part
of the contribution being reproduced, quirks included.

Notation (mirroring the paper)::

    NS        independent simulations          NM   months per simulation
    R         total processors                 G    processors per group
    nbtasks   NS × NM monthly tasks
    nbmax     min(NS, ⌊R/G⌋) concurrent groups
    R1        nbmax × G processors in groups   R2   R − R1 post processors
    nbused    nbtasks mod nbmax — groups busy in the last (incomplete) wave
    TG        main-task time on G processors   TP   post-task time
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import SchedulingError

__all__ = ["MakespanBreakdown", "analytic_breakdown", "analytic_makespan"]

#: Guard for ``⌊TG/TP⌋`` on float inputs: 1259.999999 / 180 must floor
#: like 1260 / 180 would.
_RATIO_EPS = 1e-9


def _floor_ratio(tg: float, tp: float) -> int:
    """``⌊TG/TP⌋`` with protection against float fuzz."""
    return math.floor(tg / tp + _RATIO_EPS)


@dataclass(frozen=True)
class MakespanBreakdown:
    """An analytic makespan with its intermediate quantities exposed.

    ``case`` identifies which of the paper's four formulas applied:
    ``"eq2"`` (R2=0, nbused=0), ``"eq3"`` (R2=0, nbused≠0),
    ``"eq4"`` (R2≠0, nbused=0), ``"eq5"`` (R2≠0, nbused≠0).
    """

    makespan: float
    main_makespan: float
    case: str
    group_size: int
    n_groups: int
    post_resources: int
    waves: int
    nbused: int
    overpass: int
    trailing_posts: int


def analytic_breakdown(
    resources: int,
    group_size: int,
    scenarios: int,
    months: int,
    tg: float,
    tp: float,
) -> MakespanBreakdown:
    """Evaluate the paper's formulas for one candidate ``G``.

    Raises :class:`~repro.exceptions.SchedulingError` when no group of
    ``group_size`` fits on ``resources`` processors (the paper simply
    never evaluates such a ``G``).
    """
    if resources < 1 or scenarios < 1 or months < 1:
        raise SchedulingError(
            f"need resources, scenarios, months >= 1, got "
            f"{resources}, {scenarios}, {months}"
        )
    if group_size < 1 or tg <= 0 or tp <= 0:
        raise SchedulingError(
            f"need group_size >= 1 and positive TG, TP, got "
            f"{group_size}, {tg}, {tp}"
        )

    nbmax = min(scenarios, resources // group_size)
    if nbmax == 0:
        raise SchedulingError(
            f"group size {group_size} does not fit on {resources} processors"
        )
    nbtasks = scenarios * months
    r1 = nbmax * group_size
    r2 = resources - r1
    nbused = nbtasks % nbmax
    waves = math.ceil(nbtasks / nbmax)
    ms_multi = waves * tg
    posts_per_proc = _floor_ratio(tg, tp)

    if r2 == 0:
        if nbused == 0:
            # Equation (2): every wave is full; all posts run at the end
            # on the whole machine.
            trailing = nbtasks
            makespan = ms_multi + math.ceil(nbtasks / resources) * tp
            case = "eq2"
            overpass = 0
        else:
            # Equation (3): the last wave leaves Rleft processors free for
            # ⌊TG/TP⌋ posts each; the remainder trail at the end.
            r_left = resources - nbused * group_size
            rem_post = nbused + max(
                0, nbtasks - nbused - posts_per_proc * r_left
            )
            trailing = rem_post
            makespan = ms_multi + math.ceil(rem_post / resources) * tp
            case = "eq3"
            overpass = 0
    else:
        n_possible = posts_per_proc * r2
        if nbused == 0:
            # Equation (4): each of the first n−1 waves may overflow the
            # post pool by (nbmax − Npossible) tasks.
            overpass = max(0, (waves - 1) * (nbmax - n_possible))
            trailing = overpass + nbmax
            makespan = ms_multi + math.ceil(trailing / resources) * tp
            case = "eq4"
        else:
            # Equation (5): overflow accumulates over n−2 complete waves,
            # then spills onto the last wave's unused groups (Rleft).
            overpass = max(0, (waves - 2) * (nbmax - n_possible))
            nover_tot = overpass + nbmax
            r_left = resources - group_size * nbused
            rem_post = nbused + max(0, nover_tot - posts_per_proc * r_left)
            trailing = rem_post
            makespan = ms_multi + math.ceil(rem_post / resources) * tp
            case = "eq5"

    return MakespanBreakdown(
        makespan=makespan,
        main_makespan=ms_multi,
        case=case,
        group_size=group_size,
        n_groups=nbmax,
        post_resources=r2,
        waves=waves,
        nbused=nbused,
        overpass=overpass,
        trailing_posts=trailing,
    )


def analytic_makespan(
    resources: int,
    group_size: int,
    scenarios: int,
    months: int,
    tg: float,
    tp: float,
) -> float:
    """The scalar makespan estimate (see :func:`analytic_breakdown`)."""
    return analytic_breakdown(
        resources, group_size, scenarios, months, tg, tp
    ).makespan
