"""Performance vectors — Section 5, step (2) of the protocol.

"Each cluster computes a vector containing the time needed to execute
from 1 to NS simulations using the Knapsack modeling given before."

``performance_vector(cluster, spec, heuristic)[k-1]`` is the simulated
makespan of running ``k`` scenarios (of ``spec.months`` months each) on
the cluster under the named heuristic.  The vector drives Algorithm 1's
greedy repartition; computing it per-heuristic is what lets Figure 10
compare the improvements in the grid setting.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.heuristics import HeuristicName, plan_grouping
from repro.exceptions import ConfigurationError
from repro.platform.cluster import ClusterSpec
from repro.simulation.engine import simulate
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["performance_vector", "cluster_makespan"]


def cluster_makespan(
    cluster: ClusterSpec,
    spec: EnsembleSpec,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
) -> float:
    """Simulated makespan of one ensemble on one cluster."""
    grouping = plan_grouping(cluster, spec, heuristic)
    result = simulate(grouping, spec, cluster.timing, cluster_name=cluster.name)
    return result.makespan


def performance_vector(
    cluster: ClusterSpec,
    spec: EnsembleSpec,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
) -> list[float]:
    """Makespans for 1..NS scenarios on this cluster, under one heuristic.

    Index ``k-1`` holds the makespan of ``k`` scenarios.  The vector is
    non-decreasing in ``k`` for any sane heuristic (more scenarios, same
    processors) — the middleware's SeD asserts this before replying.
    """
    if spec.scenarios < 1:
        raise ConfigurationError(
            f"need at least one scenario, got {spec.scenarios!r}"
        )
    vector: list[float] = []
    for k in range(1, spec.scenarios + 1):
        sub = replace(spec, scenarios=k)
        vector.append(cluster_makespan(cluster, sub, heuristic))
    return vector
