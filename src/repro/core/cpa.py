"""A CPA-style baseline — the related work, adapted and measured.

Section 3.2 discusses CPA (Critical Path and Area based Scheduling,
Radulescu & van Gemund, ICPP 2001) and argues it is "not applicable
here because our application does not contain a single critical path".
That argument deserves a measurement, so this module implements the
natural adaptation of CPA's *allocation* phase to the ensemble:

CPA grows a moldable task's allocation while the critical-path length
`CP` exceeds the average area `A = total_work / R`, because the optimal
makespan is bounded below by `max(CP, A)` and growing the dominant term
shrinks it.  For `NS` identical chains of `NM` identical tasks the
quantities collapse to::

    CP(G) = NM · T[G]
    A(G)  = NS · NM · G · T[G] / R

and all tasks share one width, so the adaptation picks the smallest
``G`` whose `CP(G) ≤ A(G)` stops improving `max(CP, A)` — then packs
``min(NS, ⌊R/G⌋)`` groups like the basic heuristic.

What the measurement shows (see the ablation benchmark): CPA-adapted
tracks the basic heuristic closely but ignores wave quantization — at
resource counts where `⌊R/G⌋` truncates badly it leaves whole groups'
worth of processors idle, exactly the waste Improvements 1–3 attack.
The paper's dismissal is thus *quantified*, not just asserted.
"""

from __future__ import annotations

from repro.core.grouping import Grouping
from repro.exceptions import SchedulingError
from repro.platform.cluster import ClusterSpec
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["cpa_width", "cpa_grouping"]


def cpa_width(cluster: ClusterSpec, spec: EnsembleSpec) -> int:
    """The CPA-adapted allocation width.

    Grow ``G`` from the minimum while it reduces
    ``max(CP(G), A(G))``; stop at the first non-improvement (CPA's
    stopping rule, translated to the uniform-width setting).
    """
    widths = [g for g in cluster.group_sizes if g <= cluster.resources]
    if not widths:
        raise SchedulingError(
            f"cluster {cluster.name!r} ({cluster.resources} processors) "
            f"cannot host any main-task group"
        )

    def objective(g: int) -> float:
        t = cluster.main_time(g)
        cp = spec.months * t
        area = spec.total_months * g * t / cluster.resources
        return max(cp, area)

    best = widths[0]
    best_value = objective(best)
    for g in widths[1:]:
        value = objective(g)
        if value < best_value - 1e-9:
            best = g
            best_value = value
        else:
            break  # CPA stops at the first non-improving growth step
    return best


def cpa_grouping(cluster: ClusterSpec, spec: EnsembleSpec) -> Grouping:
    """CPA-adapted partition: uniform groups at :func:`cpa_width`."""
    g = cpa_width(cluster, spec)
    nbmax = min(spec.scenarios, cluster.resources // g)
    return Grouping.uniform(g, nbmax, cluster.resources)
