"""Command-line interface: ``repro-oa`` (or ``python -m repro.cli``).

Subcommands::

    repro-oa fig1                     # application model (Figures 1-2)
    repro-oa fig7  [--months 60 ...]  # optimal grouping staircase
    repro-oa fig8  [--step 1 ...]     # homogeneous gains, mean ± std
    repro-oa fig10 [--step 4 ...]     # grid gains with Algorithm 1
    repro-oa sweep [--out sweep.ndjson ...]  # batched resumable grid sweep
    repro-oa arena [--grids fig7 --schedulers all --faults 7]  # scheduler race
    repro-oa ablations                # design-decision studies
    repro-oa simulate  --cluster sagittaire --resources 53 ...
    repro-oa campaign  --clusters 3 --resources 40 ...
    repro-oa recover   --fail chti --at-hours 5 ...
    repro-oa faults    --seed 7 --mtbf-hours 6 [--resilience]
    repro-oa report    [--full] [--output report.md]
    repro-oa report    RUN_ID --db runs.db [--output run.html]  # HTML run report
    repro-oa report    sweep.ndjson                  # HTML sweep-journal report
    repro-oa bench     [--quick] [--update-baseline] # continuous benchmarks
    repro-oa info                     # benchmark cluster database
    repro-oa obs summary m.json       # digest a --metrics-out dump
    repro-oa obs trace t.json         # digest a --trace-out file

Campaign service (:mod:`repro.service`)::

    repro-oa serve   --db runs.db [--port 4321] [--workers 2]
    repro-oa submit  --kind campaign --param clusters=3 [--wait]
    repro-oa status  RUN_ID
    repro-oa result  RUN_ID
    repro-oa runs    [--state queued]
    repro-oa cancel  RUN_ID

Figure subcommands accept ``--csv PATH`` to dump the plotted series for
external plotting tools.  ``simulate``, ``campaign``, ``recover``, and
the figure sweeps accept ``--metrics-out PATH`` / ``--trace-out PATH``
to collect the run's metrics registry and span trace
(:mod:`repro.obs`); ``--trace-out`` writes Chrome Trace Event JSON, or
JSONL when the path ends in ``.jsonl``.  ``--log LEVEL`` (or the
``REPRO_LOG`` environment variable) turns on JSON structured logging.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__

__all__ = ["add_obs_flags", "build_parser", "finalize_obs", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-oa",
        description=(
            "Reproduction of 'Ocean-Atmosphere Modelization over the Grid' "
            "(Caniou et al., ICPP 2008)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--log", metavar="LEVEL", default=None,
        help=(
            "emit structured JSON logs at LEVEL (debug/info/warning/error); "
            "defaults to the REPRO_LOG environment variable"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="application model check (Figures 1-2)")

    sub.add_parser("fig3to6", help="schedule-shape phenomena with Gantt proofs (Figures 3-6)")

    sub.add_parser("fig9", help="protocol sequence diagram from a live run (Figure 9)")

    p7 = sub.add_parser("fig7", help="optimal grouping vs resources (Figure 7)")
    _add_sweep_args(p7, r_max=120, step=1)

    p8 = sub.add_parser("fig8", help="homogeneous-cluster gains (Figure 8)")
    _add_sweep_args(p8, r_max=120, step=1)
    p8.add_argument(
        "--workers", type=int, default=None,
        help="fan resource points out over N worker processes",
    )

    p10 = sub.add_parser("fig10", help="grid gains with repartition (Figure 10)")
    _add_sweep_args(p10, r_max=99, step=4)
    p10.add_argument(
        "--clusters",
        type=int,
        nargs="+",
        default=[2, 3, 4, 5],
        help="cluster counts to sweep (default: 2 3 4 5)",
    )

    psw = sub.add_parser(
        "sweep",
        help="batched parameter-grid sweep through the memoized kernels",
    )
    psw.add_argument(
        "--clusters", nargs="+", default=["sagittaire"], metavar="NAME",
        help="benchmark cluster names (default: sagittaire)",
    )
    psw.add_argument("--r-min", type=int, default=11)
    psw.add_argument("--r-max", type=int, default=120)
    psw.add_argument("--step", type=int, default=1)
    psw.add_argument(
        "--scenarios", type=int, nargs="+", default=[10],
        help="NS values to sweep (default: 10)",
    )
    psw.add_argument(
        "--months", type=int, nargs="+", default=[12],
        help="NM values to sweep (default: 12)",
    )
    psw.add_argument(
        "--heuristics", nargs="+", default=None,
        choices=["basic", "redistribute", "allpost_end", "knapsack"],
        help="heuristics to sweep (default: all four)",
    )
    psw.add_argument(
        "--workers", type=int, default=None,
        help="fan chunks out over N worker processes",
    )
    psw.add_argument(
        "--chunk-size", type=int, default=None,
        help="points per journaled chunk (default: 32)",
    )
    psw.add_argument(
        "--max-chunks", type=int, default=None,
        help="stop after N chunks (resume later from the journal)",
    )
    psw.add_argument(
        "--out", metavar="PATH", default=None,
        help="NDJSON journal: completed chunks append here and a rerun resumes",
    )
    psw.add_argument(
        "--no-resume", action="store_true",
        help="overwrite the journal instead of resuming from it",
    )
    psw.add_argument(
        "--no-cache", action="store_true",
        help="bypass the memoized makespan kernels (baseline timing)",
    )
    psw.add_argument(
        "--no-batch", action="store_true",
        help=(
            "force the scalar planning oracle instead of the vectorized "
            "batch kernels (auto-selected when no trace/metrics are needed)"
        ),
    )
    psw.add_argument(
        "--table", action="store_true",
        help="print every evaluated row, not just the summary",
    )
    add_obs_flags(psw)

    par = sub.add_parser(
        "arena",
        help="race registered schedulers across figure grids and fault traces",
    )
    par.add_argument(
        "--grids", nargs="+", default=["fig7"],
        choices=["fig7", "fig8", "fig10"],
        help="figure-shaped race presets (default: fig7)",
    )
    par.add_argument(
        "--schedulers", nargs="+", default=["all"], metavar="NAME",
        help="registered scheduler names, or 'all' (default: all)",
    )
    par.add_argument(
        "--faults", nargs="+", type=int, default=[], metavar="SEED",
        help="seeded fault-trace entries for the fault axis (default: none)",
    )
    par.add_argument(
        "--no-fault-free", action="store_true",
        help="drop the fault-free entry from the fault axis",
    )
    par.add_argument(
        "--seed", type=int, default=0,
        help="seed handed to stochastic schedulers (default: 0)",
    )
    par.add_argument("--r-min", type=int, default=None)
    par.add_argument("--r-max", type=int, default=None)
    par.add_argument("--step", type=int, default=None)
    par.add_argument("--scenarios", type=int, default=None)
    par.add_argument("--months", type=int, default=None)
    par.add_argument("--mtbf-hours", type=float, default=6.0)
    par.add_argument("--mttr-hours", type=float, default=1.0)
    par.add_argument(
        "--workers", type=int, default=None,
        help="fan chunks out over N worker processes",
    )
    par.add_argument(
        "--chunk-size", type=int, default=None,
        help="points per journaled chunk (default: 16)",
    )
    par.add_argument(
        "--max-chunks", type=int, default=None,
        help="stop after N chunks (resume later from the journal)",
    )
    par.add_argument(
        "--out", metavar="PATH", default=None,
        help=(
            "NDJSON journal: completed chunks append here and a rerun "
            "resumes (with several --grids, the preset name is suffixed)"
        ),
    )
    par.add_argument(
        "--no-resume", action="store_true",
        help="overwrite the journal instead of resuming from it",
    )
    par.add_argument(
        "--no-cache", action="store_true",
        help="bypass the memoized makespan kernels (baseline timing)",
    )
    par.add_argument(
        "--table", action="store_true",
        help="print every evaluated row, not just the standings",
    )
    add_obs_flags(par)

    sub.add_parser("ablations", help="design-decision ablation studies")

    ps = sub.add_parser("simulate", help="simulate one cluster schedule")
    ps.add_argument("--cluster", default="sagittaire", help="benchmark cluster name")
    ps.add_argument("--resources", type=int, default=53)
    ps.add_argument("--scenarios", type=int, default=10)
    ps.add_argument("--months", type=int, default=12)
    ps.add_argument(
        "--heuristic",
        default="knapsack",
        choices=["basic", "redistribute", "allpost_end", "knapsack"],
    )
    ps.add_argument("--gantt", action="store_true", help="render an ASCII Gantt chart")
    ps.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="export the schedule as Chrome/Perfetto trace-event JSON",
    )
    add_obs_flags(ps)

    pc = sub.add_parser("campaign", help="full middleware campaign on a grid")
    pc.add_argument("--clusters", type=int, default=3)
    pc.add_argument("--resources", type=int, default=40)
    pc.add_argument("--scenarios", type=int, default=10)
    pc.add_argument("--months", type=int, default=12)
    pc.add_argument(
        "--heuristic",
        default="knapsack",
        choices=["basic", "redistribute", "allpost_end", "knapsack"],
    )
    pc.add_argument("--show-messages", action="store_true")
    add_obs_flags(pc)

    pr = sub.add_parser("recover", help="campaign with a mid-flight cluster failure")
    pr.add_argument("--clusters", type=int, default=3)
    pr.add_argument("--resources", type=int, default=30)
    pr.add_argument("--scenarios", type=int, default=10)
    pr.add_argument("--months", type=int, default=24)
    pr.add_argument("--fail", default="chti", help="name of the failing cluster")
    pr.add_argument(
        "--at-hours", type=float, default=5.0,
        help="failure time, hours into the campaign",
    )
    pr.add_argument(
        "--heuristic",
        default="knapsack",
        choices=["basic", "redistribute", "allpost_end", "knapsack"],
    )
    add_obs_flags(pr)

    pf = sub.add_parser(
        "faults",
        help="campaign replanned through a seeded multi-failure trace",
    )
    pf.add_argument("--clusters", type=int, default=3)
    pf.add_argument("--resources", type=int, default=30)
    pf.add_argument("--scenarios", type=int, default=9)
    pf.add_argument("--months", type=int, default=24)
    pf.add_argument(
        "--heuristic",
        default="knapsack",
        choices=["basic", "redistribute", "allpost_end", "knapsack"],
    )
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument(
        "--mtbf-hours", type=float, default=6.0,
        help="mean time between failures per cluster (hours)",
    )
    pf.add_argument(
        "--mttr-hours", type=float, default=1.0,
        help="mean outage duration (hours)",
    )
    pf.add_argument(
        "--outages-only", action="store_true",
        help="no permanent crashes: every cluster eventually rejoins",
    )
    pf.add_argument(
        "--resilience", action="store_true",
        help=(
            "run the MTBF-sweep resilience study "
            "(experiments/resilience) instead of a single trace"
        ),
    )
    pf.add_argument(
        "--trials", type=int, default=3,
        help="traces averaged per MTBF point (with --resilience)",
    )
    add_obs_flags(pf)

    pg = sub.add_parser(
        "generic",
        help="schedule a generic moldable-chain workload (future-work extension)",
    )
    pg.add_argument(
        "--table", required=True,
        help="moldable timing table, e.g. '2:500,3:360,4:300' (procs:seconds)",
    )
    pg.add_argument("--post-seconds", type=float, default=60.0)
    pg.add_argument("--chains", type=int, default=4)
    pg.add_argument("--repeats", type=int, default=10)
    pg.add_argument("--resources", type=int, default=16)
    pg.add_argument(
        "--heuristic",
        default="all",
        choices=["all", "basic", "redistribute", "allpost_end", "knapsack"],
    )

    prep = sub.add_parser(
        "report",
        help=(
            "reproduction report (Markdown), or a self-contained HTML "
            "run/sweep report when given a run id or journal path"
        ),
    )
    prep.add_argument(
        "target", nargs="?", default=None,
        help=(
            "a service run id (with --db) or a sweep-journal path; "
            "omitted = the one-shot Markdown reproduction report"
        ),
    )
    prep.add_argument(
        "--full", action="store_true",
        help="EXPERIMENTS.md resolution (minutes) instead of quick (seconds)",
    )
    prep.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the report to a file instead of stdout",
    )
    prep.add_argument(
        "--db", metavar="PATH", default="runs.db",
        help="run-store path backing a run-id target (default: runs.db)",
    )
    prep.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="--metrics-out dump to fold into the run report (cache hit rates)",
    )
    prep.add_argument(
        "--trace", metavar="PATH", default=None,
        help=(
            "Chrome trace file to fold into the run report "
            "(spans filtered to the run's trace id)"
        ),
    )

    pb = sub.add_parser(
        "bench",
        help=(
            "continuous benchmarks: BENCH_*.json artifacts gated against "
            "benchmarks/baseline.json (exit 2 on regression)"
        ),
    )
    pb.add_argument(
        "names", nargs="*", metavar="NAME",
        help="benchmarks to run (default: the whole quick tier)",
    )
    pb.add_argument(
        "--list", action="store_true", dest="list_specs",
        help="list registered benchmarks and exit",
    )
    pb.add_argument(
        "--quick", action="store_true",
        help="one repetition, no warmup (CI smoke; noisy numbers)",
    )
    pb.add_argument(
        "--out", metavar="DIR", default="bench_artifacts",
        help="directory for BENCH_<name>.json artifacts",
    )
    pb.add_argument(
        "--baseline", metavar="PATH", default="benchmarks/baseline.json",
        help="baseline to compare against (missing = comparison skipped)",
    )
    pb.add_argument(
        "--max-regression", type=float, default=None, metavar="PCT",
        help=(
            "adverse-drift budget in percent; default: the budget "
            "recorded in the baseline file"
        ),
    )
    pb.add_argument(
        "--repetitions", type=int, default=None,
        help="override every spec's repetition count",
    )
    pb.add_argument(
        "--warmup", type=int, default=None,
        help="override every spec's warmup count",
    )
    pb.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from this run's medians",
    )
    pb.add_argument(
        "--inject-slowdown", type=float, default=None, metavar="FACTOR",
        help=(
            "adversely scale every result by FACTOR before comparing "
            "(self-test: proves the regression gate fires)"
        ),
    )

    sub.add_parser("info", help="show the benchmark cluster database")

    plint = sub.add_parser(
        "lint",
        help="run reprolint, the determinism & invariant checker",
    )
    from repro.lintkit.cli import add_lint_arguments

    add_lint_arguments(plint)

    psrv = sub.add_parser(
        "serve", help="run the persistent campaign service (repro.service)"
    )
    psrv.add_argument(
        "--db", metavar="PATH", default="runs.db",
        help="SQLite run store path (created if missing; default: runs.db)",
    )
    psrv.add_argument(
        "--store", metavar="URL", default=None,
        help=(
            "storage backend URL (overrides --db): a sqlite path, "
            "sqlite:PATH, postgres://DSN, or memory://"
        ),
    )
    psrv.add_argument(
        "--reap-interval", type=float, default=1.0, metavar="SECONDS",
        help=(
            "lease reaper period for worker-fleet deployments "
            "(0 disables; default: 1.0)"
        ),
    )
    psrv.add_argument("--host", default="127.0.0.1")
    psrv.add_argument("--port", type=int, default=4321)
    psrv.add_argument(
        "--workers", type=int, default=2,
        help="worker processes (concurrent jobs)",
    )
    psrv.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget (default: unlimited)",
    )
    psrv.add_argument(
        "--max-attempts", type=int, default=3,
        help="executions per run before it lands in 'failed'",
    )
    psrv.add_argument(
        "--chaos-rate", type=float, default=0.0, metavar="P",
        help=(
            "arm chaos testing: probability per job execution of an "
            "injected failure, split evenly over crash/timeout/error "
            "(default: 0 = off)"
        ),
    )
    psrv.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the deterministic chaos decision stream",
    )
    add_obs_flags(psrv)

    pwrk = sub.add_parser(
        "worker",
        help="run one fleet worker against a shared run store",
    )
    pwrk.add_argument(
        "--store", metavar="URL", default="runs.db",
        help=(
            "shared run store: a sqlite path, sqlite:PATH, "
            "postgres://DSN, or memory:// (default: runs.db)"
        ),
    )
    pwrk.add_argument(
        "--owner", default=None, metavar="ID",
        help="worker identity (default: worker-<pid>-<random>)",
    )
    pwrk.add_argument(
        "--lease-seconds", type=float, default=15.0,
        help="lease duration stamped on each claim (default: 15)",
    )
    pwrk.add_argument(
        "--heartbeat-interval", type=float, default=5.0,
        help="lease renewal period; must be < lease/2 (default: 5)",
    )
    pwrk.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after N executed jobs (default: run until stopped)",
    )
    pwrk.add_argument(
        "--poll-seed", type=int, default=None,
        help="seed for the idle-poll jitter stream",
    )
    pwrk.add_argument(
        "--fleet-chaos-rate", type=float, default=0.0, metavar="P",
        help=(
            "arm fleet chaos: probability per claimed job of an injected "
            "worker failure, split over kill/kill-heartbeat/partition "
            "(default: 0 = off)"
        ),
    )
    pwrk.add_argument(
        "--fleet-chaos-seed", type=int, default=0,
        help="seed for the deterministic fleet-chaos decision stream",
    )
    add_obs_flags(pwrk)

    phl = sub.add_parser(
        "health",
        help="probe a running service; exit 0 when healthy, 1 otherwise",
    )
    _add_service_endpoint(phl)

    psub = sub.add_parser("submit", help="queue a job on a running service")
    _add_service_endpoint(psub, timeout=False)
    psub.add_argument(
        "--kind", required=True,
        help=(
            "job kind (campaign, simulate, fig7, fig8, fig9, fig10, sweep, arena, "
            "sleep)"
        ),
    )
    psub.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="job parameter; VALUE is parsed as JSON, falling back to text",
    )
    psub.add_argument(
        "--max-attempts", type=int, default=None,
        help="override the server's retry budget for this run",
    )
    psub.add_argument(
        "--wait", action="store_true",
        help="poll until the run reaches a terminal state",
    )
    psub.add_argument(
        "--timeout", type=float, default=600.0,
        help=(
            "--wait polling budget in seconds (also the per-request "
            "network timeout)"
        ),
    )

    pst = sub.add_parser("status", help="show one run's state and attempts")
    _add_service_endpoint(pst)
    pst.add_argument("run_id", help="run id returned by submit")

    pres = sub.add_parser("result", help="fetch a finished run's result")
    _add_service_endpoint(pres)
    pres.add_argument("run_id", help="run id returned by submit")

    pruns = sub.add_parser("runs", help="list runs known to the service")
    _add_service_endpoint(pruns)
    pruns.add_argument(
        "--state", default=None,
        choices=["queued", "running", "done", "failed", "cancelled"],
    )
    pruns.add_argument("--limit", type=int, default=20)

    pcan = sub.add_parser("cancel", help="cancel a queued run")
    _add_service_endpoint(pcan)
    pcan.add_argument("run_id", help="run id returned by submit")

    po = sub.add_parser("obs", help="observability utilities")
    obs_sub = po.add_subparsers(dest="obs_command", required=True)
    pos = obs_sub.add_parser(
        "summary", help="summarize a --metrics-out JSON dump"
    )
    pos.add_argument("path", help="metrics dump written by --metrics-out")
    pos.add_argument(
        "--prometheus", action="store_true",
        help="render Prometheus text exposition instead of tables",
    )
    pot = obs_sub.add_parser(
        "trace", help="summarize a --trace-out trace file (JSON or JSONL)"
    )
    pot.add_argument("path", help="trace file written by --trace-out")
    return parser


def add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--metrics-out``/``--trace-out`` flags.

    Every long-running subcommand (simulate, campaign, recover, the
    figure sweeps, and the campaign service) takes the same two
    observability outputs; pair with :func:`finalize_obs` to write
    them after the run.
    """
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the run's metrics registry as JSON",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help=(
            "write the run's span trace: Chrome trace-event JSON, or JSONL "
            "when PATH ends in .jsonl"
        ),
    )


def _add_service_endpoint(
    parser: argparse.ArgumentParser, *, timeout: bool = True
) -> None:
    """The shared client-side service address flags.

    ``timeout=False`` skips the shared ``--timeout`` flag for verbs
    that define their own (``submit``, whose ``--timeout`` is both the
    network and the ``--wait`` budget).
    """
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=4321)
    if timeout:
        parser.add_argument(
            "--timeout", type=float, default=30.0, metavar="SECONDS",
            help="connect/read timeout for the service request",
        )


def _add_sweep_args(
    parser: argparse.ArgumentParser, *, r_max: int, step: int
) -> None:
    add_obs_flags(parser)
    parser.add_argument("--scenarios", type=int, default=10)
    parser.add_argument("--months", type=int, default=60)
    parser.add_argument("--r-min", type=int, default=11)
    parser.add_argument("--r-max", type=int, default=r_max)
    parser.add_argument("--step", type=int, default=step)
    parser.add_argument("--no-plot", action="store_true", help="table output only")
    parser.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the plotted series to a CSV file",
    )
    parser.add_argument(
        "--svg", metavar="PATH", default=None,
        help="also render the figure to a standalone SVG file",
    )


def _cmd_fig1(_args: argparse.Namespace) -> str:
    from repro.experiments import fig1_model

    return fig1_model.render(fig1_model.run())


def _write_csv(path: str, x_label, xs, series) -> None:
    from repro.analysis.plotting import series_to_csv

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(series_to_csv(x_label, xs, series) + "\n")


def _write_svg(path: str, xs, series, *, title, x_label, y_label) -> None:
    from repro.analysis.svg import svg_line_chart

    svg = svg_line_chart(
        xs, series, title=title, x_label=x_label, y_label=y_label
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg + "\n")


def _wants_obs(args: argparse.Namespace) -> bool:
    """Whether the parsed command asked for any observability output."""
    return bool(
        getattr(args, "metrics_out", None) or getattr(args, "trace_out", None)
    )


def _obs_scope(args: argparse.Namespace):
    """An enabled observability session, or a no-op context manager."""
    from contextlib import nullcontext

    from repro import obs

    return obs.session() if _wants_obs(args) else nullcontext()


def finalize_obs(args: argparse.Namespace, records=()) -> list[str]:
    """Write the requested metrics/trace files; return status lines.

    ``records`` are simulated :class:`~repro.simulation.events.TaskRecord`
    entries to project into the trace — one span per scheduled task,
    on the simulated-schedule timeline (1 s -> 1 us, tid = first
    processor of the task's range).
    """
    from repro import obs

    parts: list[str] = []
    if getattr(args, "trace_out", None):
        tracer = obs.tracer()
        for r in records:
            tracer.add_complete_span(
                f"{r.kind}(s{r.scenario},m{r.month})",
                ts=r.start,
                dur=r.duration,
                tid=r.procs_start,
                kind=r.kind,
                scenario=r.scenario,
                month=r.month,
                group=r.group,
            )
        text = (
            tracer.to_jsonl()
            if args.trace_out.endswith(".jsonl")
            else tracer.to_chrome_json()
        )
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        parts.append(
            f"span trace written to {args.trace_out} "
            f"({len(tracer.spans)} spans; open JSON in Perfetto)"
        )
    if getattr(args, "metrics_out", None):
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(obs.registry().to_json() + "\n")
        parts.append(f"metrics written to {args.metrics_out}")
    return parts


def _cmd_fig3to6(_args: argparse.Namespace) -> str:
    from repro.experiments import fig3to6

    return fig3to6.render(fig3to6.run())


def _cmd_fig9(_args: argparse.Namespace) -> str:
    from repro.experiments import fig9_protocol

    return fig9_protocol.render(fig9_protocol.run())


def _run_figure(args: argparse.Namespace, name: str, runner):
    """Run one figure driver, optionally inside an observability session."""
    import time

    from repro import obs

    with _obs_scope(args):
        with obs.span(f"figure.{name}"):
            started = time.perf_counter()
            result = runner()
            obs.observe(
                "figure.seconds", time.perf_counter() - started, figure=name
            )
        extra = finalize_obs(args)
    return result, extra


def _cmd_fig7(args: argparse.Namespace) -> str:
    from repro.experiments import fig7

    result, extra = _run_figure(
        args,
        "fig7",
        lambda: fig7.run(
            scenarios=args.scenarios,
            months=args.months,
            r_min=args.r_min,
            r_max=args.r_max,
            step=args.step,
        ),
    )
    if args.csv:
        _write_csv(
            args.csv,
            "R",
            [float(r) for r in result.resources],
            {"G_star": [float(g) for g in result.best_group]},
        )
    if args.svg:
        _write_svg(
            args.svg,
            [float(r) for r in result.resources],
            {"best grouping G*": [float(g) for g in result.best_group]},
            title=f"Figure 7: optimal groupings for {args.scenarios} scenarios",
            x_label="resources (processors)",
            y_label="best grouping",
        )
    return "\n\n".join([fig7.render(result, plot=not args.no_plot), *extra])


def _cmd_fig8(args: argparse.Namespace) -> str:
    from repro.experiments import fig8

    result, extra = _run_figure(
        args,
        "fig8",
        lambda: fig8.run(
            scenarios=args.scenarios,
            months=args.months,
            r_min=args.r_min,
            r_max=args.r_max,
            step=args.step,
            workers=args.workers,
        ),
    )
    if args.csv:
        series: dict[str, list[float]] = {}
        for name, per_point in result.stats.items():
            series[f"{name}_mean"] = [s.mean for s in per_point]
            series[f"{name}_std"] = [s.std for s in per_point]
        _write_csv(
            args.csv, "R", [float(r) for r in result.resources], series
        )
    if args.svg:
        _write_svg(
            args.svg,
            [float(r) for r in result.resources],
            {name: [s.mean for s in pts] for name, pts in result.stats.items()},
            title="Figure 8: mean gains over the basic heuristic",
            x_label="resources (processors)",
            y_label="gain (%)",
        )
    return "\n\n".join([fig8.render(result, plot=not args.no_plot), *extra])


def _cmd_fig10(args: argparse.Namespace) -> str:
    from repro.experiments import fig10

    result, extra = _run_figure(
        args,
        "fig10",
        lambda: fig10.run(
            scenarios=args.scenarios,
            months=args.months,
            cluster_counts=tuple(args.clusters),
            r_min=args.r_min,
            r_max=args.r_max,
            step=args.step,
        ),
    )
    if args.csv:
        _write_csv(
            args.csv,
            "n_plus_R_over_100",
            list(result.x_axis),
            {name: list(values) for name, values in result.gains.items()},
        )
    if args.svg:
        _write_svg(
            args.svg,
            list(result.x_axis),
            {name: list(values) for name, values in result.gains.items()},
            title="Figure 10: grid gains with DAG repartition",
            x_label="clusters + resources/100",
            y_label="gain (%)",
        )
    return "\n\n".join([fig10.render(result, plot=not args.no_plot), *extra])


def _cmd_sweep(args: argparse.Namespace) -> str:
    from repro.analysis.tables import format_table
    from repro.core.makespan import makespan_cache_stats
    from repro.experiments.sweep import SweepGrid, run_sweep

    from repro import obs

    grid = SweepGrid.from_ranges(
        clusters=tuple(args.clusters),
        r_min=args.r_min,
        r_max=args.r_max,
        step=args.step,
        scenarios=tuple(args.scenarios),
        months=tuple(args.months),
        heuristics=tuple(args.heuristics) if args.heuristics else None,
    )
    with _obs_scope(args):
        with obs.span("sweep.cli", points=grid.size):
            result = run_sweep(
                grid,
                workers=args.workers,
                chunk_size=args.chunk_size,
                journal_path=args.out,
                resume=not args.no_resume,
                max_chunks=args.max_chunks,
                use_cache=not args.no_cache,
                batch=False if args.no_batch else None,
            )
        extra = finalize_obs(args)

    summary = result.summary()
    parts = [
        f"sweep over {summary['points']} points "
        f"({len(grid.clusters)} clusters x {len(grid.resources)} resource "
        f"counts x {len(grid.scenarios)} NS x {len(grid.months)} NM x "
        f"{len(grid.heuristics)} heuristics): "
        f"{summary['evaluated']} evaluated, "
        f"{summary['infeasible']} infeasible"
        + ("" if result.complete else " — partial; rerun to continue"),
        "wins by heuristic: "
        + ", ".join(f"{h}={n}" for h, n in summary["wins"].items()),
    ]
    if args.table:
        parts.append(
            format_table(
                ["cluster", "R", "NS", "NM", "heuristic", "makespan (s)", "grouping"],
                [
                    [
                        row.point.cluster,
                        row.point.resources,
                        row.point.scenarios,
                        row.point.months,
                        row.point.heuristic,
                        "-" if row.makespan is None else f"{row.makespan:.1f}",
                        row.grouping,
                    ]
                    for row in result.rows
                ],
            )
        )
    if not args.no_cache and (args.workers or 0) <= 1:
        stats = makespan_cache_stats()
        parts.append(
            "kernel cache: "
            + "; ".join(
                f"{kind} {c['hits']} hits / {c['misses']} misses "
                f"({c['size']} entries)"
                for kind, c in stats.items()
            )
        )
    if args.out:
        parts.append(f"journal: {args.out} (rerun with the same grid to resume)")
    return "\n\n".join(parts + extra)


def _arena_journal_path(out: str | None, preset: str, many: bool) -> str | None:
    """The per-preset journal path: suffixed only for multi-grid runs."""
    if out is None or not many:
        return out
    from pathlib import Path

    path = Path(out)
    return str(path.with_name(f"{path.stem}-{preset}{path.suffix}"))


def _cmd_arena(args: argparse.Namespace) -> str:
    from repro.schedulers import ArenaGrid, list_schedulers, run_arena

    from repro import obs

    registered = list_schedulers()
    if args.schedulers == ["all"]:
        schedulers = registered
    else:
        unknown = [s for s in args.schedulers if s not in registered]
        if unknown:
            raise SystemExit(
                f"unknown schedulers {unknown}; registered: {sorted(registered)}"
            )
        schedulers = tuple(args.schedulers)

    parts: list[str] = []
    extra: list[str] = []
    many = len(args.grids) > 1
    with _obs_scope(args):
        for preset in args.grids:
            grid = ArenaGrid.from_preset(
                preset,
                schedulers=schedulers,
                fault_seeds=tuple(args.faults),
                include_fault_free=not args.no_fault_free,
                seed=args.seed,
                r_min=args.r_min,
                r_max=args.r_max,
                step=args.step,
                scenarios=args.scenarios,
                months=args.months,
                mtbf_hours=args.mtbf_hours,
                mttr_hours=args.mttr_hours,
            )
            journal = _arena_journal_path(args.out, preset, many)
            latencies: dict[str, list[float]] = {}
            with obs.span("arena.cli", preset=preset, points=grid.size):
                result = run_arena(
                    grid,
                    workers=args.workers,
                    chunk_size=args.chunk_size,
                    journal_path=journal,
                    resume=not args.no_resume,
                    max_chunks=args.max_chunks,
                    use_cache=not args.no_cache,
                    latency_sink=latencies,
                )
            parts.extend(
                _render_arena(preset, result, latencies, table=args.table)
            )
            if journal:
                parts.append(
                    f"journal: {journal} (rerun with the same race to resume)"
                )
        extra = finalize_obs(args)
    return "\n\n".join(parts + extra)


def _render_arena(preset, result, latencies, *, table=False) -> list[str]:
    """Human-readable standings, win matrix, and (optionally) all rows."""
    from repro.analysis.tables import format_table

    grid = result.grid
    summary = result.summary()
    mean_gain = summary["mean_gain_over_basic"]
    parts = [
        f"arena[{preset}] over {summary['points']} points "
        f"({len(grid.clusters)} clusters x {len(grid.resources)} resource "
        f"counts x {len(grid.faults)} fault traces x "
        f"{len(grid.schedulers)} schedulers): "
        f"{summary['evaluated']} evaluated, "
        f"{summary['feasible']} feasible, {summary['crashed']} crashed"
        + ("" if result.complete else " — partial; rerun to continue")
    ]
    standings = []
    for name in grid.schedulers:
        timed = latencies.get(name, [])
        standings.append([
            name,
            summary["wins"].get(name, 0),
            "baseline" if name == "basic" else (
                f"{mean_gain[name]:+.2f}" if name in mean_gain else "-"
            ),
            f"{1e3 * sum(timed) / len(timed):.2f}" if timed else "-",
        ])
    parts.append(format_table(
        ["scheduler", "wins", "gain vs basic (%)", "decide (ms)"], standings
    ))
    matrix = summary["win_matrix"]
    parts.append(
        "win matrix (row beats column):\n"
        + format_table(
            ["beats ->", *grid.schedulers],
            [
                [a, *[
                    "-" if a == b else matrix[a].get(b, 0)
                    for b in grid.schedulers
                ]]
                for a in grid.schedulers
            ],
        )
    )
    if table:
        parts.append(format_table(
            ["cluster", "R", "NS", "NM", "fault", "scheduler",
             "makespan (s)", "done", "grouping"],
            [
                [
                    row.point.cluster, row.point.resources,
                    row.point.scenarios, row.point.months,
                    row.point.fault, row.point.scheduler,
                    "-" if row.makespan is None else f"{row.makespan:.1f}",
                    "yes" if row.completed else "CRASHED",
                    row.grouping,
                ]
                for row in result.rows
            ],
        ))
    return parts


def _cmd_ablations(_args: argparse.Namespace) -> str:
    import contextlib
    import io

    from repro.experiments import ablations

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        ablations.main()
    return buffer.getvalue().rstrip()


def _cmd_simulate(args: argparse.Namespace) -> str:
    from repro.experiments.runner import run_cluster_simulation
    from repro.simulation.trace import render_gantt, trace_summary
    from repro.workflow.ocean_atmosphere import EnsembleSpec

    from repro import obs

    with _obs_scope(args):
        with obs.span(
            "simulate", cluster=args.cluster, resources=args.resources
        ):
            result = run_cluster_simulation(
                args.cluster,
                args.resources,
                EnsembleSpec(args.scenarios, args.months),
                args.heuristic,
                record_trace=True,
            )
        parts = [trace_summary(result)]
        if args.gantt:
            parts.append(render_gantt(result))
        if args.trace_json:
            from repro.simulation.export import to_chrome_trace

            with open(args.trace_json, "w", encoding="utf-8") as handle:
                handle.write(to_chrome_trace(result) + "\n")
            parts.append(
                f"trace written to {args.trace_json} (open in Perfetto)"
            )
        parts.extend(finalize_obs(args, result.records))
    return "\n\n".join(parts)


def _cmd_campaign(args: argparse.Namespace) -> str:
    from repro.middleware.deployment import run_campaign
    from repro.platform.benchmarks import benchmark_grid

    with _obs_scope(args):
        grid = benchmark_grid(args.clusters, args.resources)
        result = run_campaign(
            grid, args.scenarios, args.months, args.heuristic
        )
        parts = [result.describe()]
        if args.show_messages:
            # Message log is on the network; re-run with an inspectable
            # deployment.
            from repro.middleware.deployment import deploy

            client, agent, _seds = deploy(grid)
            client.run_campaign(args.scenarios, args.months, args.heuristic)
            parts.append(agent.network.describe())
        parts.extend(finalize_obs(args))
    return "\n\n".join(parts)


def _cmd_recover(args: argparse.Namespace) -> str:
    from repro.middleware.recovery import (
        ClusterFailure,
        run_campaign_with_failure,
    )
    from repro.platform.benchmarks import benchmark_grid

    from repro import obs

    with _obs_scope(args):
        with obs.span("recover", fail=args.fail, at_hours=args.at_hours):
            grid = benchmark_grid(args.clusters, args.resources)
            plan = run_campaign_with_failure(
                grid,
                args.scenarios,
                args.months,
                ClusterFailure(args.fail, args.at_hours * 3600.0),
                heuristic=args.heuristic,
            )
        parts = [plan.describe()]
        parts.extend(finalize_obs(args))
    return "\n\n".join(parts)


def _cmd_faults(args: argparse.Namespace) -> str:
    from repro import obs
    from repro.faults.trace import FaultProfile, FaultTrace, generate_trace
    from repro.middleware.recovery import run_campaign_with_faults
    from repro.platform.benchmarks import benchmark_grid

    with _obs_scope(args):
        parts: list[str]
        if args.resilience:
            from repro.experiments import resilience

            result = resilience.run(
                scenarios=args.scenarios,
                months=args.months,
                clusters=args.clusters,
                resources=args.resources,
                mttr_hours=args.mttr_hours,
                trials=args.trials,
                seed=args.seed,
            )
            parts = [resilience.render(result)]
        else:
            with obs.span(
                "faults", seed=args.seed, mtbf_hours=args.mtbf_hours
            ):
                grid = benchmark_grid(args.clusters, args.resources)
                baseline = run_campaign_with_faults(
                    grid,
                    args.scenarios,
                    args.months,
                    FaultTrace(),
                    heuristic=args.heuristic,
                )
                if args.outages_only:
                    profile = FaultProfile.outages_only(
                        args.mtbf_hours * 3600.0, args.mttr_hours * 3600.0
                    )
                else:
                    profile = FaultProfile(
                        mtbf_seconds=args.mtbf_hours * 3600.0,
                        mttr_seconds=args.mttr_hours * 3600.0,
                    )
                trace = generate_trace(
                    {name: profile for name in grid.names},
                    baseline.makespan,
                    args.seed,
                )
                report = run_campaign_with_faults(
                    grid,
                    args.scenarios,
                    args.months,
                    trace,
                    heuristic=args.heuristic,
                )
            parts = [report.describe()]
        parts.extend(finalize_obs(args))
    return "\n\n".join(parts)


def _parse_table(text: str) -> dict[int, float]:
    """Parse '2:500,3:360' into a {procs: seconds} mapping."""
    from repro.exceptions import ConfigurationError

    table: dict[int, float] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            procs_text, seconds_text = chunk.split(":")
            table[int(procs_text)] = float(seconds_text)
        except ValueError:
            raise ConfigurationError(
                f"malformed table entry {chunk!r}; expected 'procs:seconds'"
            ) from None
    if not table:
        raise ConfigurationError("empty timing table")
    return table


def _cmd_generic(args: argparse.Namespace) -> str:
    from repro.analysis.tables import format_table
    from repro.core.generic import GenericChainProblem, generic_simulate
    from repro.core.heuristics import HeuristicName

    problem = GenericChainProblem(
        chains=args.chains,
        repeats=args.repeats,
        moldable_table=_parse_table(args.table),
        post_seconds=args.post_seconds,
        resources=args.resources,
    )
    heuristics = (
        list(HeuristicName)
        if args.heuristic == "all"
        else [HeuristicName(args.heuristic)]
    )
    rows = []
    for heuristic in heuristics:
        result = generic_simulate(problem, heuristic)
        rows.append(
            [
                heuristic.value,
                result.grouping.describe(),
                f"{result.makespan:.1f}",
            ]
        )
    header = (
        f"generic workload: {args.chains} chains x {args.repeats} repeats "
        f"on {args.resources} processors\n"
    )
    return header + format_table(["heuristic", "grouping", "makespan (s)"], rows)


def _cmd_report(args: argparse.Namespace) -> str:
    if args.target is not None:
        import os

        if os.path.exists(args.target):
            from repro.analysis.runreport import report_for_journal

            report = report_for_journal(args.target)
        else:
            from repro.analysis.runreport import report_for_run

            report = report_for_run(
                args.db,
                args.target,
                metrics_path=args.metrics,
                trace_path=args.trace,
            )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report)
            return f"run report written to {args.output}"
        return report
    from repro.analysis.report import ReportConfig, generate_report

    config = ReportConfig.full() if args.full else ReportConfig.quick()
    report = generate_report(config)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        return f"report written to {args.output}"
    return report


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.obs.bench import (
        baseline_from_results,
        bench_specs,
        compare_to_baseline,
        inject_slowdown,
        load_baseline,
        render_comparison,
        run_bench,
        write_bench_artifact,
    )

    specs = bench_specs()
    if args.list_specs:
        for spec in specs:
            print(f"{spec.name:10s} [{spec.unit:>12s}]  {spec.description}")
        return 0
    if args.names:
        by_name = {spec.name: spec for spec in specs}
        unknown = [name for name in args.names if name not in by_name]
        if unknown:
            print(
                f"unknown benchmark(s) {unknown}; "
                f"known: {sorted(by_name)}",
                file=sys.stderr,
            )
            return 1
        specs = tuple(by_name[name] for name in args.names)
    repetitions = 1 if args.quick else args.repetitions
    warmup = 0 if args.quick else args.warmup

    results = []
    for spec in specs:
        result = run_bench(spec, repetitions=repetitions, warmup=warmup)
        if args.inject_slowdown is not None:
            result = inject_slowdown(result, args.inject_slowdown)
        path = write_bench_artifact(result, args.out)
        print(
            f"{result.name:10s} {result.value:12.4g} {result.unit:>12s}  "
            f"(IQR {result.iqr:.3g}, n={result.repetitions}) -> {path}"
        )
        results.append(result)

    if args.update_baseline:
        import json as _json

        doc = baseline_from_results(results)
        os.makedirs(
            os.path.dirname(args.baseline) or ".", exist_ok=True
        )
        with open(args.baseline, "w", encoding="utf-8") as handle:
            handle.write(_json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0
    if not os.path.exists(args.baseline):
        print(
            f"no baseline at {args.baseline}; comparison skipped "
            f"(run with --update-baseline to create one)"
        )
        return 0
    rows = compare_to_baseline(
        results,
        load_baseline(args.baseline),
        max_regression_pct=args.max_regression,
    )
    print(render_comparison(rows))
    if any(row.regressed for row in rows):
        print("benchmark regression detected", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio

    from repro.service.queue import QueueConfig
    from repro.service.server import CampaignServer

    config = QueueConfig(
        max_workers=args.workers,
        job_timeout=args.job_timeout,
        max_attempts=args.max_attempts,
    )
    chaos = None
    if args.chaos_rate > 0:
        from repro.faults.chaos import ChaosConfig

        chaos = ChaosConfig.storm(seed=args.chaos_seed, rate=args.chaos_rate)
    store_url = args.store if args.store is not None else args.db
    reap_interval = args.reap_interval if args.reap_interval > 0 else None
    server = CampaignServer(
        store_url, host=args.host, port=args.port, queue_config=config,
        chaos=chaos, reap_interval=reap_interval,
    )

    async def _run() -> None:
        port = await server.start()
        print(
            f"campaign service listening on {args.host}:{port} "
            f"(store={store_url}, workers={config.max_workers}) — "
            f"Ctrl-C drains and stops",
            flush=True,
        )
        await server.serve_forever()

    with _obs_scope(args):
        asyncio.run(_run())
        extra = finalize_obs(args)
    return "\n".join(
        ["campaign service stopped (queued runs persist in the store)", *extra]
    )


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service.fleet import FleetWorker, WorkerConfig, WorkerKilled
    from repro.service.store import RunStore

    chaos = None
    if args.fleet_chaos_rate > 0:
        from repro.faults.chaos import FleetChaosConfig

        chaos = FleetChaosConfig.storm(
            seed=args.fleet_chaos_seed, rate=args.fleet_chaos_rate
        )
    config = WorkerConfig(
        lease_seconds=args.lease_seconds,
        heartbeat_interval=args.heartbeat_interval,
        max_jobs=args.max_jobs,
        poll_seed=args.poll_seed,
    )
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, lambda *_: stop.set())
        except ValueError:  # pragma: no cover - non-main thread
            pass
    with _obs_scope(args), RunStore(args.store) as store:
        worker = FleetWorker(
            store, config, owner_id=args.owner, chaos=chaos
        )
        print(
            f"fleet worker {worker.owner_id} polling {args.store} "
            f"(lease={config.lease_seconds}s, "
            f"heartbeat={config.heartbeat_interval}s) — Ctrl-C stops",
            flush=True,
        )
        try:
            stats = worker.run_forever(stop)
        except WorkerKilled as exc:
            # Chaos killed this worker: leave like a real SIGKILL would
            # (the claimed run stays leased; the reaper recovers it).
            print(f"worker killed by chaos: {exc}", file=sys.stderr)
            return 1
        extra = finalize_obs(args)
    summary = ", ".join(f"{key}={stats[key]}" for key in sorted(stats))
    print("\n".join([f"worker {worker.owner_id} stopped: {summary}", *extra]))
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.exceptions import ServiceError
    from repro.service.client import ServiceClient

    try:
        with ServiceClient(
            args.host, args.port, timeout=args.timeout, connect_retries=0
        ) as client:
            health = client.health()
    except (ServiceError, OSError) as exc:
        print(
            f"unhealthy: {args.host}:{args.port}: {exc}", file=sys.stderr
        )
        return 1
    fleet = health.get("fleet", {})
    print(
        f"healthy: version={health['version']} "
        f"uptime={health['uptime_seconds']:.0f}s "
        f"queue_depth={health['queue_depth']} "
        f"workers={health['workers']} "
        f"fleet_workers={fleet.get('live_workers', 0)} "
        f"leased={fleet.get('leased_jobs', 0)}"
    )
    return 0


def _parse_job_params(pairs: list[str]) -> dict:
    """Parse repeated ``--param KEY=VALUE`` flags (VALUE as JSON or text)."""
    import json

    from repro.exceptions import ConfigurationError

    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"malformed --param {pair!r}; expected KEY=VALUE"
            )
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _describe_run(status: dict) -> str:
    """One run summary, formatted for terminal output."""
    lines = [
        f"run {status['run_id']}: kind={status['kind']} "
        f"state={status['state']} "
        f"attempts={status['attempts']}/{status['max_attempts']}",
    ]
    if status.get("error"):
        lines.append(f"  error: {status['error']}")
    return "\n".join(lines)


def _cmd_submit(args: argparse.Namespace) -> str:
    from repro.service.client import ServiceClient

    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        run_id = client.submit(
            args.kind,
            _parse_job_params(args.param),
            max_attempts=args.max_attempts,
        )
        # The run id must stay the last token of the submit line —
        # scripts (and the CLI tests) parse it from there.
        trace = client.last_trace
        traced = f" (trace {trace.trace_id})" if trace is not None else ""
        parts = [f"submitted {args.kind}{traced} as run {run_id}"]
        if args.wait:
            status = client.wait(run_id, timeout=args.timeout)
            parts.append(_describe_run(status))
    return "\n".join(parts)


def _cmd_status(args: argparse.Namespace) -> str:
    from repro.service.client import ServiceClient

    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        return _describe_run(client.status(args.run_id))


def _cmd_result(args: argparse.Namespace) -> str:
    import json

    from repro.service.client import ServiceClient

    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        payload = client.result(args.run_id)
    return json.dumps(payload["result"], indent=2)


def _cmd_runs(args: argparse.Namespace) -> str:
    from repro.analysis.tables import format_table
    from repro.service.client import ServiceClient

    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        runs = client.runs(args.state, limit=args.limit)
        health = client.health()
    if not runs:
        header = "no matching runs"
    else:
        header = format_table(
            ["run", "kind", "state", "attempts", "error"],
            [
                [
                    r["run_id"],
                    r["kind"],
                    r["state"],
                    f"{r['attempts']}/{r['max_attempts']}",
                    (r["error"] or "")[:40],
                ]
                for r in runs
            ],
        )
    jobs = health["jobs"]
    counts = ", ".join(f"{state}={jobs[state]}" for state in jobs)
    return f"{header}\n\nserver: {counts}"


def _cmd_cancel(args: argparse.Namespace) -> str:
    from repro.service.client import ServiceClient

    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        status = client.cancel(args.run_id)
    return _describe_run(status)


def _cmd_obs(args: argparse.Namespace) -> str:
    import json

    from repro import obs
    from repro.exceptions import ConfigurationError

    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigurationError(f"cannot read {args.path!r}: {exc}") from None
    if args.obs_command == "summary":
        try:
            dump = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{args.path!r} is not a JSON metrics dump: {exc}"
            ) from None
        if args.prometheus:
            return obs.prometheus_from_dump(dump).rstrip("\n")
        return obs.render_metrics_summary(dump)
    return obs.render_trace_summary(obs.load_trace_events(text))


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint; prints its own report and returns the exit code."""
    from repro.exceptions import ConfigurationError
    from repro.lintkit.cli import run_lint

    try:
        return run_lint(args)
    except ConfigurationError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2


def _cmd_info(_args: argparse.Namespace) -> str:
    from repro.analysis.tables import format_table
    from repro.platform.benchmarks import (
        REFERENCE_CLUSTER_SPEEDS,
        benchmark_timing,
    )

    rows = []
    for name in REFERENCE_CLUSTER_SPEEDS:
        timing = benchmark_timing(name)
        table = timing.main_time_table()
        rows.append(
            [
                name,
                *(f"{table[g]:.0f}" for g in sorted(table)),
                f"{timing.post_time():.0f}",
            ]
        )
    headers = ["cluster", *(f"T[{g}]" for g in range(4, 12)), "TP"]
    return (
        "synthetic Grid'5000-like benchmark database (seconds):\n"
        + format_table(headers, rows)
    )


_COMMANDS = {
    "fig1": _cmd_fig1,
    "fig3to6": _cmd_fig3to6,
    "fig9": _cmd_fig9,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig10": _cmd_fig10,
    "sweep": _cmd_sweep,
    "arena": _cmd_arena,
    "ablations": _cmd_ablations,
    "simulate": _cmd_simulate,
    "campaign": _cmd_campaign,
    "recover": _cmd_recover,
    "faults": _cmd_faults,
    "generic": _cmd_generic,
    "report": _cmd_report,
    "bench": _cmd_bench,
    "info": _cmd_info,
    "lint": _cmd_lint,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "health": _cmd_health,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "result": _cmd_result,
    "runs": _cmd_runs,
    "cancel": _cmd_cancel,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from repro.obs import configure_logging

    configure_logging(args.log)
    result = _COMMANDS[args.command](args)
    if isinstance(result, int):
        # Commands with their own exit-code contract (lint) print
        # their report themselves.
        return result
    print(result)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
