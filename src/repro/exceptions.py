"""Exception hierarchy for :mod:`repro`.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from solver or simulation
failures when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PlatformError",
    "WorkflowError",
    "SchedulingError",
    "SimulationError",
    "KnapsackError",
    "MiddlewareError",
    "ServiceError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An experiment, platform, or heuristic was configured inconsistently.

    Raised eagerly at construction time (e.g. a cluster with zero
    processors, a scenario count below one) so that invalid states never
    reach the solvers or the simulator.
    """


class PlatformError(ReproError, ValueError):
    """A platform description (cluster, grid, timing model) is invalid."""


class WorkflowError(ReproError, ValueError):
    """A workflow/DAG description is invalid (cycle, bad moldability range...)."""


class SchedulingError(ReproError, RuntimeError):
    """A scheduling heuristic could not produce a feasible grouping."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class KnapsackError(ReproError, ValueError):
    """A knapsack problem instance is malformed or infeasible."""


class MiddlewareError(ReproError, RuntimeError):
    """A middleware protocol step was violated (wrong message, no servers...)."""


class ServiceError(ReproError, RuntimeError):
    """The campaign service refused or failed an operation.

    Carries an optional machine-readable ``code`` (one of the wire
    protocol's typed error codes, see :mod:`repro.service.protocol`) so
    that clients can branch on the failure kind without parsing
    messages.
    """

    def __init__(self, message: str, *, code: str = "internal") -> None:
        super().__init__(message)
        self.code = code


class ValidationError(ReproError, AssertionError):
    """A produced schedule violates a correctness invariant.

    Used by :mod:`repro.simulation.validate` — if this is ever raised on a
    schedule produced by the library itself, it indicates a bug in the
    engine rather than in user input.
    """
