"""repro — reproduction of *Ocean-Atmosphere Modelization over the Grid*.

Caniou, Caron, Charrier, Chis, Desprez, Maisonnave (INRIA RR-6695 /
ICPP 2008): scheduling an ensemble climate-prediction application —
independent chains of identical DAGs of moldable tasks — on clusters and
grids, with a knapsack-based processor-grouping heuristic.

Quickstart
----------
>>> from repro import (
...     EnsembleSpec, benchmark_cluster, plan_grouping, simulate_on_cluster,
... )
>>> cluster = benchmark_cluster("sagittaire", resources=53)
>>> spec = EnsembleSpec(scenarios=10, months=12)
>>> grouping = plan_grouping(cluster, spec, "knapsack")
>>> result = simulate_on_cluster(cluster, grouping, spec)
>>> result.makespan > 0
True

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro._version import __version__
from repro import obs
from repro.constants import GROUP_SIZES, POST_SECONDS, PCR_SECONDS
from repro.exceptions import (
    ReproError,
    ConfigurationError,
    PlatformError,
    WorkflowError,
    SchedulingError,
    SimulationError,
    KnapsackError,
    MiddlewareError,
    ServiceError,
    ValidationError,
)
from repro.platform import (
    TimingModel,
    AmdahlTimingModel,
    TableTimingModel,
    ScaledTimingModel,
    reference_timing,
    ClusterSpec,
    GridSpec,
    homogeneous_grid,
    benchmark_cluster,
    benchmark_clusters,
    benchmark_grid,
)
from repro.workflow import (
    Task,
    TaskKind,
    DAG,
    EnsembleSpec,
    monthly_dag,
    scenario_dag,
    ensemble_dag,
    fused_scenario_dag,
    fused_ensemble_dag,
    fuse_ocean_atmosphere,
    DataTransferModel,
)
from repro.core import (
    Grouping,
    analytic_makespan,
    analytic_breakdown,
    cached_analytic_makespan,
    cached_simulated_makespan,
    makespan_cache_stats,
    basic_grouping,
    best_uniform_group,
    redistribute_grouping,
    allpost_end_grouping,
    knapsack_grouping,
    HeuristicName,
    plan_grouping,
    performance_vector,
    Repartition,
    repartition_dags,
    GenericChainProblem,
    generic_grouping,
)
from repro.simulation import (
    simulate,
    simulate_on_cluster,
    SimulationResult,
    TaskRecord,
    validate_schedule,
    render_gantt,
)

__all__ = [
    "__version__",
    # observability subsystem
    "obs",
    # constants
    "GROUP_SIZES",
    "POST_SECONDS",
    "PCR_SECONDS",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "PlatformError",
    "WorkflowError",
    "SchedulingError",
    "SimulationError",
    "KnapsackError",
    "MiddlewareError",
    "ServiceError",
    "ValidationError",
    # platform
    "TimingModel",
    "AmdahlTimingModel",
    "TableTimingModel",
    "ScaledTimingModel",
    "reference_timing",
    "ClusterSpec",
    "GridSpec",
    "homogeneous_grid",
    "benchmark_cluster",
    "benchmark_clusters",
    "benchmark_grid",
    # workflow
    "Task",
    "TaskKind",
    "DAG",
    "EnsembleSpec",
    "monthly_dag",
    "scenario_dag",
    "ensemble_dag",
    "fused_scenario_dag",
    "fused_ensemble_dag",
    "fuse_ocean_atmosphere",
    "DataTransferModel",
    # core heuristics
    "Grouping",
    "analytic_makespan",
    "analytic_breakdown",
    "cached_analytic_makespan",
    "cached_simulated_makespan",
    "makespan_cache_stats",
    "basic_grouping",
    "best_uniform_group",
    "redistribute_grouping",
    "allpost_end_grouping",
    "knapsack_grouping",
    "HeuristicName",
    "plan_grouping",
    "performance_vector",
    "Repartition",
    "repartition_dags",
    "GenericChainProblem",
    "generic_grouping",
    # simulation
    "simulate",
    "simulate_on_cluster",
    "SimulationResult",
    "TaskRecord",
    "validate_schedule",
    "render_gantt",
]
