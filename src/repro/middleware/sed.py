"""SeD — the per-cluster server daemon (steps 2 and 6 of the protocol).

In DIET terminology a SeD ("Server Daemon") fronts a computational
resource.  Ours wraps a :class:`~repro.platform.cluster.ClusterSpec` and
provides the two services of Figure 9: computing the cluster's
performance vector with the knapsack modeling (step 2) and executing an
assigned subset of scenarios (step 6, by planning a grouping and running
the makespan simulator).
"""

from __future__ import annotations

from repro import obs
from repro.core.batch import PerformanceVectorBuilder
from repro.core.heuristics import HeuristicName, plan_grouping
from repro.exceptions import MiddlewareError
from repro.middleware.messages import (
    ExecutionOrder,
    ExecutionReport,
    PerformanceReply,
    ServiceRequest,
)
from repro.platform.cluster import ClusterSpec
from repro.simulation.engine import simulate
from repro.simulation.events import SimulationResult
from repro.workflow.ocean_atmosphere import EnsembleSpec

__all__ = ["SeD"]

_log = obs.get_logger(__name__)


class SeD:
    """One cluster's server daemon."""

    def __init__(self, cluster: ClusterSpec) -> None:
        if not cluster.can_run_main():
            raise MiddlewareError(
                f"cluster {cluster.name!r} ({cluster.resources} processors) "
                f"cannot host a single main-task group; refusing to register "
                f"a SeD that could never serve a request"
            )
        self.cluster = cluster
        self._last_result: SimulationResult | None = None
        # One incremental vector per (heuristic, months): repeated step-2
        # requests reuse the 1..NS-1 prefix (and the knapsack DP layers)
        # instead of rebuilding the whole vector — bit-for-bit equal to
        # a fresh performance_vector() call, which the tests assert.
        self._builders: dict[tuple[str, int], PerformanceVectorBuilder] = {}

    @property
    def name(self) -> str:
        """The SeD answers under its cluster's name."""
        return self.cluster.name

    def handle_request(self, request: ServiceRequest) -> PerformanceReply:
        """Step 2: compute this cluster's performance vector."""
        obs.inc("middleware.requests", cluster=self.name)
        with obs.span("sed.handle_request", cluster=self.name):
            spec = EnsembleSpec(request.scenarios, request.months)
            key = (HeuristicName(request.heuristic).value, spec.months)
            builder = self._builders.get(key)
            if builder is None:
                builder = PerformanceVectorBuilder(
                    self.cluster, spec.months, request.heuristic
                )
                self._builders[key] = builder
            vector = builder.extend(spec.scenarios)
        return PerformanceReply(self.name, tuple(vector[: spec.scenarios]))

    def execute(self, order: ExecutionOrder) -> ExecutionReport:
        """Step 6: run the assigned scenarios, report the makespan.

        The SeD re-plans its grouping for the *actual* number of assigned
        scenarios — the performance vector already predicted this exact
        makespan, and the tests assert prediction and execution agree.
        """
        if order.cluster_name != self.name:
            raise MiddlewareError(
                f"order addressed to {order.cluster_name!r} delivered to "
                f"SeD {self.name!r}"
            )
        obs.inc("middleware.submissions", cluster=self.name)
        with obs.span(
            "sed.execute",
            cluster=self.name,
            scenarios=len(order.scenario_ids),
        ):
            spec = EnsembleSpec(len(order.scenario_ids), order.months)
            grouping = plan_grouping(self.cluster, spec, order.heuristic)
            result = simulate(
                grouping, spec, self.cluster.timing, cluster_name=self.name
            )
        obs.set_gauge(
            "middleware.execution_makespan_seconds",
            result.makespan,
            cluster=self.name,
        )
        obs.log_event(
            _log, "sed.executed",
            cluster=self.name,
            scenarios=list(order.scenario_ids),
            months=order.months,
            heuristic=order.heuristic.value,
            makespan_s=result.makespan,
        )
        self._last_result = result
        return ExecutionReport(
            self.name, order.scenario_ids, result.makespan, grouping
        )

    @property
    def last_result(self) -> SimulationResult | None:
        """The most recent execution's full simulation result."""
        return self._last_result
