"""Typed messages of the 6-step client/agent/SeD protocol (Figure 9).

All messages are frozen dataclasses: the middleware passes them by
reference in-process, and immutability guarantees a SeD cannot massage a
request after the fact.  ``wire_size()`` estimates the serialized size
used by the network model — the protocol is control-plane only (vectors
of floats), which is why the paper can afford a round trip before any
computation starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.grouping import Grouping
from repro.core.heuristics import HeuristicName
from repro.exceptions import MiddlewareError

__all__ = [
    "ServiceRequest",
    "PerformanceReply",
    "ExecutionOrder",
    "ExecutionReport",
]

#: Rough serialized size of one float64 plus framing, bytes.
_FLOAT_BYTES = 12

#: Fixed per-message envelope (headers, names, ids), bytes.
_ENVELOPE_BYTES = 256


@dataclass(frozen=True)
class ServiceRequest:
    """Step 1: the client's problem statement broadcast to the clusters."""

    scenarios: int
    months: int
    heuristic: HeuristicName = HeuristicName.KNAPSACK

    def __post_init__(self) -> None:
        if self.scenarios < 1 or self.months < 1:
            raise MiddlewareError(
                f"request needs scenarios, months >= 1, got "
                f"{self.scenarios!r}, {self.months!r}"
            )

    def wire_size(self) -> int:
        """Estimated bytes on the wire."""
        return _ENVELOPE_BYTES + 2 * _FLOAT_BYTES


@dataclass(frozen=True)
class PerformanceReply:
    """Step 3: one cluster's performance vector.

    ``vector[k-1]`` = predicted makespan of ``k`` scenarios on the
    cluster, computed with the request's heuristic (Section 5 prescribes
    the knapsack modeling).
    """

    cluster_name: str
    vector: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.vector:
            raise MiddlewareError(
                f"cluster {self.cluster_name!r} replied with an empty vector"
            )
        if any(v < 0 for v in self.vector):
            raise MiddlewareError(
                f"cluster {self.cluster_name!r} replied with negative makespans"
            )
        if any(a > b + 1e-9 for a, b in zip(self.vector, self.vector[1:], strict=False)):
            raise MiddlewareError(
                f"cluster {self.cluster_name!r}'s performance vector is not "
                f"non-decreasing — the SeD is lying about its capacity"
            )

    def wire_size(self) -> int:
        """Estimated bytes on the wire."""
        return _ENVELOPE_BYTES + len(self.vector) * _FLOAT_BYTES


@dataclass(frozen=True)
class ExecutionOrder:
    """Step 5: the subset of scenarios a cluster must execute."""

    cluster_name: str
    scenario_ids: tuple[int, ...]
    months: int
    heuristic: HeuristicName = HeuristicName.KNAPSACK

    def __post_init__(self) -> None:
        if not self.scenario_ids:
            raise MiddlewareError(
                f"empty execution order for cluster {self.cluster_name!r}; "
                f"idle clusters simply receive no order"
            )
        if len(set(self.scenario_ids)) != len(self.scenario_ids):
            raise MiddlewareError(
                f"duplicate scenario ids in order for {self.cluster_name!r}"
            )
        if self.months < 1:
            raise MiddlewareError(f"months must be >= 1, got {self.months!r}")

    def wire_size(self) -> int:
        """Estimated bytes on the wire."""
        return _ENVELOPE_BYTES + (1 + len(self.scenario_ids)) * _FLOAT_BYTES


@dataclass(frozen=True)
class ExecutionReport:
    """Step 6's completion record returned by a cluster."""

    cluster_name: str
    scenario_ids: tuple[int, ...]
    makespan: float
    grouping: Grouping = field(repr=False)

    def __post_init__(self) -> None:
        if self.makespan < 0:
            raise MiddlewareError(
                f"cluster {self.cluster_name!r} reported a negative makespan"
            )

    def wire_size(self) -> int:
        """Estimated bytes on the wire."""
        return _ENVELOPE_BYTES + (2 + len(self.scenario_ids)) * _FLOAT_BYTES
