"""DIET-like grid middleware substrate.

Section 5 plans the deployment of Ocean-Atmosphere "in the DIET grid
middleware" and specifies the interaction as a 6-step protocol
(Figure 9):

1. the client sends a request (NS, NM) to the clusters;
2. each cluster computes its performance vector with the knapsack model;
3. the clusters return their vectors;
4. the client computes the repartition (Algorithm 1);
5. the client sends each cluster its execution order;
6. each cluster executes its assigned simulations.

The real DIET deployment was "ongoing work" in the paper; this package
substitutes an in-process message-passing implementation (see DESIGN.md
§2) that executes the same protocol over simulated network links:
a :class:`~repro.middleware.client.Client` talks through a
:class:`~repro.middleware.agent.Agent` to one
:class:`~repro.middleware.sed.SeD` (server daemon, DIET's terminology)
per cluster, and every message is timestamped by the
:class:`~repro.middleware.network.SimulatedNetwork`.
"""

from repro.middleware.messages import (
    ServiceRequest,
    PerformanceReply,
    ExecutionOrder,
    ExecutionReport,
)
from repro.middleware.network import SimulatedNetwork, MessageLogEntry
from repro.middleware.sed import SeD
from repro.middleware.agent import Agent
from repro.middleware.hierarchy import HierarchicalAgent
from repro.middleware.client import Client, CampaignResult
from repro.middleware.deployment import deploy, run_campaign
from repro.middleware.recovery import (
    ClusterFailure,
    RecoveryPlan,
    run_campaign_with_failure,
)

__all__ = [
    "ServiceRequest",
    "PerformanceReply",
    "ExecutionOrder",
    "ExecutionReport",
    "SimulatedNetwork",
    "MessageLogEntry",
    "SeD",
    "Agent",
    "HierarchicalAgent",
    "Client",
    "CampaignResult",
    "deploy",
    "run_campaign",
    "ClusterFailure",
    "RecoveryPlan",
    "run_campaign_with_failure",
]
