"""One-call deployment of the middleware over a grid description."""

from __future__ import annotations

from repro.core.heuristics import HeuristicName
from repro.middleware.agent import Agent
from repro.middleware.client import CampaignResult, Client
from repro.middleware.network import SimulatedNetwork
from repro.middleware.sed import SeD
from repro.platform.grid import GridSpec
from repro.workflow.data import DataTransferModel

__all__ = ["deploy", "run_campaign"]


def deploy(
    grid: GridSpec, *, link: DataTransferModel | None = None
) -> tuple[Client, Agent, list[SeD]]:
    """Stand a client/agent/SeD hierarchy up over a grid.

    Returns the three tiers so tests and examples can poke at any of
    them; most callers only need :func:`run_campaign`.
    """
    network = SimulatedNetwork(link)
    agent = Agent(network)
    seds = [SeD(cluster) for cluster in grid]
    for sed in seds:
        agent.register(sed)
    return Client(agent), agent, seds


def run_campaign(
    grid: GridSpec,
    scenarios: int,
    months: int,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
    *,
    link: DataTransferModel | None = None,
) -> CampaignResult:
    """Deploy over ``grid`` and execute one full ensemble campaign."""
    client, _agent, _seds = deploy(grid, link=link)
    return client.run_campaign(scenarios, months, heuristic)
