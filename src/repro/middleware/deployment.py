"""One-call deployment of the middleware over a grid description."""

from __future__ import annotations

from repro import obs
from repro.core.heuristics import HeuristicName
from repro.middleware.agent import Agent
from repro.middleware.client import CampaignResult, Client
from repro.middleware.network import SimulatedNetwork
from repro.middleware.sed import SeD
from repro.platform.grid import GridSpec
from repro.workflow.data import DataTransferModel

__all__ = ["deploy", "run_campaign"]

_log = obs.get_logger(__name__)


def deploy(
    grid: GridSpec, *, link: DataTransferModel | None = None
) -> tuple[Client, Agent, list[SeD]]:
    """Stand a client/agent/SeD hierarchy up over a grid.

    Returns the three tiers so tests and examples can poke at any of
    them; most callers only need :func:`run_campaign`.
    """
    network = SimulatedNetwork(link)
    agent = Agent(network)
    seds = [SeD(cluster) for cluster in grid]
    for sed in seds:
        agent.register(sed)
    obs.inc("middleware.deployments")
    obs.log_event(
        _log, "middleware.deployed",
        clusters=[sed.name for sed in seds],
    )
    return Client(agent), agent, seds


def run_campaign(
    grid: GridSpec,
    scenarios: int,
    months: int,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
    *,
    link: DataTransferModel | None = None,
) -> CampaignResult:
    """Deploy over ``grid`` and execute one full ensemble campaign."""
    with obs.span(
        "campaign", clusters=len(grid), scenarios=scenarios, months=months
    ):
        client, _agent, _seds = deploy(grid, link=link)
        result = client.run_campaign(scenarios, months, heuristic)
    obs.inc("campaign.runs")
    obs.set_gauge("campaign.makespan_seconds", result.makespan)
    obs.set_gauge(
        "campaign.predicted_makespan_seconds", result.predicted_makespan
    )
    obs.log_event(
        _log, "campaign.completed",
        clusters=len(grid), scenarios=scenarios, months=months,
        makespan_s=result.makespan,
        predicted_makespan_s=result.predicted_makespan,
    )
    return result
