"""Agent — the routing tier between client and SeDs.

DIET organizes servers behind a hierarchy of agents; with the handful of
clusters the paper targets, one agent suffices.  The agent owns the SeD
registry, fans requests out, gathers replies in deterministic (registry)
order, and routes execution orders to the right SeD — every hop stamped
on the simulated network.
"""

from __future__ import annotations

from repro.exceptions import MiddlewareError
from repro.middleware.messages import (
    ExecutionOrder,
    ExecutionReport,
    PerformanceReply,
    ServiceRequest,
)
from repro.middleware.network import SimulatedNetwork
from repro.middleware.sed import SeD

__all__ = ["Agent"]


class Agent:
    """A single-level DIET-style agent."""

    def __init__(self, network: SimulatedNetwork, name: str = "agent") -> None:
        self.network = network
        self.name = name
        self._seds: dict[str, SeD] = {}

    def register(self, sed: SeD) -> None:
        """Add a SeD to the registry (names must be unique)."""
        if sed.name in self._seds:
            raise MiddlewareError(f"a SeD named {sed.name!r} is already registered")
        self._seds[sed.name] = sed

    @property
    def sed_names(self) -> tuple[str, ...]:
        """Registered SeD names, in registration order."""
        return tuple(self._seds)

    def sed(self, name: str) -> SeD:
        """Look up a SeD; raises :class:`MiddlewareError` if unknown."""
        try:
            return self._seds[name]
        except KeyError:
            raise MiddlewareError(
                f"no SeD named {name!r}; registered: {list(self._seds)}"
            ) from None

    def broadcast_request(self, request: ServiceRequest) -> list[PerformanceReply]:
        """Steps 1–3: fan the request out, gather every reply."""
        if not self._seds:
            raise MiddlewareError("no SeDs registered; cannot serve a request")
        replies: list[PerformanceReply] = []
        for name, sed in self._seds.items():
            self.network.send(self.name, name, "ServiceRequest", request.wire_size())
            reply = sed.handle_request(request)
            self.network.send(name, self.name, "PerformanceReply", reply.wire_size())
            replies.append(reply)
        return replies

    def dispatch_order(self, order: ExecutionOrder) -> ExecutionReport:
        """Steps 5–6: route one execution order and return its report."""
        sed = self.sed(order.cluster_name)
        self.network.send(self.name, sed.name, "ExecutionOrder", order.wire_size())
        report = sed.execute(order)
        self.network.send(sed.name, self.name, "ExecutionReport", report.wire_size())
        return report
