"""Client — the orchestrating endpoint of the protocol (steps 1, 4, 5).

The client owns the ensemble request, runs Algorithm 1 on the gathered
performance vectors, and dispatches execution orders.  Its
:class:`CampaignResult` aggregates everything an experimenter needs:
the repartition, per-cluster reports, the predicted and achieved global
makespans, and the (negligible) control-plane overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.heuristics import HeuristicName
from repro.core.repartition import Repartition, repartition_dags
from repro.exceptions import MiddlewareError
from repro.middleware.agent import Agent
from repro.middleware.messages import (
    ExecutionOrder,
    ExecutionReport,
    PerformanceReply,
    ServiceRequest,
)

__all__ = ["Client", "CampaignResult"]


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one full protocol run."""

    request: ServiceRequest
    replies: tuple[PerformanceReply, ...] = field(repr=False)
    repartition: Repartition
    reports: tuple[ExecutionReport, ...] = field(repr=False)
    control_plane_seconds: float

    @property
    def makespan(self) -> float:
        """Achieved global makespan: the slowest cluster's report."""
        return max(report.makespan for report in self.reports)

    @property
    def predicted_makespan(self) -> float:
        """Algorithm 1's prediction from the performance vectors."""
        return self.repartition.makespan

    def report_for(self, cluster_name: str) -> ExecutionReport:
        """The execution report of one cluster; raises if it ran nothing."""
        for report in self.reports:
            if report.cluster_name == cluster_name:
                return report
        raise MiddlewareError(
            f"cluster {cluster_name!r} executed no scenarios in this campaign"
        )

    def describe(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"campaign: {self.request.scenarios} scenarios x "
            f"{self.request.months} months, heuristic="
            f"{self.request.heuristic.value}",
            f"predicted makespan {self.predicted_makespan / 3600:.2f} h, "
            f"achieved {self.makespan / 3600:.2f} h, control plane "
            f"{self.control_plane_seconds:.3f} s",
        ]
        for report in self.reports:
            lines.append(
                f"  {report.cluster_name}: {len(report.scenario_ids)} "
                f"scenario(s) [{report.grouping.describe()}] -> "
                f"{report.makespan / 3600:.2f} h"
            )
        return "\n".join(lines)


class Client:
    """The experiment-submitting endpoint."""

    def __init__(self, agent: Agent, name: str = "client") -> None:
        self.agent = agent
        self.name = name

    def run_campaign(
        self,
        scenarios: int,
        months: int,
        heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
    ) -> CampaignResult:
        """Execute the full 6-step protocol for one ensemble."""
        network = self.agent.network
        request = ServiceRequest(scenarios, months, HeuristicName(heuristic))

        # Step 1: client -> agent.
        network.send(self.name, self.agent.name, "ServiceRequest", request.wire_size())
        # Steps 1-3 (fan-out and gather) happen inside the agent.
        replies = self.agent.broadcast_request(request)
        # Step 3 tail: agent -> client with the gathered vectors.
        gathered_size = sum(reply.wire_size() for reply in replies)
        network.send(self.agent.name, self.name, "PerformanceReplies", gathered_size)

        # Step 4: Algorithm 1 on the client.
        performance = [reply.vector for reply in replies]
        repartition = repartition_dags(performance, scenarios)

        # Step 5-6: one order per non-idle cluster, in reply order.
        reports: list[ExecutionReport] = []
        for index, reply in enumerate(replies):
            assigned = tuple(repartition.scenarios_on(index))
            if not assigned:
                continue
            order = ExecutionOrder(
                reply.cluster_name, assigned, months, request.heuristic
            )
            network.send(self.name, self.agent.name, "ExecutionOrder", order.wire_size())
            reports.append(self.agent.dispatch_order(order))

        if not reports:
            raise MiddlewareError("repartition assigned no scenarios anywhere")
        return CampaignResult(
            request=request,
            replies=tuple(replies),
            repartition=repartition,
            reports=tuple(reports),
            control_plane_seconds=network.control_plane_seconds(),
        )
