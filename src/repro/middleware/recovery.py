"""Cluster-failure recovery — an extension beyond the paper.

The paper schedules a multi-week campaign across grid sites and notes
that real deployment (DIET on Grid'5000) was ongoing work; any real
deployment immediately faces site failures.  This module models the
natural recovery strategy on top of the paper's machinery:

1. a cluster fails at time ``T_f`` mid-campaign;
2. months whose coupled run finished before ``T_f`` are safe (their
   restart files reached shared storage); the month in flight is lost,
   and so are the archive (post) tasks still pending — those are
   re-executed on survivors;
3. each interrupted scenario must finish its *remaining* months on a
   surviving cluster, after that cluster completes its own share
   (scenarios never time-share a cluster's groups with the original
   load — the original schedule is already makespan-optimal for it);
4. scenarios are reassigned greedily, longest-remaining-first, each to
   the cluster minimizing the resulting finish time — Algorithm 1's
   rule generalized to unequal chain lengths, with each candidate
   evaluated *exactly* by the DAG-level simulator
   (:mod:`repro.simulation.dag_engine`), since remaining chains have
   different lengths and the rectangular engine no longer applies;
5. moving a scenario pays the restart-archive migration penalty of
   :class:`~repro.workflow.data.DataTransferModel`.

The result quantifies the failure's cost: new global makespan, months of
computation lost, and where every interrupted scenario restarted.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro import constants, obs
from repro.core.heuristics import HeuristicName
from repro.core.knapsack_grouping import knapsack_grouping
from repro.core.performance_vector import performance_vector
from repro.core.repartition import Repartition, repartition_dags
from repro.exceptions import MiddlewareError
from repro.platform.cluster import ClusterSpec
from repro.platform.grid import GridSpec
from repro.simulation.dag_engine import simulate_dag
from repro.simulation.engine import simulate
from repro.workflow.dag import DAG
from repro.workflow.data import DataTransferModel
from repro.workflow.ocean_atmosphere import EnsembleSpec, fused_scenario_dag

__all__ = ["ClusterFailure", "RecoveryPlan", "run_campaign_with_failure"]

_log = obs.get_logger(__name__)


@dataclass(frozen=True)
class ClusterFailure:
    """A permanent cluster failure at a wall-clock instant."""

    cluster_name: str
    at_time: float

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise MiddlewareError(
                f"failure time must be >= 0, got {self.at_time!r}"
            )


@dataclass(frozen=True)
class RecoveryPlan:
    """Outcome of a campaign interrupted by one cluster failure."""

    failure: ClusterFailure
    original_repartition: Repartition
    original_makespan: float
    #: months each interrupted scenario completed before the failure.
    completed_months: dict[int, int] = field(repr=False)
    #: post tasks of completed months lost in flight, per scenario.
    pending_posts: dict[int, int] = field(repr=False)
    #: scenario -> surviving cluster it restarted on.
    reassignment: dict[int, str]
    #: finish time of every surviving cluster after recovery work.
    cluster_finish: dict[str, float] = field(repr=False)
    #: global makespan including recovery.
    makespan: float
    #: processor-seconds of coupled-run work destroyed by the failure.
    lost_work_seconds: float

    @property
    def delay(self) -> float:
        """Extra campaign time caused by the failure."""
        return self.makespan - self.original_makespan

    def describe(self) -> str:
        """Human-readable recovery summary."""
        lines = [
            f"failure: {self.failure.cluster_name} at "
            f"{self.failure.at_time / 3600:.2f} h",
            f"interrupted scenarios: {sorted(self.reassignment)}",
            f"lost work: {self.lost_work_seconds / 3600:.2f} processor-hours",
            f"makespan: {self.original_makespan / 3600:.2f} h -> "
            f"{self.makespan / 3600:.2f} h (+{self.delay / 3600:.2f} h)",
        ]
        for scenario, target in sorted(self.reassignment.items()):
            done = self.completed_months[scenario]
            posts = self.pending_posts.get(scenario, 0)
            extra = f" (+{posts} lost archive task(s))" if posts else ""
            lines.append(
                f"  scenario {scenario}: {done} months safe{extra}, "
                f"restarted on {target}"
            )
        return "\n".join(lines)


def _months_done_at(
    cluster: ClusterSpec,
    n_scenarios: int,
    months: int,
    heuristic: HeuristicName,
    at_time: float,
) -> tuple[dict[int, int], dict[int, int], float]:
    """Replay a cluster's schedule; count safe months per local scenario.

    Task outputs ship to shared storage on completion (§4.1's data
    model), so a month is *resumable* once its coupled run finished: the
    restart files exist off the dying node.  Post-processing tasks that
    had not finished are lost and must be re-executed on a survivor —
    their inputs (the completed mains' diagnostics) are on shared
    storage too.  Returns ``(safe months, pending posts, lost in-flight
    work seconds)`` with scenario ids cluster-local (0-based within the
    cluster's assignment); the lost term counts interrupted mains and
    posts alike.
    """
    from repro.core.heuristics import plan_grouping

    spec = EnsembleSpec(n_scenarios, months)
    grouping = plan_grouping(cluster, spec, heuristic)
    result = simulate(
        grouping, spec, cluster.timing, cluster_name=cluster.name,
        record_trace=True,
    )
    finished: dict[tuple[str, int, int], bool] = {}
    lost = 0.0
    for record in result.records:
        finished[(record.kind, record.scenario, record.month)] = (
            record.end <= at_time
        )
        if record.start < at_time < record.end:
            lost += (at_time - record.start) * record.n_procs
    done: dict[int, int] = {}
    pending_posts: dict[int, int] = {}
    for scenario in range(n_scenarios):
        done[scenario] = sum(
            1
            for month in range(months)
            if finished.get(("main", scenario, month))
        )
        pending_posts[scenario] = sum(
            1
            for month in range(done[scenario])
            if not finished.get(("post", scenario, month))
        )
    return done, pending_posts, lost


def _recovery_dag(chains: dict[int, int]) -> DAG:
    """A DAG of the remaining months of the given scenarios.

    ``chains[scenario] = remaining`` months; each becomes an independent
    fused chain (month indices are relabelled 0..remaining-1 — only the
    count matters to the simulator).
    """
    dag = DAG()
    for index, remaining in enumerate(
        chains[s] for s in sorted(chains)
    ):
        dag.merge(fused_scenario_dag(remaining, scenario=index))
    return dag


def _appended_finish(
    cluster: ClusterSpec,
    base_finish: float,
    chains: dict[int, int],
    pending_posts: int,
    migration_seconds: float,
) -> float:
    """Finish time if ``cluster`` runs the given remaining work.

    Chains (remaining months) start once the cluster's own share is done
    and the restart data has arrived; their makespan is evaluated
    exactly with the DAG engine under a knapsack grouping for the chain
    count.  Lost archive (post) tasks of already-completed months then
    fill the whole cluster in ``⌈n/R⌉`` slices of ``TP``.
    """
    if not chains and pending_posts == 0:
        return base_finish
    finish = base_finish + migration_seconds
    if chains:
        spec = EnsembleSpec(len(chains), max(chains.values()))
        grouping = knapsack_grouping(cluster, spec)
        dag = _recovery_dag(chains)
        seq_scale = cluster.post_time() / constants.POST_SECONDS
        result = simulate_dag(
            dag, grouping, cluster.timing, seq_scale=seq_scale
        )
        finish += result.makespan
    if pending_posts:
        finish += (
            math.ceil(pending_posts / cluster.resources) * cluster.post_time()
        )
    return finish


def run_campaign_with_failure(
    grid: GridSpec,
    scenarios: int,
    months: int,
    failure: ClusterFailure,
    *,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
    link: DataTransferModel | None = None,
) -> RecoveryPlan:
    """Run a campaign, fail one cluster mid-flight, and recover.

    Raises :class:`MiddlewareError` when the named cluster is not in the
    grid, is the only cluster, or fails after its work already finished
    (nothing to recover — the caller should handle that case directly).
    """
    heuristic = HeuristicName(heuristic)
    link = link if link is not None else DataTransferModel()
    names = list(grid.names)
    if failure.cluster_name not in names:
        raise MiddlewareError(
            f"cannot fail unknown cluster {failure.cluster_name!r}; grid "
            f"has {names}"
        )
    if len(grid) < 2:
        raise MiddlewareError(
            "recovery needs at least one surviving cluster"
        )

    # Original campaign (Section 5).
    spec = EnsembleSpec(scenarios, months)
    vectors = [performance_vector(c, spec, heuristic) for c in grid]
    repartition = repartition_dags(vectors, scenarios)
    finish = {
        name: (vectors[i][repartition.counts[i] - 1] if repartition.counts[i] else 0.0)
        for i, name in enumerate(names)
    }
    original_makespan = repartition.makespan

    failed_index = names.index(failure.cluster_name)
    failed_cluster = grid[failed_index]
    local = repartition.scenarios_on(failed_index)
    if not local:
        raise MiddlewareError(
            f"cluster {failure.cluster_name!r} was assigned no scenarios; "
            f"its failure is free"
        )
    if failure.at_time >= finish[failure.cluster_name]:
        raise MiddlewareError(
            f"cluster {failure.cluster_name!r} finished at "
            f"{finish[failure.cluster_name]:.0f}s, before the failure at "
            f"{failure.at_time:.0f}s — nothing to recover"
        )

    # What survived on the failed cluster?
    detection_started = time.perf_counter()
    done_local, pending_local, lost = _months_done_at(
        failed_cluster, len(local), months, heuristic, failure.at_time
    )
    completed = {
        global_id: done_local[i] for i, global_id in enumerate(local)
    }
    pending = {
        global_id: pending_local[i] for i, global_id in enumerate(local)
    }
    remaining = {
        global_id: months - done for global_id, done in completed.items()
        if months - done > 0
    }
    interrupted = sorted(
        global_id
        for global_id in completed
        if remaining.get(global_id, 0) > 0 or pending[global_id] > 0
    )
    obs.inc("recovery.failures_detected", cluster=failure.cluster_name)
    obs.log_event(
        _log, "recovery.failure_detected",
        cluster=failure.cluster_name,
        at_time_s=failure.at_time,
        interrupted_scenarios=interrupted,
        lost_work_processor_seconds=lost,
        detection_seconds=time.perf_counter() - detection_started,
    )

    # Greedy reassignment, longest-remaining first, exact evaluation.
    survivors = [
        (name, grid[i]) for i, name in enumerate(names) if i != failed_index
    ]
    assigned: dict[str, dict[int, int]] = {name: {} for name, _ in survivors}
    assigned_posts: dict[str, int] = {name: 0 for name, _ in survivors}
    reassignment: dict[int, str] = {}
    for scenario in sorted(
        interrupted, key=lambda s: (-remaining.get(s, 0), s)
    ):
        decision_started = time.perf_counter()
        migration = link.migration_penalty(completed[scenario])
        best_name = None
        best_finish = float("inf")
        for name, cluster in survivors:
            trial = dict(assigned[name])
            if remaining.get(scenario, 0) > 0:
                trial[scenario] = remaining[scenario]
            candidate = _appended_finish(
                cluster,
                max(finish[name], failure.at_time),
                trial,
                assigned_posts[name] + pending[scenario],
                migration,
            )
            if candidate < best_finish:
                best_finish = candidate
                best_name = name
        assert best_name is not None
        if remaining.get(scenario, 0) > 0:
            assigned[best_name][scenario] = remaining[scenario]
        assigned_posts[best_name] += pending[scenario]
        reassignment[scenario] = best_name
        # Recovery latency: how long past the failure instant this
        # scenario's work now runs on its new home (simulated seconds).
        recovery_latency = best_finish - failure.at_time
        obs.inc(
            "recovery.resubmissions",
            source=failure.cluster_name,
            target=best_name,
        )
        obs.observe(
            "recovery.resubmission_latency_seconds",
            recovery_latency,
            target=best_name,
        )
        obs.log_event(
            _log, "recovery.resubmission",
            scenario=scenario,
            source=failure.cluster_name,
            target=best_name,
            remaining_months=remaining.get(scenario, 0),
            pending_posts=pending[scenario],
            migration_penalty_s=migration,
            projected_finish_s=best_finish,
            recovery_latency_s=recovery_latency,
            decision_seconds=time.perf_counter() - decision_started,
        )

    cluster_finish: dict[str, float] = {}
    for name, cluster in survivors:
        has_work = bool(assigned[name]) or assigned_posts[name] > 0
        migration = max(
            (
                link.migration_penalty(completed[s])
                for s, target in reassignment.items()
                if target == name
            ),
            default=0.0,
        )
        cluster_finish[name] = _appended_finish(
            cluster,
            max(finish[name], failure.at_time) if has_work else finish[name],
            assigned[name],
            assigned_posts[name],
            migration,
        )

    makespan = max(cluster_finish.values())
    obs.set_gauge("recovery.makespan_seconds", makespan)
    obs.set_gauge(
        "recovery.delay_seconds", makespan - original_makespan
    )
    obs.log_event(
        _log, "recovery.completed",
        cluster=failure.cluster_name,
        resubmissions=len(reassignment),
        makespan_s=makespan,
        original_makespan_s=original_makespan,
        delay_s=makespan - original_makespan,
        lost_work_processor_seconds=lost,
    )
    return RecoveryPlan(
        failure=failure,
        original_repartition=repartition,
        original_makespan=original_makespan,
        completed_months=completed,
        pending_posts=pending,
        reassignment=reassignment,
        cluster_finish=cluster_finish,
        makespan=makespan,
        lost_work_seconds=lost,
    )
