"""Cluster-failure recovery — an extension beyond the paper.

The paper schedules a multi-week campaign across grid sites and notes
that real deployment (DIET on Grid'5000) was ongoing work; any real
deployment immediately faces site failures.  This module models the
natural recovery strategy on top of the paper's machinery:

1. a cluster fails at time ``T_f`` mid-campaign;
2. months whose coupled run finished before ``T_f`` are safe (their
   restart files reached shared storage); the month in flight is lost,
   and so are the archive (post) tasks still pending — those are
   re-executed on survivors;
3. each interrupted scenario must finish its *remaining* months on a
   surviving cluster, after that cluster completes its own share
   (scenarios never time-share a cluster's groups with the original
   load — the original schedule is already makespan-optimal for it);
4. scenarios are reassigned greedily, longest-remaining-first, each to
   the cluster minimizing the resulting finish time — Algorithm 1's
   rule generalized to unequal chain lengths, with each candidate
   evaluated *exactly* by the DAG-level simulator
   (:mod:`repro.simulation.dag_engine`), since remaining chains have
   different lengths and the rectangular engine no longer applies;
5. moving a scenario pays the restart-archive migration penalty of
   :class:`~repro.workflow.data.DataTransferModel`.

The result quantifies the failure's cost: new global makespan, months of
computation lost, and where every interrupted scenario restarted.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro import constants, obs
from repro.core.heuristics import HeuristicName
from repro.core.knapsack_grouping import knapsack_grouping
from repro.core.performance_vector import performance_vector
from repro.core.repartition import Repartition, repartition_dags
from repro.exceptions import MiddlewareError
from repro.faults.trace import FaultEvent, FaultKind, FaultTrace
from repro.platform.cluster import ClusterSpec
from repro.platform.grid import GridSpec
from repro.simulation.dag_engine import simulate_dag
from repro.simulation.engine import simulate
from repro.workflow.dag import DAG
from repro.workflow.data import DataTransferModel
from repro.workflow.ocean_atmosphere import EnsembleSpec, fused_scenario_dag

__all__ = [
    "ClusterFailure",
    "RecoveryPlan",
    "run_campaign_with_failure",
    "FaultEventOutcome",
    "CampaignFaultReport",
    "run_campaign_with_faults",
]

_log = obs.get_logger(__name__)


@dataclass(frozen=True)
class ClusterFailure:
    """A permanent cluster failure at a wall-clock instant."""

    cluster_name: str
    at_time: float

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise MiddlewareError(
                f"failure time must be >= 0, got {self.at_time!r}"
            )


@dataclass(frozen=True)
class RecoveryPlan:
    """Outcome of a campaign interrupted by one cluster failure."""

    failure: ClusterFailure
    original_repartition: Repartition
    original_makespan: float
    #: months each interrupted scenario completed before the failure.
    completed_months: dict[int, int] = field(repr=False)
    #: post tasks of completed months lost in flight, per scenario.
    pending_posts: dict[int, int] = field(repr=False)
    #: scenario -> surviving cluster it restarted on.
    reassignment: dict[int, str]
    #: finish time of every surviving cluster after recovery work.
    cluster_finish: dict[str, float] = field(repr=False)
    #: global makespan including recovery.
    makespan: float
    #: processor-seconds of coupled-run work destroyed by the failure.
    lost_work_seconds: float

    @property
    def delay(self) -> float:
        """Extra campaign time caused by the failure."""
        return self.makespan - self.original_makespan

    def describe(self) -> str:
        """Human-readable recovery summary."""
        lines = [
            f"failure: {self.failure.cluster_name} at "
            f"{self.failure.at_time / 3600:.2f} h",
            f"interrupted scenarios: {sorted(self.reassignment)}",
            f"lost work: {self.lost_work_seconds / 3600:.2f} processor-hours",
            f"makespan: {self.original_makespan / 3600:.2f} h -> "
            f"{self.makespan / 3600:.2f} h (+{self.delay / 3600:.2f} h)",
        ]
        for scenario, target in sorted(self.reassignment.items()):
            done = self.completed_months[scenario]
            posts = self.pending_posts.get(scenario, 0)
            extra = f" (+{posts} lost archive task(s))" if posts else ""
            lines.append(
                f"  scenario {scenario}: {done} months safe{extra}, "
                f"restarted on {target}"
            )
        return "\n".join(lines)


def _months_done_at(
    cluster: ClusterSpec,
    n_scenarios: int,
    months: int,
    heuristic: HeuristicName,
    at_time: float,
) -> tuple[dict[int, int], dict[int, int], float]:
    """Replay a cluster's schedule; count safe months per local scenario.

    Task outputs ship to shared storage on completion (§4.1's data
    model), so a month is *resumable* once its coupled run finished: the
    restart files exist off the dying node.  Post-processing tasks that
    had not finished are lost and must be re-executed on a survivor —
    their inputs (the completed mains' diagnostics) are on shared
    storage too.  Returns ``(safe months, pending posts, lost in-flight
    work seconds, in-flight months destroyed)`` with scenario ids
    cluster-local (0-based within the cluster's assignment); the lost
    term counts interrupted mains and posts alike.
    """
    from repro.core.heuristics import plan_grouping

    spec = EnsembleSpec(n_scenarios, months)
    grouping = plan_grouping(cluster, spec, heuristic)
    result = simulate(
        grouping, spec, cluster.timing, cluster_name=cluster.name,
        record_trace=True,
    )
    finished: dict[tuple[str, int, int], bool] = {}
    lost = 0.0
    in_flight = 0
    for record in result.records:
        finished[(record.kind, record.scenario, record.month)] = (
            record.end <= at_time
        )
        if record.start < at_time < record.end:
            lost += (at_time - record.start) * record.n_procs
            if record.kind == "main":
                in_flight += 1
    done: dict[int, int] = {}
    pending_posts: dict[int, int] = {}
    for scenario in range(n_scenarios):
        done[scenario] = sum(
            1
            for month in range(months)
            if finished.get(("main", scenario, month))
        )
        pending_posts[scenario] = sum(
            1
            for month in range(done[scenario])
            if not finished.get(("post", scenario, month))
        )
    return done, pending_posts, lost, in_flight


def _recovery_dag(chains: dict[int, int]) -> DAG:
    """A DAG of the remaining months of the given scenarios.

    ``chains[scenario] = remaining`` months; each becomes an independent
    fused chain (month indices are relabelled 0..remaining-1 — only the
    count matters to the simulator).
    """
    dag = DAG()
    for index, remaining in enumerate(
        chains[s] for s in sorted(chains)
    ):
        dag.merge(fused_scenario_dag(remaining, scenario=index))
    return dag


def _appended_finish(
    cluster: ClusterSpec,
    base_finish: float,
    chains: dict[int, int],
    pending_posts: int,
    migration_seconds: float,
) -> float:
    """Finish time if ``cluster`` runs the given remaining work.

    Chains (remaining months) start once the cluster's own share is done
    and the restart data has arrived; their makespan is evaluated
    exactly with the DAG engine under a knapsack grouping for the chain
    count.  Lost archive (post) tasks of already-completed months then
    fill the whole cluster in ``⌈n/R⌉`` slices of ``TP``.
    """
    if not chains and pending_posts == 0:
        return base_finish
    finish = base_finish + migration_seconds
    if chains:
        spec = EnsembleSpec(len(chains), max(chains.values()))
        grouping = knapsack_grouping(cluster, spec)
        dag = _recovery_dag(chains)
        seq_scale = cluster.post_time() / constants.POST_SECONDS
        result = simulate_dag(
            dag, grouping, cluster.timing, seq_scale=seq_scale
        )
        finish += result.makespan
    if pending_posts:
        finish += (
            math.ceil(pending_posts / cluster.resources) * cluster.post_time()
        )
    return finish


def run_campaign_with_failure(
    grid: GridSpec,
    scenarios: int,
    months: int,
    failure: ClusterFailure,
    *,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
    link: DataTransferModel | None = None,
) -> RecoveryPlan:
    """Run a campaign, fail one cluster mid-flight, and recover.

    Raises :class:`MiddlewareError` when the named cluster is not in the
    grid, is the only cluster, or fails after its work already finished
    (nothing to recover — the caller should handle that case directly).
    """
    heuristic = HeuristicName(heuristic)
    link = link if link is not None else DataTransferModel()
    names = list(grid.names)
    if failure.cluster_name not in names:
        raise MiddlewareError(
            f"cannot fail unknown cluster {failure.cluster_name!r}; grid "
            f"has {names}"
        )
    if len(grid) < 2:
        raise MiddlewareError(
            "recovery needs at least one surviving cluster"
        )

    # Original campaign (Section 5).
    spec = EnsembleSpec(scenarios, months)
    vectors = [performance_vector(c, spec, heuristic) for c in grid]
    repartition = repartition_dags(vectors, scenarios)
    finish = {
        name: (vectors[i][repartition.counts[i] - 1] if repartition.counts[i] else 0.0)
        for i, name in enumerate(names)
    }
    original_makespan = repartition.makespan

    failed_index = names.index(failure.cluster_name)
    failed_cluster = grid[failed_index]
    local = repartition.scenarios_on(failed_index)
    if not local:
        raise MiddlewareError(
            f"cluster {failure.cluster_name!r} was assigned no scenarios; "
            f"its failure is free"
        )
    if failure.at_time >= finish[failure.cluster_name]:
        raise MiddlewareError(
            f"cluster {failure.cluster_name!r} finished at "
            f"{finish[failure.cluster_name]:.0f}s, before the failure at "
            f"{failure.at_time:.0f}s — nothing to recover"
        )

    # What survived on the failed cluster?
    detection_started = time.perf_counter()
    done_local, pending_local, lost, _in_flight = _months_done_at(
        failed_cluster, len(local), months, heuristic, failure.at_time
    )
    completed = {
        global_id: done_local[i] for i, global_id in enumerate(local)
    }
    pending = {
        global_id: pending_local[i] for i, global_id in enumerate(local)
    }
    remaining = {
        global_id: months - done for global_id, done in completed.items()
        if months - done > 0
    }
    interrupted = sorted(
        global_id
        for global_id in completed
        if remaining.get(global_id, 0) > 0 or pending[global_id] > 0
    )
    obs.inc("recovery.failures_detected", cluster=failure.cluster_name)
    obs.log_event(
        _log, "recovery.failure_detected",
        cluster=failure.cluster_name,
        at_time_s=failure.at_time,
        interrupted_scenarios=interrupted,
        lost_work_processor_seconds=lost,
        detection_seconds=time.perf_counter() - detection_started,
    )

    # Greedy reassignment, longest-remaining first, exact evaluation.
    survivors = [
        (name, grid[i]) for i, name in enumerate(names) if i != failed_index
    ]
    assigned: dict[str, dict[int, int]] = {name: {} for name, _ in survivors}
    assigned_posts: dict[str, int] = {name: 0 for name, _ in survivors}
    reassignment: dict[int, str] = {}
    for scenario in sorted(
        interrupted, key=lambda s: (-remaining.get(s, 0), s)
    ):
        decision_started = time.perf_counter()
        migration = link.migration_penalty(completed[scenario])
        best_name = None
        best_finish = float("inf")
        for name, cluster in survivors:
            trial = dict(assigned[name])
            if remaining.get(scenario, 0) > 0:
                trial[scenario] = remaining[scenario]
            candidate = _appended_finish(
                cluster,
                max(finish[name], failure.at_time),
                trial,
                assigned_posts[name] + pending[scenario],
                migration,
            )
            if candidate < best_finish:
                best_finish = candidate
                best_name = name
        assert best_name is not None
        if remaining.get(scenario, 0) > 0:
            assigned[best_name][scenario] = remaining[scenario]
        assigned_posts[best_name] += pending[scenario]
        reassignment[scenario] = best_name
        # Recovery latency: how long past the failure instant this
        # scenario's work now runs on its new home (simulated seconds).
        recovery_latency = best_finish - failure.at_time
        obs.inc(
            "recovery.resubmissions",
            source=failure.cluster_name,
            target=best_name,
        )
        obs.observe(
            "recovery.resubmission_latency_seconds",
            recovery_latency,
            target=best_name,
        )
        obs.log_event(
            _log, "recovery.resubmission",
            scenario=scenario,
            source=failure.cluster_name,
            target=best_name,
            remaining_months=remaining.get(scenario, 0),
            pending_posts=pending[scenario],
            migration_penalty_s=migration,
            projected_finish_s=best_finish,
            recovery_latency_s=recovery_latency,
            decision_seconds=time.perf_counter() - decision_started,
        )

    cluster_finish: dict[str, float] = {}
    for name, cluster in survivors:
        has_work = bool(assigned[name]) or assigned_posts[name] > 0
        migration = max(
            (
                link.migration_penalty(completed[s])
                for s, target in reassignment.items()
                if target == name
            ),
            default=0.0,
        )
        cluster_finish[name] = _appended_finish(
            cluster,
            max(finish[name], failure.at_time) if has_work else finish[name],
            assigned[name],
            assigned_posts[name],
            migration,
        )

    makespan = max(cluster_finish.values())
    obs.set_gauge("recovery.makespan_seconds", makespan)
    obs.set_gauge(
        "recovery.delay_seconds", makespan - original_makespan
    )
    obs.log_event(
        _log, "recovery.completed",
        cluster=failure.cluster_name,
        resubmissions=len(reassignment),
        makespan_s=makespan,
        original_makespan_s=original_makespan,
        delay_s=makespan - original_makespan,
        lost_work_processor_seconds=lost,
    )
    return RecoveryPlan(
        failure=failure,
        original_repartition=repartition,
        original_makespan=original_makespan,
        completed_months=completed,
        pending_posts=pending,
        reassignment=reassignment,
        cluster_finish=cluster_finish,
        makespan=makespan,
        lost_work_seconds=lost,
    )


# ---------------------------------------------------------------------------
# Multi-failure replanning: an arbitrary trace of sequential events.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultEventOutcome:
    """What the replanner did about one trace event."""

    event: FaultEvent
    #: whether the event changed the campaign (``False`` for no-ops:
    #: slowdowns, idle/finished clusters, redundant crashes/rejoins).
    applied: bool
    #: one-line explanation of the decision.
    reason: str
    #: scenarios interrupted by this event, sorted.
    interrupted: tuple[int, ...] = ()
    #: interrupted scenario -> cluster it restarted on.
    reassignment: dict[int, str] = field(default_factory=dict, repr=False)
    #: months each interrupted scenario had safely completed.
    completed_months: dict[int, int] = field(default_factory=dict, repr=False)
    #: archive (post) tasks needing re-execution, per interrupted scenario.
    pending_posts: dict[int, int] = field(default_factory=dict, repr=False)
    #: coupled-run months that were in flight and destroyed.
    months_lost: int = 0
    #: processor-seconds of in-flight work destroyed.
    lost_work_seconds: float = 0.0
    #: projected campaign makespan after handling this event.
    makespan_after: float = 0.0


@dataclass(frozen=True)
class CampaignFaultReport:
    """Outcome of a campaign replanned through a whole fault trace."""

    trace: FaultTrace
    original_repartition: Repartition
    original_makespan: float
    #: per-event decisions, in trace order.
    events: tuple[FaultEventOutcome, ...]
    #: final home of every scenario that ever moved.
    reassignment: dict[int, str]
    #: projected finish of the work each cluster ends up holding
    #: (0 for clusters whose workload was wiped or that never had any).
    cluster_finish: dict[str, float] = field(repr=False)
    #: campaign makespan after every event.
    makespan: float
    #: total in-flight coupled-run months destroyed across events.
    months_lost: int
    #: total processor-seconds of in-flight work destroyed.
    lost_work_seconds: float
    #: how many events actually triggered a replanning pass.
    replans: int

    @property
    def delay(self) -> float:
        """Extra campaign time caused by the whole trace."""
        return self.makespan - self.original_makespan

    def describe(self) -> str:
        """Human-readable replanning log."""
        lines = [
            f"fault trace: {len(self.trace)} event(s), "
            f"{self.replans} replan(s)",
            f"makespan: {self.original_makespan / 3600:.2f} h -> "
            f"{self.makespan / 3600:.2f} h (+{self.delay / 3600:.2f} h)",
            f"lost: {self.months_lost} in-flight month(s), "
            f"{self.lost_work_seconds / 3600:.2f} processor-hours",
        ]
        for outcome in self.events:
            event = outcome.event
            mark = "*" if outcome.applied else "-"
            lines.append(
                f"  {mark} {event.at_time / 3600:7.2f} h  "
                f"{event.kind.value:8s} {event.cluster}: {outcome.reason}"
            )
            for scenario, target in sorted(outcome.reassignment.items()):
                lines.append(
                    f"      scenario {scenario}: "
                    f"{outcome.completed_months[scenario]} months safe, "
                    f"restarted on {target}"
                )
        return "\n".join(lines)


@dataclass
class _Segment:
    """One batch of recovery work appended to a cluster's schedule."""

    start: float
    migration: float
    #: global scenario id -> remaining months assigned here.
    chains: dict[int, int]
    #: global scenario id -> absolute months done before this segment.
    completed_before: dict[int, int]
    #: global scenario id -> archive tasks re-executed at the tail.
    carried_posts: dict[int, int]
    finish: float


@dataclass
class _ClusterState:
    """A cluster's evolving workload through the event loop."""

    name: str
    cluster: ClusterSpec
    original_locals: tuple[int, ...]
    months: int
    alive: bool = True
    #: whether the original rectangular assignment is still attached.
    original_active: bool = True
    segments: list[_Segment] = field(default_factory=list)
    #: availability base for *new* work (projected finish, or rejoin time).
    finish: float = 0.0
    #: finish of the work this cluster holds — feeds the makespan.
    work_finish: float = 0.0

    def homed_scenarios(self) -> set[int]:
        """Every scenario whose unfinished state lives here."""
        homed: set[int] = set()
        if self.original_active:
            homed.update(self.original_locals)
        for seg in self.segments:
            homed.update(seg.chains)
            homed.update(seg.carried_posts)
        return homed


def _segment_progress_at(
    cluster: ClusterSpec, seg: _Segment, at_time: float
) -> tuple[dict[int, int], dict[int, int], float, int]:
    """Replay one recovery segment; count completion before ``at_time``.

    Returns ``(months done, chain posts done, lost in-flight work
    seconds, in-flight months destroyed)`` keyed by global scenario id.
    Carried archive re-executions run at the segment's tail and are
    accounted by the caller (all-done once the segment finishes,
    all-pending before).
    """
    order = sorted(seg.chains)
    done = {g: 0 for g in order}
    posts_done = {g: 0 for g in order}
    if not order:
        return done, posts_done, 0.0, 0
    spec = EnsembleSpec(len(seg.chains), max(seg.chains.values()))
    grouping = knapsack_grouping(cluster, spec)
    dag = _recovery_dag(seg.chains)
    seq_scale = cluster.post_time() / constants.POST_SECONDS
    result = simulate_dag(
        dag, grouping, cluster.timing, seq_scale=seq_scale, record_trace=True
    )
    offset = seg.start + seg.migration
    lost = 0.0
    in_flight = 0
    for record in result.records:
        scenario = order[dag.task(record.task_id).scenario]
        start = offset + record.start
        end = offset + record.end
        if end <= at_time:
            if record.kind == "main":
                done[scenario] += 1
            else:
                posts_done[scenario] += 1
        elif start < at_time:
            lost += (at_time - start) * (
                record.procs_stop - record.procs_start
            )
            if record.kind == "main":
                in_flight += 1
    return done, posts_done, lost, in_flight


def run_campaign_with_faults(
    grid: GridSpec,
    scenarios: int,
    months: int,
    trace: FaultTrace,
    *,
    heuristic: HeuristicName | str = HeuristicName.KNAPSACK,
    link: DataTransferModel | None = None,
) -> CampaignFaultReport:
    """Run a campaign and replan through an arbitrary fault trace.

    Generalizes :func:`run_campaign_with_failure` from one permanent
    failure to a whole :class:`~repro.faults.trace.FaultTrace`, replayed
    in time order with the same greedy longest-remaining-first
    reassignment at every event:

    * ``crash`` — the cluster's unfinished work moves to the remaining
      candidates; the cluster stays out until an explicit ``rejoin``;
    * ``outage`` — same interruption, but the cluster itself rejoins,
      empty, at ``at_time + duration`` and competes (with that
      availability) for its own former work;
    * ``rejoin`` — a crashed cluster returns, empty, and becomes a
      candidate for *future* events (no proactive rebalancing);
    * ``slowdown`` — engine-level only (see
      :class:`~repro.faults.hooks.FaultHook`); the replanner records it
      as a no-op.

    Unlike the single-failure API — which raises on a failure that has
    nothing to recover — events hitting an idle, finished, or already
    -down cluster are recorded as no-ops: a trace generator cannot know
    the schedule.  An empty trace returns the unperturbed plan, and a
    trace with one crash event reproduces
    :func:`run_campaign_with_failure`'s plan bit-for-bit (both paths
    run the identical replay, greedy, and finish computations).

    Raises :class:`MiddlewareError` for an event naming a cluster not
    in the grid, or when a failure leaves no candidate cluster at all.
    """
    heuristic = HeuristicName(heuristic)
    link = link if link is not None else DataTransferModel()
    names = list(grid.names)
    for event in trace:
        if event.cluster not in names:
            raise MiddlewareError(
                f"fault trace names unknown cluster {event.cluster!r}; "
                f"grid has {names}"
            )

    # Original campaign (Section 5) — identical to the single-failure path.
    spec = EnsembleSpec(scenarios, months)
    vectors = [performance_vector(c, spec, heuristic) for c in grid]
    repartition = repartition_dags(vectors, scenarios)
    finish = {
        name: (vectors[i][repartition.counts[i] - 1] if repartition.counts[i] else 0.0)
        for i, name in enumerate(names)
    }
    original_makespan = repartition.makespan

    states: dict[str, _ClusterState] = {}
    for i, name in enumerate(names):
        locals_ = tuple(repartition.scenarios_on(i))
        states[name] = _ClusterState(
            name=name,
            cluster=grid[i],
            original_locals=locals_,
            months=months,
            original_active=bool(locals_),
            finish=finish[name],
            work_finish=finish[name],
        )

    progress: dict[int, int] = {s: 0 for s in range(scenarios)}
    final_home: dict[int, str] = {}
    outcomes: list[FaultEventOutcome] = []
    total_lost_months = 0
    total_lost_work = 0.0
    replans = 0

    def current_makespan() -> float:
        return max(st.work_finish for st in states.values())

    def no_op(event: FaultEvent, reason: str) -> None:
        outcomes.append(
            FaultEventOutcome(
                event=event,
                applied=False,
                reason=reason,
                makespan_after=current_makespan(),
            )
        )

    with obs.span("faults.replan_loop", events=len(trace)):
        for event in trace:
            state = states[event.cluster]
            if event.kind is FaultKind.SLOWDOWN:
                no_op(event, "slowdown is engine-level; replanner ignores it")
                continue
            if event.kind is FaultKind.REJOIN:
                if state.alive:
                    no_op(event, "cluster already up")
                    continue
                state.alive = True
                state.original_active = False
                state.segments = []
                state.finish = event.at_time
                outcomes.append(
                    FaultEventOutcome(
                        event=event,
                        applied=True,
                        reason="rejoined empty; candidate for future events",
                        makespan_after=current_makespan(),
                    )
                )
                continue
            # CRASH or OUTAGE.
            if not state.alive:
                no_op(event, "cluster already down")
                continue
            t = event.at_time
            homed = state.homed_scenarios()
            if not homed:
                if event.kind is FaultKind.OUTAGE:
                    state.finish = max(state.finish, t + event.duration)
                    no_op(event, "cluster idle; back at outage end")
                else:
                    state.alive = False
                    no_op(event, "cluster idle; nothing to recover")
                continue

            # -- what survived on the failed cluster? -----------------------
            replay_started = time.perf_counter()
            completed_ev: dict[int, int] = {g: progress[g] for g in homed}
            pending_ev: dict[int, int] = {g: 0 for g in homed}
            lost_ev = 0.0
            in_flight_ev = 0
            if state.original_active and state.original_locals:
                done_local, pending_local, lost0, in_flight0 = _months_done_at(
                    state.cluster,
                    len(state.original_locals),
                    months,
                    heuristic,
                    t,
                )
                lost_ev += lost0
                in_flight_ev += in_flight0
                for i, g in enumerate(state.original_locals):
                    completed_ev[g] = done_local[i]
                    pending_ev[g] = pending_local[i]
            for seg in state.segments:
                if t >= seg.finish:
                    for g, chain in seg.chains.items():
                        completed_ev[g] = seg.completed_before[g] + chain
                    continue
                done_g, posts_g, lost_s, in_flight_s = _segment_progress_at(
                    state.cluster, seg, t
                )
                lost_ev += lost_s
                in_flight_ev += in_flight_s
                for g in seg.chains:
                    completed_ev[g] = seg.completed_before[g] + done_g[g]
                    pending_ev[g] += done_g[g] - posts_g[g]
                for g, n in seg.carried_posts.items():
                    pending_ev[g] += n

            remaining = {
                g: months - completed_ev[g]
                for g in homed
                if months - completed_ev[g] > 0
            }
            interrupted = sorted(
                g for g in homed
                if remaining.get(g, 0) > 0 or pending_ev[g] > 0
            )
            for g in homed:
                progress[g] = completed_ev[g]
            obs.inc("recovery.failures_detected", cluster=event.cluster)
            obs.log_event(
                _log, "faults.event_detected",
                kind=event.kind.value,
                cluster=event.cluster,
                at_time_s=t,
                interrupted_scenarios=interrupted,
                lost_work_processor_seconds=lost_ev,
                detection_seconds=time.perf_counter() - replay_started,
            )

            # -- take the cluster down (and, for outages, requeue it) -------
            state.original_active = False
            state.segments = []
            if interrupted:
                state.work_finish = 0.0
            if event.kind is FaultKind.OUTAGE:
                state.finish = t + event.duration
            else:
                state.alive = False

            if not interrupted:
                no_op(event, "all assigned work already finished")
                continue

            candidates = [st for st in states.values() if st.alive]
            if not candidates:
                raise MiddlewareError(
                    f"no candidate cluster remains after {event.kind.value} "
                    f"of {event.cluster!r} at {t:.0f}s"
                )

            # -- greedy reassignment, longest-remaining first ---------------
            assigned: dict[str, dict[int, int]] = {
                st.name: {} for st in candidates
            }
            assigned_posts: dict[str, int] = {st.name: 0 for st in candidates}
            reassignment: dict[int, str] = {}
            for scenario in sorted(
                interrupted, key=lambda s: (-remaining.get(s, 0), s)
            ):
                decision_started = time.perf_counter()
                migration = link.migration_penalty(completed_ev[scenario])
                best_name = None
                best_finish = float("inf")
                for st in candidates:
                    trial = dict(assigned[st.name])
                    if remaining.get(scenario, 0) > 0:
                        trial[scenario] = remaining[scenario]
                    candidate = _appended_finish(
                        st.cluster,
                        max(st.finish, t),
                        trial,
                        assigned_posts[st.name] + pending_ev[scenario],
                        migration,
                    )
                    if candidate < best_finish:
                        best_finish = candidate
                        best_name = st.name
                assert best_name is not None
                if remaining.get(scenario, 0) > 0:
                    assigned[best_name][scenario] = remaining[scenario]
                assigned_posts[best_name] += pending_ev[scenario]
                reassignment[scenario] = best_name
                final_home[scenario] = best_name
                recovery_latency = best_finish - t
                obs.inc(
                    "recovery.resubmissions",
                    source=event.cluster,
                    target=best_name,
                )
                obs.observe(
                    "recovery.resubmission_latency_seconds",
                    recovery_latency,
                    target=best_name,
                )
                obs.log_event(
                    _log, "recovery.resubmission",
                    scenario=scenario,
                    source=event.cluster,
                    target=best_name,
                    remaining_months=remaining.get(scenario, 0),
                    pending_posts=pending_ev[scenario],
                    migration_penalty_s=migration,
                    projected_finish_s=best_finish,
                    recovery_latency_s=recovery_latency,
                    decision_seconds=time.perf_counter() - decision_started,
                )

            # -- commit one recovery segment per loaded candidate -----------
            for st in candidates:
                chains = assigned[st.name]
                posts_total = assigned_posts[st.name]
                if not chains and posts_total == 0:
                    continue
                migration = max(
                    (
                        link.migration_penalty(completed_ev[s])
                        for s, target in reassignment.items()
                        if target == st.name
                    ),
                    default=0.0,
                )
                start = max(st.finish, t)
                seg_finish = _appended_finish(
                    st.cluster, start, chains, posts_total, migration
                )
                st.segments.append(
                    _Segment(
                        start=start,
                        migration=migration,
                        chains=dict(chains),
                        completed_before={
                            s: completed_ev[s] for s in chains
                        },
                        carried_posts={
                            s: pending_ev[s]
                            for s, target in reassignment.items()
                            if target == st.name and pending_ev[s] > 0
                        },
                        finish=seg_finish,
                    )
                )
                st.finish = seg_finish
                st.work_finish = seg_finish

            replans += 1
            total_lost_months += in_flight_ev
            total_lost_work += lost_ev
            makespan_after = current_makespan()
            obs.inc("faults.replans", cluster=event.cluster)
            if in_flight_ev:
                obs.inc(
                    "faults.months_lost", in_flight_ev, cluster=event.cluster
                )
            outcomes.append(
                FaultEventOutcome(
                    event=event,
                    applied=True,
                    reason=(
                        f"replanned {len(interrupted)} scenario(s) onto "
                        f"{len({reassignment[s] for s in interrupted})} "
                        f"cluster(s)"
                    ),
                    interrupted=tuple(interrupted),
                    reassignment=reassignment,
                    completed_months={
                        s: completed_ev[s] for s in interrupted
                    },
                    pending_posts={s: pending_ev[s] for s in interrupted},
                    months_lost=in_flight_ev,
                    lost_work_seconds=lost_ev,
                    makespan_after=makespan_after,
                )
            )

    makespan = current_makespan()
    obs.set_gauge("recovery.makespan_seconds", makespan)
    obs.set_gauge("recovery.delay_seconds", makespan - original_makespan)
    obs.log_event(
        _log, "faults.replan_completed",
        events=len(trace),
        replans=replans,
        makespan_s=makespan,
        original_makespan_s=original_makespan,
        delay_s=makespan - original_makespan,
        months_lost=total_lost_months,
        lost_work_processor_seconds=total_lost_work,
    )
    return CampaignFaultReport(
        trace=trace,
        original_repartition=repartition,
        original_makespan=original_makespan,
        events=tuple(outcomes),
        reassignment=dict(final_home),
        cluster_finish={
            name: st.work_finish for name, st in states.items()
        },
        makespan=makespan,
        months_lost=total_lost_months,
        lost_work_seconds=total_lost_work,
        replans=replans,
    )
