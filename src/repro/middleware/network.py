"""Simulated network clock and message log for the middleware.

Every message send advances a virtual clock by the link's latency plus
the serialization time of the message's wire size (via the
:class:`~repro.workflow.data.DataTransferModel`).  The network keeps a
chronological log, so tests and examples can audit the full protocol
exchange — and the end-to-end campaign result can report how negligible
the control-plane overhead is next to the computation (seconds versus
weeks, which is why the paper never discusses it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import MiddlewareError
from repro.workflow.data import DataTransferModel

__all__ = ["MessageLogEntry", "SimulatedNetwork"]


@dataclass(frozen=True)
class MessageLogEntry:
    """One logged message hop."""

    sent_at: float
    received_at: float
    sender: str
    receiver: str
    kind: str
    nbytes: int

    @property
    def transit_seconds(self) -> float:
        """Simulated time the message spent in flight."""
        return self.received_at - self.sent_at


class SimulatedNetwork:
    """A virtual clock plus a message log.

    The model is sequential (one global clock): the protocol's fan-out
    steps are short control messages whose parallel transmission would
    save microseconds, and a single clock keeps the log totally ordered
    and trivially auditable.
    """

    def __init__(self, link: DataTransferModel | None = None) -> None:
        self.link = link if link is not None else DataTransferModel()
        self._now = 0.0
        self._log: list[MessageLogEntry] = []

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self._now

    @property
    def log(self) -> tuple[MessageLogEntry, ...]:
        """All message hops so far, in chronological order."""
        return tuple(self._log)

    def advance(self, seconds: float) -> float:
        """Advance the clock by non-network work (e.g. SeD computation)."""
        if seconds < 0:
            raise MiddlewareError(f"cannot advance time by {seconds!r}s")
        self._now += seconds
        return self._now

    def send(self, sender: str, receiver: str, kind: str, nbytes: int) -> float:
        """Deliver one message; returns its arrival time."""
        if nbytes < 0:
            raise MiddlewareError(f"message size must be >= 0, got {nbytes!r}")
        sent = self._now
        arrival = sent + self.link.transfer_time(nbytes)
        self._log.append(
            MessageLogEntry(sent, arrival, sender, receiver, kind, nbytes)
        )
        self._now = arrival
        return arrival

    def control_plane_seconds(self) -> float:
        """Total simulated time spent in message transit."""
        return sum(entry.transit_seconds for entry in self._log)

    def describe(self) -> str:
        """Human-readable dump of the message log."""
        lines = [f"{len(self._log)} messages, clock at {self._now:.4f}s:"]
        for e in self._log:
            lines.append(
                f"  t={e.sent_at:9.4f}s  {e.sender} -> {e.receiver}: "
                f"{e.kind} ({e.nbytes} B, {e.transit_seconds * 1000:.2f} ms)"
            )
        return "\n".join(lines)
