"""Hierarchical agents — DIET's Master/Local Agent architecture.

DIET (Caron & Desprez 2006, the middleware the paper targets) organizes
servers behind a *tree* of agents: a Master Agent (MA) at the root,
Local Agents (LA) per site, SeDs at the leaves.  The flat
:class:`~repro.middleware.agent.Agent` suffices for the paper's handful
of clusters, but the tree is what makes DIET scale — and building it
shows the protocol is genuinely hierarchical: requests fan out down the
tree, replies aggregate up, orders route by name.

A :class:`HierarchicalAgent` composes like the flat agent (same
broadcast/dispatch interface), so the client works unchanged against
either — the test suite runs the same campaign through both and demands
identical repartitions.
"""

from __future__ import annotations

from repro.exceptions import MiddlewareError
from repro.middleware.messages import (
    ExecutionOrder,
    ExecutionReport,
    PerformanceReply,
    ServiceRequest,
)
from repro.middleware.network import SimulatedNetwork
from repro.middleware.sed import SeD

__all__ = ["HierarchicalAgent"]


class HierarchicalAgent:
    """An agent node in a DIET-style tree.

    Children are either :class:`~repro.middleware.sed.SeD` leaves or
    further :class:`HierarchicalAgent` subtrees.  The node presents the
    same ``broadcast_request`` / ``dispatch_order`` interface as the
    flat agent, so a :class:`~repro.middleware.client.Client` can sit on
    top of either.
    """

    def __init__(self, network: SimulatedNetwork, name: str = "MA") -> None:
        self.network = network
        self.name = name
        self._children: dict[str, "HierarchicalAgent | SeD"] = {}

    # -- tree construction ---------------------------------------------------

    def register(self, child: "HierarchicalAgent | SeD") -> None:
        """Attach a SeD or a sub-agent (names unique within this node)."""
        if child.name in self._children:
            raise MiddlewareError(
                f"agent {self.name!r} already has a child named "
                f"{child.name!r}"
            )
        if isinstance(child, HierarchicalAgent):
            if child.network is not self.network:
                raise MiddlewareError(
                    "sub-agent must share its parent's network"
                )
            if child is self or child._contains(self):
                raise MiddlewareError("agent tree must not contain cycles")
        self._children[child.name] = child

    def _contains(self, node: "HierarchicalAgent") -> bool:
        for child in self._children.values():
            if child is node:
                return True
            if isinstance(child, HierarchicalAgent) and child._contains(node):
                return True
        return False

    @property
    def sed_names(self) -> tuple[str, ...]:
        """All SeD names in the subtree, depth-first registration order."""
        names: list[str] = []
        for child in self._children.values():
            if isinstance(child, HierarchicalAgent):
                names.extend(child.sed_names)
            else:
                names.append(child.name)
        return tuple(names)

    def depth(self) -> int:
        """Levels of agents below (a leaf-only node has depth 1)."""
        sub = [
            child.depth()
            for child in self._children.values()
            if isinstance(child, HierarchicalAgent)
        ]
        return 1 + max(sub, default=0)

    # -- the flat-agent interface ---------------------------------------------

    def broadcast_request(self, request: ServiceRequest) -> list[PerformanceReply]:
        """Fan the request down the tree; gather every leaf's reply."""
        if not self._children:
            raise MiddlewareError(
                f"agent {self.name!r} has no children; cannot serve a request"
            )
        replies: list[PerformanceReply] = []
        for name, child in self._children.items():
            if isinstance(child, HierarchicalAgent):
                self.network.send(
                    self.name, name, "ServiceRequest", request.wire_size()
                )
                sub = child.broadcast_request(request)
                gathered = sum(reply.wire_size() for reply in sub)
                self.network.send(name, self.name, "PerformanceReplies", gathered)
                replies.extend(sub)
            else:
                self.network.send(
                    self.name, name, "ServiceRequest", request.wire_size()
                )
                reply = child.handle_request(request)
                self.network.send(
                    name, self.name, "PerformanceReply", reply.wire_size()
                )
                replies.append(reply)
        return replies

    def dispatch_order(self, order: ExecutionOrder) -> ExecutionReport:
        """Route an order to the subtree containing its cluster."""
        child = self._children.get(order.cluster_name)
        if child is not None and isinstance(child, SeD):
            self.network.send(
                self.name, child.name, "ExecutionOrder", order.wire_size()
            )
            report = child.execute(order)
            self.network.send(
                child.name, self.name, "ExecutionReport", report.wire_size()
            )
            return report
        for name, sub in self._children.items():
            if isinstance(sub, HierarchicalAgent) and order.cluster_name in sub.sed_names:
                self.network.send(
                    self.name, name, "ExecutionOrder", order.wire_size()
                )
                report = sub.dispatch_order(order)
                self.network.send(
                    name, self.name, "ExecutionReport", report.wire_size()
                )
                return report
        raise MiddlewareError(
            f"no SeD named {order.cluster_name!r} anywhere under agent "
            f"{self.name!r}"
        )

    def sed(self, name: str) -> SeD:
        """Find a SeD by name anywhere in the subtree."""
        child = self._children.get(name)
        if isinstance(child, SeD):
            return child
        for sub in self._children.values():
            if isinstance(sub, HierarchicalAgent):
                try:
                    return sub.sed(name)
                except MiddlewareError:
                    continue
        raise MiddlewareError(
            f"no SeD named {name!r} under agent {self.name!r}"
        )
